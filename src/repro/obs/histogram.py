"""Streaming latency histograms and the service-side metrics aggregator.

:class:`LatencyHistogram` buckets latencies (seconds) into a fixed
log-scale grid — :data:`BUCKETS_PER_DECADE` buckets per power of ten
from 1 µs to 10 000 s — so recording is O(1), memory is constant, and
two histograms merge by adding counts.  Percentiles are derived by exact
rank selection over the bucket counts: ``percentile(q)`` finds the
bucket containing the ``ceil(q·count)``-th smallest sample and reports
that bucket's upper bound (clamped to the observed max), so the reported
value is an upper bound on the true percentile within one bucket ratio
(``10^(1/8) ≈ 1.334``).

:class:`MetricsAggregator` is the piece the batch service and the
resident daemon own: it ingests per-job traces and outcomes into
histogram families keyed per phase (span name), per model (job name),
and per cache tier, and snapshots them for ``stats`` frames and batch
reports.  The aggregator does no locking itself — its owner serializes
calls (the daemon under its lock, the batch service on its own thread).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["LatencyHistogram", "MetricsAggregator", "format_latency_table", "BUCKETS_PER_DECADE"]

BUCKETS_PER_DECADE = 8
_MIN_LATENCY = 1e-6  # floor of the grid: 1 microsecond
_DECADES = 10  # 1e-6 .. 1e4 seconds
_BUCKET_COUNT = BUCKETS_PER_DECADE * _DECADES

# Upper bound of bucket i; samples <= _BOUNDS[i] and > _BOUNDS[i-1] land in i.
_BOUNDS = tuple(_MIN_LATENCY * 10.0 ** ((i + 1) / BUCKETS_PER_DECADE) for i in range(_BUCKET_COUNT))
_LOG_MIN = math.log10(_MIN_LATENCY)


def _bucket_index(seconds: float) -> int:
    if seconds <= _MIN_LATENCY:
        return 0
    idx = int((math.log10(seconds) - _LOG_MIN) * BUCKETS_PER_DECADE)
    if idx >= _BUCKET_COUNT:
        return _BUCKET_COUNT - 1
    # Guard against float rounding right at a bucket boundary.
    if seconds > _BOUNDS[idx]:
        idx += 1
    return min(idx, _BUCKET_COUNT - 1)


class LatencyHistogram:
    """Fixed log-bucket latency histogram with exact-rank percentile lookup."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0.0:
            seconds = 0.0
        idx = _bucket_index(seconds)
        self.counts[idx] = self.counts.get(idx, 0) + 1
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        for idx, n in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def percentile(self, q: float) -> float:
        """Upper bound on the q-quantile (q in (0, 1]), 0.0 when empty."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for idx in sorted(self.counts):
            cumulative += self.counts[idx]
            if cumulative >= rank:
                if idx == _BUCKET_COUNT - 1:
                    # The overflow bucket holds everything past the grid;
                    # its nominal bound would under-report.
                    return self.max
                return min(_BOUNDS[idx], self.max)
        return self.max  # pragma: no cover - counts always sum to self.count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> List[tuple]:
        """``(upper_bound_seconds, cumulative_count)`` per occupied bucket.

        Only buckets that gained a sample are listed (ascending, cumulative
        over the full grid) — the Prometheus exposition renderer emits these
        plus the ``+Inf`` bucket, which keeps series at most ``count`` long
        instead of the grid's full 80 bounds.
        """
        out: List[tuple] = []
        cumulative = 0
        for idx in sorted(self.counts):
            cumulative += self.counts[idx]
            out.append((_BOUNDS[idx], cumulative))
        return out

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


# Cap on distinct per-model histograms in a long-lived daemon; overflow
# models aggregate into one bucket rather than growing without bound.
_MAX_MODEL_SERIES = 64
_OVERFLOW_KEY = "__other__"


class MetricsAggregator:
    """Latency histogram families per phase, per model, and per cache tier."""

    __slots__ = ("jobs", "phases", "models", "tiers", "spans_ingested")

    def __init__(self) -> None:
        self.jobs = LatencyHistogram()
        self.phases: Dict[str, LatencyHistogram] = {}
        self.models: Dict[str, LatencyHistogram] = {}
        self.tiers: Dict[str, LatencyHistogram] = {}
        self.spans_ingested = 0

    def _series(self, family: Dict[str, LatencyHistogram], key: str, cap: Optional[int] = None) -> LatencyHistogram:
        hist = family.get(key)
        if hist is None:
            if cap is not None and len(family) >= cap:
                key = _OVERFLOW_KEY
                hist = family.get(key)
                if hist is not None:
                    return hist
            hist = LatencyHistogram()
            family[key] = hist
        return hist

    def ingest(
        self,
        *,
        model: str,
        seconds: float,
        cache_tier: Optional[str] = None,
        trace: Optional[Iterable[Dict[str, Any]]] = None,
    ) -> None:
        """Fold one finished job into the histograms.

        ``seconds`` is the job's end-to-end latency, ``cache_tier`` how it
        was served (``None`` == fresh execution), and ``trace`` the
        exported span list (phase spans feed the per-phase family).
        """
        self.jobs.record(seconds)
        self._series(self.models, model, _MAX_MODEL_SERIES).record(seconds)
        self._series(self.tiers, cache_tier or "fresh").record(seconds)
        if trace:
            for span in trace:
                name = span.get("name")
                if not name:
                    continue
                self._series(self.phases, name).record(span.get("duration", 0.0))
                self.spans_ingested += 1

    def snapshot(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs.to_dict(),
            "spans_ingested": self.spans_ingested,
            "phases": {name: h.to_dict() for name, h in sorted(self.phases.items())},
            "models": {name: h.to_dict() for name, h in sorted(self.models.items())},
            "cache_tiers": {name: h.to_dict() for name, h in sorted(self.tiers.items())},
        }


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:8.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:7.2f}ms"
    return f"{value * 1e6:7.1f}us"


def _table_section(title: str, family: Dict[str, Any]) -> List[str]:
    lines = [f"{title}:"]
    header = f"  {'series':<22} {'count':>6} {'p50':>9} {'p95':>9} {'p99':>9} {'mean':>9} {'total':>9}"
    lines.append(header)
    for name, stats in family.items():
        lines.append(
            f"  {name:<22} {stats['count']:>6} "
            f"{_fmt_seconds(stats['p50'])} {_fmt_seconds(stats['p95'])} "
            f"{_fmt_seconds(stats['p99'])} {_fmt_seconds(stats['mean'])} "
            f"{_fmt_seconds(stats['total_seconds'])}"
        )
    return lines


def format_latency_table(snapshot: Optional[Dict[str, Any]]) -> str:
    """Render a MetricsAggregator snapshot for `szalinski stats --percentiles`."""
    if not snapshot or not snapshot.get("jobs", {}).get("count"):
        return "no latency data recorded yet"
    lines = _table_section("end-to-end", {"jobs": snapshot["jobs"]})
    for title, key in (("phases", "phases"), ("cache tiers", "cache_tiers"), ("models", "models")):
        family = snapshot.get(key)
        if family:
            lines.append("")
            lines.extend(_table_section(title, family))
    return "\n".join(lines)
