"""Trace export: JSONL span streams and the Chrome trace_event converter.

The on-disk trace format is JSON Lines — one span per line, each the
span's exported dict plus ``job_id`` and ``model`` so spans from many
jobs interleave safely in one file.  ``chrome_trace`` converts such a
stream into Chrome's ``trace_event`` JSON (complete ``"ph": "X"`` events
with microsecond timestamps, one pid per job) which opens directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "span_lines",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "chrome_trace",
    "write_chrome_trace",
]


def span_lines(job_id: str, model: str, spans: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Stamp an exported span list with its job identity for JSONL output."""
    lines = []
    for span in spans:
        record = dict(span)
        record["job_id"] = job_id
        record["model"] = model
        lines.append(record)
    return lines


def write_trace_jsonl(path: Path, lines: Iterable[Dict[str, Any]]) -> int:
    """Append span records to ``path``; returns the number written."""
    count = 0
    with open(path, "a", encoding="utf-8") as handle:
        for record in lines:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


def read_trace_jsonl(path: Path) -> List[Dict[str, Any]]:
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def chrome_trace(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert JSONL span records into Chrome trace_event JSON.

    Each distinct ``job_id`` becomes one pid with a ``process_name``
    metadata event; spans become complete events (``"ph": "X"``) whose
    ``ts``/``dur`` are microseconds on a shared absolute timeline
    normalized to the earliest span so Perfetto's viewport starts at 0.
    """
    records = list(records)
    events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    base_wall: Optional[float] = None
    for record in records:
        wall = record.get("wall")
        if wall is not None and (base_wall is None or wall < base_wall):
            base_wall = wall
    base_wall = base_wall or 0.0
    for record in records:
        job_id = str(record.get("job_id", "?"))
        pid = pids.get(job_id)
        if pid is None:
            pid = len(pids) + 1
            pids[job_id] = pid
            label = record.get("model") or job_id
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"{label} ({job_id})"},
                }
            )
        wall = record.get("wall", base_wall)
        event: Dict[str, Any] = {
            "ph": "X",
            "name": record.get("name", "?"),
            "pid": pid,
            "tid": 1,
            "ts": (wall - base_wall) * 1e6,
            "dur": record.get("duration", 0.0) * 1e6,
        }
        attrs = record.get("attrs")
        if attrs:
            event["args"] = attrs
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: Path, records: Iterable[Dict[str, Any]]) -> int:
    trace = chrome_trace(records)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
    return sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
