"""Observability: structured tracing, latency histograms, and exporters.

The package is the cross-cutting measurement layer of the synthesis
pipeline and its serving stack:

* :mod:`repro.obs.trace` — a zero-overhead-when-disabled span tracer
  (context-manager spans with parent links, monotonic timestamps, and
  typed attributes) threaded through ``synthesize``, the saturation
  runner, and the validator.
* :mod:`repro.obs.histogram` — fixed log-scale-bucket latency histograms
  with exact-rank p50/p95/p99 derivation, and the
  :class:`~repro.obs.histogram.MetricsAggregator` the batch service and
  the resident daemon use to stream per-phase / per-model / per-cache-tier
  percentiles into their reports and ``stats`` frames.
* :mod:`repro.obs.export` — JSONL span export (one span per line) and the
  Chrome ``trace_event`` converter that makes a trace openable in
  Perfetto (``szalinski trace FILE --chrome OUT``).
* :mod:`repro.obs.prometheus` — Prometheus text-exposition rendering of
  the aggregator's histogram families (``szalinski stats --prometheus``,
  the daemon's ``metrics`` frame).
"""

from repro.obs.histogram import LatencyHistogram, MetricsAggregator, format_latency_table
from repro.obs.prometheus import render_prometheus
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer, validate_spans
from repro.obs.export import (
    chrome_trace,
    read_trace_jsonl,
    span_lines,
    write_chrome_trace,
    write_trace_jsonl,
)

__all__ = [
    "LatencyHistogram",
    "MetricsAggregator",
    "format_latency_table",
    "render_prometheus",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "validate_spans",
    "chrome_trace",
    "read_trace_jsonl",
    "span_lines",
    "write_chrome_trace",
    "write_trace_jsonl",
]
