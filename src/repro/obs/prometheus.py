"""Prometheus text-exposition rendering of the metrics families.

Renders a live :class:`~repro.obs.histogram.MetricsAggregator` into the
Prometheus text exposition format (version 0.0.4): one ``histogram``
family per aggregator family —

* ``repro_job_latency_seconds`` — end-to-end job latency (no labels),
* ``repro_phase_latency_seconds{phase="..."}`` — per pipeline phase,
* ``repro_model_latency_seconds{model="..."}`` — per model / job name,
* ``repro_cache_tier_latency_seconds{tier="..."}`` — per cache tier,

plus the ``repro_spans_ingested_total`` counter.  Histogram series carry
cumulative ``_bucket{le="..."}`` samples over the aggregator's fixed
log-scale grid (only occupied buckets are emitted — cumulative counts
stay exact, scrape size stays bounded), the mandatory ``le="+Inf"``
bucket, and ``_sum`` / ``_count``.

The renderer reads the histograms' raw bucket counts directly (not the
``to_dict`` percentile summaries), so the scraped data is lossless up to
the grid resolution.  Like the aggregator itself it does no locking —
the owner renders under its own lock (the daemon's ``metrics`` frame
snapshots inside one critical section).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.histogram import LatencyHistogram, MetricsAggregator

__all__ = ["render_prometheus"]


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_bound(bound: float) -> str:
    # repr() of the float: exact round-trip, no trailing-zero padding —
    # scrapers parse any valid float literal.
    return repr(bound)


def _labels(base: Optional[Dict[str, str]], le: Optional[str] = None) -> str:
    parts = [f'{name}="{_escape_label(value)}"' for name, value in (base or {}).items()]
    if le is not None:
        parts.append(f'le="{le}"')
    return "{" + ",".join(parts) + "}" if parts else ""


def _histogram_series(
    name: str, hist: LatencyHistogram, labels: Optional[Dict[str, str]]
) -> List[str]:
    lines: List[str] = []
    for bound, cumulative in hist.cumulative_buckets():
        lines.append(
            f"{name}_bucket{_labels(labels, _format_bound(bound))} {cumulative}"
        )
    lines.append(f"{name}_bucket{_labels(labels, '+Inf')} {hist.count}")
    lines.append(f"{name}_sum{_labels(labels)} {repr(hist.total)}")
    lines.append(f"{name}_count{_labels(labels)} {hist.count}")
    return lines


def _histogram_family(
    name: str,
    help_text: str,
    series: List[tuple],
) -> List[str]:
    lines = [f"# HELP {name} {help_text}", f"# TYPE {name} histogram"]
    for labels, hist in series:
        lines.extend(_histogram_series(name, hist, labels))
    return lines


def render_prometheus(metrics: MetricsAggregator) -> str:
    """The aggregator's families as Prometheus exposition text."""
    lines: List[str] = []
    lines.extend(
        _histogram_family(
            "repro_job_latency_seconds",
            "End-to-end synthesis job latency in seconds.",
            [(None, metrics.jobs)],
        )
    )
    lines.extend(
        _histogram_family(
            "repro_phase_latency_seconds",
            "Per-phase pipeline latency in seconds.",
            [({"phase": name}, hist) for name, hist in sorted(metrics.phases.items())],
        )
    )
    lines.extend(
        _histogram_family(
            "repro_model_latency_seconds",
            "Job latency per model in seconds.",
            [({"model": name}, hist) for name, hist in sorted(metrics.models.items())],
        )
    )
    lines.extend(
        _histogram_family(
            "repro_cache_tier_latency_seconds",
            "Job latency per cache tier in seconds.",
            [({"tier": name}, hist) for name, hist in sorted(metrics.tiers.items())],
        )
    )
    lines.append(
        "# HELP repro_spans_ingested_total Phase spans folded into the histograms."
    )
    lines.append("# TYPE repro_spans_ingested_total counter")
    lines.append(f"repro_spans_ingested_total {metrics.spans_ingested}")
    return "\n".join(lines) + "\n"
