"""Span-based structured tracing with a zero-overhead disabled path.

A :class:`Tracer` records a tree of :class:`Span` objects.  Spans are
context managers::

    tracer = Tracer()
    with tracer.span("saturate") as sp:
        ...
        if sp is not None:
            sp.set("iterations", n)

Timing uses ``time.perf_counter()`` (monotonic); every span stores its
start/end relative to the tracer's origin, and the tracer remembers the
wall-clock time of that origin so exported spans can be placed on an
absolute timeline.

The disabled path is :data:`NULL_TRACER`, a process-wide singleton whose
``span()`` method returns one shared no-op span object whose
``__enter__`` returns ``None``.  Instrumented code therefore pays one
method call and one ``with`` block per span and **allocates nothing** —
no ``Span``, no attribute dict, no list append.  Call sites guard
attribute writes with ``if sp is not None:`` so even attribute plumbing
is free when tracing is off.

A tracer instance is single-threaded by design: each worker builds its
own tracer for its own job, and aggregation across jobs happens in
:class:`repro.obs.histogram.MetricsAggregator` under the owner's lock.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "validate_spans"]

_ATTR_TYPES = (bool, int, float, str)


class Span:
    """One timed interval in a trace, usable as a context manager."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "attrs", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, span_id: int, attrs: Optional[Dict[str, Any]] = None) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id: Optional[int] = None
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.attrs: Optional[Dict[str, Any]] = None
        if attrs:
            for key, value in attrs.items():
                self.set(key, value)

    def set(self, key: str, value: Any) -> None:
        """Attach a typed attribute (bool/int/float/str/None; else str())."""
        if value is not None and not isinstance(value, _ATTR_TYPES):
            value = str(value)
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def update(self, attrs: Dict[str, Any]) -> None:
        for key, value in attrs.items():
            self.set(key, value)

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._exit(self, exc_type)
        return False

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "duration": self.duration,
            "wall": self._tracer.origin_wall + self.start,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, dur={self.duration:.6f})"


class _NullSpan:
    """Shared no-op span: ``__enter__`` yields ``None`` so call sites skip attrs."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a tree of spans for one job / one pipeline invocation."""

    enabled = True

    __slots__ = ("origin", "origin_wall", "finished", "_stack", "_next_id")

    def __init__(self) -> None:
        self.origin = time.perf_counter()
        self.origin_wall = time.time()
        self.finished: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 0

    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> Span:
        self._next_id += 1
        return Span(self, name, self._next_id, attrs)

    def _enter(self, span: Span) -> None:
        if self._stack:
            span.parent_id = self._stack[-1].span_id
        span.start = time.perf_counter() - self.origin
        self._stack.append(span)

    def _exit(self, span: Span, exc_type) -> None:
        span.end = time.perf_counter() - self.origin
        if exc_type is not None:
            span.set("error", exc_type.__name__)
        # Tolerate mis-nested exits instead of corrupting the stack.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)
        self.finished.append(span)

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def export(self) -> List[Dict[str, Any]]:
        """Finished spans as plain dicts, ordered by start time."""
        return [s.to_dict() for s in sorted(self.finished, key=lambda s: (s.start, s.span_id))]


class NullTracer:
    """Disabled tracer: every ``span()`` returns the same shared no-op object."""

    enabled = False

    __slots__ = ()

    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> _NullSpan:
        return _NULL_SPAN

    @property
    def finished(self) -> List[Span]:
        return []

    @property
    def open_spans(self) -> int:
        return 0

    def export(self) -> List[Dict[str, Any]]:
        return []


NULL_TRACER = NullTracer()

# Nested child intervals may exceed the parent's by scheduler noise at
# this scale without indicating a structural bug.
_NEST_SLACK = 1e-6


def validate_spans(spans: Iterable[Dict[str, Any]]) -> List[str]:
    """Check an exported span list is a well-formed tree.

    Returns a list of human-readable problems (empty == well-formed):
    unique ids, every span closed (``end >= start``), parent links
    resolve, and child intervals nest inside their parent's interval.
    """
    problems: List[str] = []
    by_id: Dict[int, Dict[str, Any]] = {}
    for span in spans:
        sid = span.get("span_id")
        if sid in by_id:
            problems.append(f"duplicate span_id {sid}")
        by_id[sid] = span
    for span in by_id.values():
        name = span.get("name", "?")
        start, end = span.get("start"), span.get("end")
        if start is None or end is None:
            problems.append(f"span {name!r} never closed")
            continue
        if end + _NEST_SLACK < start:
            problems.append(f"span {name!r} ends before it starts ({start} > {end})")
        parent_id = span.get("parent_id")
        if parent_id is None:
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            problems.append(f"span {name!r} has dangling parent_id {parent_id}")
            continue
        if start + _NEST_SLACK < parent["start"] or end > parent["end"] + _NEST_SLACK:
            problems.append(
                f"span {name!r} [{start}, {end}] escapes parent "
                f"{parent.get('name', '?')!r} [{parent['start']}, {parent['end']}]"
            )
    return problems
