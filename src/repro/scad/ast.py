"""AST node definitions for the OpenSCAD subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# -- expressions ---------------------------------------------------------------

class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class Number(Expr):
    value: float


@dataclass(frozen=True)
class String(Expr):
    value: str


@dataclass(frozen=True)
class Boolean(Expr):
    value: bool


@dataclass(frozen=True)
class Ident(Expr):
    name: str


@dataclass(frozen=True)
class Vector(Expr):
    items: Tuple[Expr, ...]


@dataclass(frozen=True)
class Range(Expr):
    """A range literal ``[start : step? : end]``."""

    start: Expr
    end: Expr
    step: Optional[Expr] = None


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str
    operand: Expr


@dataclass(frozen=True)
class Conditional(Expr):
    condition: Expr
    if_true: Expr
    if_false: Expr


@dataclass(frozen=True)
class Call(Expr):
    """A function call in expression position, e.g. ``sin(30)``."""

    name: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Index(Expr):
    """Vector indexing ``v[0]``."""

    target: Expr
    index: Expr


# -- statements ----------------------------------------------------------------

class Statement:
    """Base class for statements."""


@dataclass
class Assignment(Statement):
    name: str
    value: Expr


@dataclass
class ModuleCall(Statement):
    """``name(args) { children }`` or ``name(args) child;`` or ``name(args);``."""

    name: str
    positional: List[Expr] = field(default_factory=list)
    named: List[Tuple[str, Expr]] = field(default_factory=list)
    children: List[Statement] = field(default_factory=list)


@dataclass
class ForLoop(Statement):
    variable: str
    iterable: Expr
    body: List[Statement] = field(default_factory=list)


@dataclass
class IfStatement(Statement):
    condition: Expr
    then_body: List[Statement] = field(default_factory=list)
    else_body: List[Statement] = field(default_factory=list)


@dataclass
class ModuleDef(Statement):
    name: str
    params: List[Tuple[str, Optional[Expr]]] = field(default_factory=list)
    body: List[Statement] = field(default_factory=list)


@dataclass
class Program:
    statements: List[Statement] = field(default_factory=list)
