"""Evaluation of OpenSCAD programs into flat CSG terms.

This is the "translator that can flatten these programs into loop-free CSG"
from the paper's evaluation setup: loops are unrolled, variables and module
calls are substituted, arithmetic is computed, and only primitives, affine
transformations with literal vectors, and boolean operators remain.

Primitive canonicalization: our CSG primitives are unit-sized and centred at
the origin (paper Section 2), so

* ``cube([x, y, z])`` becomes ``Translate (x/2, y/2, z/2, Scale (x, y, z, Cube))``
  (OpenSCAD cubes sit on the positive octant unless ``center=true``);
* ``cylinder(h, r)`` becomes ``Translate (0, 0, h/2, Scale (r, r, h, Cylinder))``
  (OpenSCAD cylinders sit on the XY plane unless ``center=true``);
* ``sphere(r)`` becomes ``Scale (r, r, r, Sphere)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.csg.build import cube, cylinder, diff, empty, hexagon, inter, rotate, scale, sphere, translate, union, union_all
from repro.lang.term import Term
from repro.scad import ast
from repro.scad.parser import parse_scad

Value = Union[float, bool, str, list]


class ScadEvalError(ValueError):
    """Raised when an OpenSCAD program cannot be flattened."""


@dataclass
class _Environment:
    variables: Dict[str, Value] = field(default_factory=dict)
    modules: Dict[str, ast.ModuleDef] = field(default_factory=dict)

    def child(self) -> "_Environment":
        return _Environment(dict(self.variables), dict(self.modules))


class _Flattener:
    """Evaluates statements to lists of flat CSG solids."""

    def __init__(self, max_unroll: int = 100_000):
        self.max_unroll = max_unroll

    # -- expressions ----------------------------------------------------------------

    def eval_expr(self, expr: ast.Expr, env: _Environment) -> Value:
        if isinstance(expr, ast.Number):
            return expr.value
        if isinstance(expr, ast.Boolean):
            return expr.value
        if isinstance(expr, ast.String):
            return expr.value
        if isinstance(expr, ast.Ident):
            if expr.name in env.variables:
                return env.variables[expr.name]
            if expr.name.startswith("$"):
                return 0.0  # special variables ($fn etc.) default to 0
            raise ScadEvalError(f"undefined variable {expr.name!r}")
        if isinstance(expr, ast.Vector):
            return [self.eval_expr(item, env) for item in expr.items]
        if isinstance(expr, ast.Range):
            return self._eval_range(expr, env)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, env)
        if isinstance(expr, ast.UnaryOp):
            operand = self.eval_expr(expr.operand, env)
            if expr.op == "-":
                return -self._as_number(operand)
            if expr.op == "!":
                return not operand
            raise ScadEvalError(f"unsupported unary operator {expr.op!r}")
        if isinstance(expr, ast.Conditional):
            condition = self.eval_expr(expr.condition, env)
            return self.eval_expr(expr.if_true if condition else expr.if_false, env)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Index):
            target = self.eval_expr(expr.target, env)
            index = int(self._as_number(self.eval_expr(expr.index, env)))
            if not isinstance(target, list):
                raise ScadEvalError("indexing a non-vector value")
            return target[index]
        raise ScadEvalError(f"unsupported expression {expr!r}")

    def _eval_range(self, expr: ast.Range, env: _Environment) -> list:
        start = self._as_number(self.eval_expr(expr.start, env))
        end = self._as_number(self.eval_expr(expr.end, env))
        step = 1.0
        if expr.step is not None:
            step = self._as_number(self.eval_expr(expr.step, env))
        if step == 0:
            raise ScadEvalError("range step must be non-zero")
        values: List[float] = []
        current = start
        comparison = (lambda c: c <= end + 1e-12) if step > 0 else (lambda c: c >= end - 1e-12)
        while comparison(current):
            values.append(current)
            current += step
            if len(values) > self.max_unroll:
                raise ScadEvalError("range exceeds the unrolling limit")
        return values

    def _eval_binop(self, expr: ast.BinOp, env: _Environment) -> Value:
        left = self.eval_expr(expr.left, env)
        right = self.eval_expr(expr.right, env)
        op = expr.op
        if op in ("&&", "||"):
            return bool(left and right) if op == "&&" else bool(left or right)
        if op in ("==", "!="):
            return (left == right) if op == "==" else (left != right)
        lhs, rhs = self._as_number(left), self._as_number(right)
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if rhs == 0:
                raise ScadEvalError("division by zero")
            return lhs / rhs
        if op == "%":
            return math.fmod(lhs, rhs)
        if op == "<":
            return lhs < rhs
        if op == ">":
            return lhs > rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">=":
            return lhs >= rhs
        raise ScadEvalError(f"unsupported operator {op!r}")

    def _eval_call(self, expr: ast.Call, env: _Environment) -> Value:
        args = [self.eval_expr(a, env) for a in expr.args]
        name = expr.name
        if name == "sin":
            return math.sin(math.radians(self._as_number(args[0])))
        if name == "cos":
            return math.cos(math.radians(self._as_number(args[0])))
        if name == "tan":
            return math.tan(math.radians(self._as_number(args[0])))
        if name == "atan2":
            return math.degrees(math.atan2(self._as_number(args[0]), self._as_number(args[1])))
        if name == "sqrt":
            return math.sqrt(self._as_number(args[0]))
        if name == "abs":
            return abs(self._as_number(args[0]))
        if name == "floor":
            return math.floor(self._as_number(args[0]))
        if name == "ceil":
            return math.ceil(self._as_number(args[0]))
        if name == "round":
            return float(round(self._as_number(args[0])))
        if name == "pow":
            return self._as_number(args[0]) ** self._as_number(args[1])
        if name == "min":
            return min(self._as_number(a) for a in args)
        if name == "max":
            return max(self._as_number(a) for a in args)
        if name == "len":
            if not isinstance(args[0], list):
                raise ScadEvalError("len expects a vector")
            return float(len(args[0]))
        raise ScadEvalError(f"unsupported function {name!r}")

    @staticmethod
    def _as_number(value: Value) -> float:
        if isinstance(value, bool):
            return 1.0 if value else 0.0
        if isinstance(value, (int, float)):
            return float(value)
        raise ScadEvalError(f"expected a number, got {value!r}")

    def _as_vector3(self, value: Value) -> List[float]:
        if isinstance(value, (int, float)):
            return [float(value)] * 3
        if isinstance(value, list):
            numbers = [self._as_number(v) for v in value]
            while len(numbers) < 3:
                numbers.append(0.0)
            return numbers[:3]
        raise ScadEvalError(f"expected a vector, got {value!r}")

    # -- statements ----------------------------------------------------------------

    def flatten_statements(self, statements: Sequence[ast.Statement], env: _Environment) -> List[Term]:
        solids: List[Term] = []
        for statement in statements:
            if isinstance(statement, ast.Assignment):
                env.variables[statement.name] = self.eval_expr(statement.value, env)
            elif isinstance(statement, ast.ModuleDef):
                env.modules[statement.name] = statement
            elif isinstance(statement, ast.ForLoop):
                solids.extend(self._flatten_for(statement, env))
            elif isinstance(statement, ast.IfStatement):
                branch = (
                    statement.then_body
                    if self.eval_expr(statement.condition, env)
                    else statement.else_body
                )
                solids.extend(self.flatten_statements(branch, env.child()))
            elif isinstance(statement, ast.ModuleCall):
                solid = self._flatten_call(statement, env)
                if solid is not None:
                    solids.append(solid)
            else:
                raise ScadEvalError(f"unsupported statement {statement!r}")
        return solids

    def _flatten_for(self, loop: ast.ForLoop, env: _Environment) -> List[Term]:
        iterable = self.eval_expr(loop.iterable, env)
        if not isinstance(iterable, list):
            raise ScadEvalError("for-loop iterable must be a vector or range")
        solids: List[Term] = []
        for value in iterable:
            body_env = env.child()
            body_env.variables[loop.variable] = value
            solids.extend(self.flatten_statements(loop.body, body_env))
        return solids

    def _argument(
        self,
        call: ast.ModuleCall,
        env: _Environment,
        position: int,
        name: str,
        default: Optional[Value] = None,
    ) -> Optional[Value]:
        for arg_name, expr in call.named:
            if arg_name == name:
                return self.eval_expr(expr, env)
        if position < len(call.positional):
            return self.eval_expr(call.positional[position], env)
        return default

    def _children_solid(self, call: ast.ModuleCall, env: _Environment) -> Term:
        children = self.flatten_statements(call.children, env.child())
        if not children:
            return empty()
        return union_all(children)

    def _flatten_call(self, call: ast.ModuleCall, env: _Environment) -> Optional[Term]:
        name = call.name

        if name in ("translate", "rotate", "scale"):
            vector = self._as_vector3(self._argument(call, env, 0, "v", [0, 0, 0]))
            child = self._children_solid(call, env)
            builder = {"translate": translate, "rotate": rotate, "scale": scale}[name]
            return builder(vector[0], vector[1], vector[2], child)

        if name in ("union", "group"):
            return self._children_solid(call, env)

        if name == "difference":
            # OpenSCAD semantics: the first child minus the union of the rest.
            children = self.flatten_statements(call.children, env.child())
            if not children:
                return empty()
            if len(children) == 1:
                return children[0]
            return diff(children[0], union_all(children[1:]))

        if name == "intersection":
            children = self.flatten_statements(call.children, env.child())
            if not children:
                return empty()
            result = children[-1]
            for other in reversed(children[:-1]):
                result = inter(other, result)
            return result

        if name == "cube":
            size = self._as_vector3(self._argument(call, env, 0, "size", 1.0))
            centered = bool(self._argument(call, env, 1, "center", False))
            solid = scale(size[0], size[1], size[2], cube())
            if centered:
                return solid
            return translate(size[0] / 2, size[1] / 2, size[2] / 2, solid)

        if name == "sphere":
            radius = self._argument(call, env, 0, "r", None)
            if radius is None:
                diameter = self._argument(call, env, 0, "d", 2.0)
                radius = self._as_number(diameter) / 2.0
            radius = self._as_number(radius)
            return scale(radius, radius, radius, sphere())

        if name == "cylinder":
            height = self._as_number(self._argument(call, env, 0, "h", 1.0))
            radius = self._argument(call, env, 1, "r", None)
            if radius is None:
                diameter = self._argument(call, env, 1, "d", None)
                radius = self._as_number(diameter) / 2.0 if diameter is not None else 1.0
            radius = self._as_number(radius)
            centered = bool(self._argument(call, env, 2, "center", False))
            solid = scale(radius, radius, height, cylinder())
            if centered:
                return solid
            return translate(0.0, 0.0, height / 2.0, solid)

        if name in ("hexprism", "hexagon"):
            # Not an OpenSCAD builtin; accepted for symmetry with the CSG
            # language so benchmark sources can state hexagonal prisms
            # directly.
            height = self._as_number(self._argument(call, env, 0, "h", 1.0))
            radius = self._as_number(self._argument(call, env, 1, "r", 1.0))
            return scale(radius, radius, height, hexagon())

        if name in ("hull", "mirror", "minkowski", "linear_extrude", "rotate_extrude"):
            # Features Szalinski does not interpret: wrap in External, as the
            # paper does for the soldering and sander benchmarks.
            return Term("External")

        if name in env.modules:
            return self._flatten_user_module(env.modules[name], call, env)

        if name in ("echo", "assert"):
            return None

        raise ScadEvalError(f"unsupported module {name!r}")

    def _flatten_user_module(
        self, definition: ast.ModuleDef, call: ast.ModuleCall, env: _Environment
    ) -> Term:
        body_env = env.child()
        for position, (param_name, default_expr) in enumerate(definition.params):
            value = self._argument(call, env, position, param_name, None)
            if value is None:
                if default_expr is None:
                    raise ScadEvalError(
                        f"missing argument {param_name!r} for module {definition.name!r}"
                    )
                value = self.eval_expr(default_expr, env)
            body_env.variables[param_name] = value
        solids = self.flatten_statements(definition.body, body_env)
        if not solids:
            return empty()
        return union_all(solids)


def flatten_scad(program: ast.Program, *, max_unroll: int = 100_000) -> Term:
    """Flatten a parsed OpenSCAD program to a single flat CSG term."""
    flattener = _Flattener(max_unroll=max_unroll)
    solids = flattener.flatten_statements(program.statements, _Environment())
    if not solids:
        return empty()
    return union_all(solids)


def flatten_source(source: str, *, max_unroll: int = 100_000) -> Term:
    """Parse and flatten OpenSCAD source text."""
    return flatten_scad(parse_scad(source), max_unroll=max_unroll)
