"""OpenSCAD frontend and backend.

The paper's benchmark pipeline starts from OpenSCAD designs found on
Thingiverse: a translator *flattens* those (loops, variables, modules) into
loop-free CSG for Szalinski to consume, and a second translator renders the
synthesized LambdaCAD back to OpenSCAD so models can be visually validated.
This package implements both directions for the language subset the
benchmarks need:

* primitives ``cube``, ``cylinder``, ``sphere`` (with ``center``/``r``/``d``);
* transforms ``translate``, ``rotate``, ``scale``;
* booleans ``union``, ``difference``, ``intersection``;
* ``for`` loops over ranges and vectors, variable assignment, arithmetic,
  trigonometric functions, vector literals and indexing;
* user module definitions and instantiations.
"""

from repro.scad.lexer import tokenize, Token, ScadSyntaxError
from repro.scad.parser import parse_scad
from repro.scad.flatten import flatten_scad, flatten_source, ScadEvalError
from repro.scad.emit import emit_openscad

__all__ = [
    "tokenize",
    "Token",
    "ScadSyntaxError",
    "parse_scad",
    "flatten_scad",
    "flatten_source",
    "ScadEvalError",
    "emit_openscad",
]
