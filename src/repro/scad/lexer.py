"""Tokenizer for the OpenSCAD subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


class ScadSyntaxError(ValueError):
    """Raised for malformed OpenSCAD source."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        super().__init__(f"{message} (line {line})" if line else message)


@dataclass(frozen=True)
class Token:
    """A lexical token: kind is one of number, ident, string, op, punct."""

    kind: str
    text: str
    line: int

    @property
    def value(self) -> float:
        if self.kind != "number":
            raise ScadSyntaxError(f"token {self.text!r} is not a number", self.line)
        return float(self.text)


_PUNCTUATION = "()[]{},;="
_OPERATORS = ("<=", ">=", "==", "!=", "&&", "||", "+", "-", "*", "/", "%", "<", ">", "!", ":", "?", ".")
_KEYWORDS = {"module", "function", "for", "if", "else", "true", "false", "let", "each"}


def tokenize(source: str) -> List[Token]:
    """Tokenize OpenSCAD source, stripping ``//`` and ``/* */`` comments."""
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
        elif ch in " \t\r":
            i += 1
        elif source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
        elif source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise ScadSyntaxError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
        elif ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            while i < n and (source[i].isdigit() or source[i] == "."):
                i += 1
            if i < n and source[i] in "eE":
                i += 1
                if i < n and source[i] in "+-":
                    i += 1
                while i < n and source[i].isdigit():
                    i += 1
            tokens.append(Token("number", source[start:i], line))
        elif ch.isalpha() or ch == "_" or ch == "$":
            start = i
            while i < n and (source[i].isalnum() or source[i] in "_$"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in _KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
        elif ch == '"':
            start = i
            i += 1
            while i < n and source[i] != '"':
                if source[i] == "\\":
                    i += 1
                i += 1
            if i >= n:
                raise ScadSyntaxError("unterminated string literal", line)
            i += 1
            tokens.append(Token("string", source[start + 1 : i - 1], line))
        else:
            matched = None
            for operator in _OPERATORS:
                if source.startswith(operator, i):
                    matched = operator
                    break
            if matched is not None and matched not in _PUNCTUATION:
                tokens.append(Token("op", matched, line))
                i += len(matched)
            elif ch in _PUNCTUATION:
                tokens.append(Token("punct", ch, line))
                i += 1
            else:
                raise ScadSyntaxError(f"unexpected character {ch!r}", line)
    return tokens
