"""Recursive-descent parser for the OpenSCAD subset."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.scad import ast
from repro.scad.lexer import ScadSyntaxError, Token, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token helpers -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[Token]:
        index = self.position + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise ScadSyntaxError("unexpected end of input")
        self.position += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            raise ScadSyntaxError(
                f"expected {text or kind}, found {token.text!r}", token.line
            )
        return token

    def _at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        if token is None:
            return False
        return token.kind == kind and (text is None or token.text == text)

    # -- program -----------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        statements = []
        while self._peek() is not None:
            statements.append(self.parse_statement())
        return ast.Program(statements)

    # -- statements ----------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        if self._at("keyword", "module"):
            return self._parse_module_def()
        if self._at("keyword", "for"):
            return self._parse_for()
        if self._at("keyword", "if"):
            return self._parse_if()
        if self._at("punct", "{"):
            # A bare block groups children implicitly under a union.
            return ast.ModuleCall(name="union", children=self._parse_block())
        token = self._peek()
        if token is not None and token.kind == "ident":
            after = self._peek(1)
            if after is not None and after.kind == "punct" and after.text == "=":
                return self._parse_assignment()
            return self._parse_module_call()
        raise ScadSyntaxError(
            f"unexpected token {token.text!r}" if token else "unexpected end of input",
            token.line if token else 0,
        )

    def _parse_assignment(self) -> ast.Assignment:
        name = self._expect("ident").text
        self._expect("punct", "=")
        value = self.parse_expression()
        self._expect("punct", ";")
        return ast.Assignment(name, value)

    def _parse_module_def(self) -> ast.ModuleDef:
        self._expect("keyword", "module")
        name = self._expect("ident").text
        self._expect("punct", "(")
        params: List[Tuple[str, Optional[ast.Expr]]] = []
        while not self._at("punct", ")"):
            param_name = self._expect("ident").text
            default: Optional[ast.Expr] = None
            if self._at("punct", "="):
                self._next()
                default = self.parse_expression()
            params.append((param_name, default))
            if self._at("punct", ","):
                self._next()
        self._expect("punct", ")")
        body = self._parse_block()
        return ast.ModuleDef(name, params, body)

    def _parse_for(self) -> ast.ForLoop:
        self._expect("keyword", "for")
        self._expect("punct", "(")
        variable = self._expect("ident").text
        self._expect("punct", "=")
        iterable = self.parse_expression()
        self._expect("punct", ")")
        body = self._parse_body()
        return ast.ForLoop(variable, iterable, body)

    def _parse_if(self) -> ast.IfStatement:
        self._expect("keyword", "if")
        self._expect("punct", "(")
        condition = self.parse_expression()
        self._expect("punct", ")")
        then_body = self._parse_body()
        else_body: List[ast.Statement] = []
        if self._at("keyword", "else"):
            self._next()
            else_body = self._parse_body()
        return ast.IfStatement(condition, then_body, else_body)

    def _parse_module_call(self) -> ast.ModuleCall:
        name = self._expect("ident").text
        self._expect("punct", "(")
        positional: List[ast.Expr] = []
        named: List[Tuple[str, ast.Expr]] = []
        while not self._at("punct", ")"):
            token = self._peek()
            after = self._peek(1)
            if (
                token is not None
                and token.kind == "ident"
                and after is not None
                and after.kind == "punct"
                and after.text == "="
            ):
                self._next()
                self._next()
                named.append((token.text, self.parse_expression()))
            else:
                positional.append(self.parse_expression())
            if self._at("punct", ","):
                self._next()
        self._expect("punct", ")")
        children = self._parse_body(allow_empty=True)
        return ast.ModuleCall(name, positional, named, children)

    def _parse_body(self, *, allow_empty: bool = False) -> List[ast.Statement]:
        """The child part of a call / for / if: a block, one statement, or ``;``."""
        if self._at("punct", "{"):
            return self._parse_block()
        if self._at("punct", ";"):
            self._next()
            return []
        if allow_empty and (self._peek() is None):
            return []
        return [self.parse_statement()]

    def _parse_block(self) -> List[ast.Statement]:
        self._expect("punct", "{")
        statements = []
        while not self._at("punct", "}"):
            statements.append(self.parse_statement())
        self._expect("punct", "}")
        return statements

    # -- expressions ---------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_conditional()

    def _parse_conditional(self) -> ast.Expr:
        condition = self._parse_comparison()
        if self._at("op", "?"):
            self._next()
            if_true = self.parse_expression()
            self._expect("op", ":")
            if_false = self.parse_expression()
            return ast.Conditional(condition, if_true, if_false)
        return condition

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        while self._at("op", "<") or self._at("op", ">") or self._at("op", "<=") \
                or self._at("op", ">=") or self._at("op", "==") or self._at("op", "!="):
            op = self._next().text
            right = self._parse_additive()
            left = ast.BinOp(op, left, right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._at("op", "+") or self._at("op", "-"):
            op = self._next().text
            right = self._parse_multiplicative()
            left = ast.BinOp(op, left, right)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._at("op", "*") or self._at("op", "/") or self._at("op", "%"):
            op = self._next().text
            right = self._parse_unary()
            left = ast.BinOp(op, left, right)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._at("op", "-"):
            self._next()
            return ast.UnaryOp("-", self._parse_unary())
        if self._at("op", "!"):
            self._next()
            return ast.UnaryOp("!", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self._at("punct", "["):
            self._next()
            index = self.parse_expression()
            self._expect("punct", "]")
            expr = ast.Index(expr, index)
        return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._next()
        if token.kind == "number":
            return ast.Number(float(token.text))
        if token.kind == "string":
            return ast.String(token.text)
        if token.kind == "keyword" and token.text in ("true", "false"):
            return ast.Boolean(token.text == "true")
        if token.kind == "ident":
            if self._at("punct", "("):
                self._next()
                args: List[ast.Expr] = []
                while not self._at("punct", ")"):
                    args.append(self.parse_expression())
                    if self._at("punct", ","):
                        self._next()
                self._expect("punct", ")")
                return ast.Call(token.text, tuple(args))
            return ast.Ident(token.text)
        if token.kind == "punct" and token.text == "(":
            inner = self.parse_expression()
            self._expect("punct", ")")
            return inner
        if token.kind == "punct" and token.text == "[":
            return self._parse_vector_or_range()
        raise ScadSyntaxError(f"unexpected token {token.text!r}", token.line)

    def _parse_vector_or_range(self) -> ast.Expr:
        if self._at("punct", "]"):
            self._next()
            return ast.Vector(())
        first = self.parse_expression()
        if self._at("op", ":"):
            self._next()
            second = self.parse_expression()
            if self._at("op", ":"):
                self._next()
                third = self.parse_expression()
                self._expect("punct", "]")
                return ast.Range(start=first, step=second, end=third)
            self._expect("punct", "]")
            return ast.Range(start=first, end=second)
        items = [first]
        while self._at("punct", ","):
            self._next()
            if self._at("punct", "]"):
                break
            items.append(self.parse_expression())
        self._expect("punct", "]")
        return ast.Vector(tuple(items))


def parse_scad(source: str) -> ast.Program:
    """Parse OpenSCAD source into a :class:`repro.scad.ast.Program`."""
    return _Parser(tokenize(source)).parse_program()
