"""Command-line interface for the Szalinski reproduction.

Usage examples::

    szalinski synth model.csg            # synthesize top-k programs for a flat CSG file
    szalinski flatten design.scad        # flatten an OpenSCAD design to flat CSG
    szalinski table1                     # reproduce Table 1 over the benchmark suite
    szalinski bench gear                 # run one benchmark by name
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.benchsuite.suite import BENCHMARKS, benchmark_names, get_benchmark
from repro.benchsuite.table1 import format_table, run_benchmark, run_table1
from repro.core.config import SynthesisConfig
from repro.core.pipeline import synthesize
from repro.csg.parser import parse_csg
from repro.csg.pretty import format_openscad_like, format_term
from repro.scad.flatten import flatten_source
from repro.verify.validate import validate_synthesis


def _config_from_args(args: argparse.Namespace) -> SynthesisConfig:
    return SynthesisConfig(
        epsilon=args.epsilon,
        top_k=args.top_k,
        cost_function=args.cost,
    )


def _cmd_synth(args: argparse.Namespace) -> int:
    text = Path(args.input).read_text()
    csg = parse_csg(text, strict=False)
    result = synthesize(csg, _config_from_args(args))
    for candidate in result.candidates:
        print(f"-- rank {candidate.rank} (cost {candidate.cost:g}, loops={candidate.has_loops})")
        print(format_openscad_like(candidate.term))
    if args.validate:
        report = validate_synthesis(csg, result.output_term())
        print(f"-- validation: {'OK' if report.valid else 'FAILED'}")
    print(
        f"-- {result.seconds:.2f}s, loops {result.loop_summary()}, "
        f"functions {result.function_summary()}, "
        f"size reduction {result.size_reduction() * 100.0:.1f}%"
    )
    return 0


def _cmd_flatten(args: argparse.Namespace) -> int:
    source = Path(args.input).read_text()
    flat = flatten_source(source)
    print(format_term(flat))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = run_table1()
    print(format_table(rows))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    benchmark = get_benchmark(args.name)
    row = run_benchmark(benchmark)
    print(format_table([row]))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    for benchmark in BENCHMARKS:
        structure = "structured" if benchmark.expects_structure else "no structure"
        print(f"{benchmark.name:<16} {benchmark.label():<26} [{benchmark.source}] {structure}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="szalinski",
        description="Szalinski reproduction: infer loops and functions in flat CSG models.",
    )
    parser.add_argument("--epsilon", type=float, default=1e-3, help="solver noise tolerance")
    parser.add_argument("--top-k", type=int, default=5, help="number of programs to return")
    parser.add_argument(
        "--cost", choices=("ast-size", "reward-loops"), default="ast-size",
        help="extraction cost function",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    synth = subparsers.add_parser("synth", help="synthesize programs for a flat CSG file")
    synth.add_argument("input", help="path to an s-expression CSG file")
    synth.add_argument("--validate", action="store_true", help="validate the output by unrolling")
    synth.set_defaults(func=_cmd_synth)

    flatten = subparsers.add_parser("flatten", help="flatten an OpenSCAD file to flat CSG")
    flatten.add_argument("input", help="path to an OpenSCAD file")
    flatten.set_defaults(func=_cmd_flatten)

    table1 = subparsers.add_parser("table1", help="reproduce Table 1 over the benchmark suite")
    table1.set_defaults(func=_cmd_table1)

    bench = subparsers.add_parser("bench", help="run a single benchmark by name")
    bench.add_argument("name", choices=benchmark_names())
    bench.set_defaults(func=_cmd_bench)

    lister = subparsers.add_parser("list", help="list the benchmark suite")
    lister.set_defaults(func=_cmd_list)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``szalinski`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
