"""Command-line interface for the Szalinski reproduction.

Usage examples::

    szalinski synth model.csg                  # synthesize top-k programs for a flat CSG file
    szalinski flatten design.scad              # flatten an OpenSCAD design to flat CSG
    szalinski table1 --jobs 4 --cache .cache   # Table 1 as a parallel, cache-aware batch run
    szalinski bench gear                       # run one benchmark by name
    szalinski batch a.csg b.csg --jobs 2       # batch-synthesize many flat CSG files
    szalinski serve --socket /tmp/sz.sock --jobs 4 --cache .cache   # resident daemon
    szalinski submit --socket /tmp/sz.sock a.csg --wait             # job via the daemon
    szalinski stats --socket /tmp/sz.sock --percentiles             # latency percentiles
    szalinski trace spans.jsonl --chrome out.json                   # Perfetto conversion

The synthesis knobs (``--epsilon``, ``--top-k``/``--topk``, ``--cost``,
``--rewrite-iterations``, ``--max-enodes``, ``--max-seconds``,
``--no-incremental``, ``--no-incremental-extraction``, ``--rules``) are
global options threaded into :class:`~repro.core.config.SynthesisConfig`
for ``synth`` (alias ``run``) and ``batch``.  ``table1`` and ``bench``
deliberately keep the paper's per-benchmark default configuration so their
rows stay comparable to Table 1.  ``--cache-max-mb`` bounds the disk tier
of the result cache (LRU eviction by entry mtime), and
``--no-semantic-cache`` turns off its semantic (normalized-key) lookup
level so only byte-identical inputs hit.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.benchsuite.suite import BENCHMARKS, benchmark_names, get_benchmark
from repro.benchsuite.table1 import (
    format_table,
    run_table1_batch,
)
from repro.core.config import SynthesisConfig
from repro.core.pipeline import synthesize
from repro.core.rules import rules_by_category
from repro.csg.parser import parse_csg
from repro.csg.pretty import format_openscad_like, format_term
from repro.scad.flatten import flatten_source
from repro.service.cache import ResultCache
from repro.service.job import SynthesisJob
from repro.service.service import SynthesisService
from repro.verify.validate import validate_synthesis


def _rule_categories(text: str) -> tuple:
    """Argparse type for ``--rules``.

    A comma-separated list of categories *replaces* the default set;
    ``+category`` entries *extend* it instead (so ``--rules
    +boolean-expansive`` is the opt-in the ROADMAP describes).  The two
    forms cannot be mixed.
    """
    entries = tuple(part.strip() for part in text.split(",") if part.strip())
    if not entries:
        raise argparse.ArgumentTypeError("expected at least one rule category")
    additive = all(entry.startswith("+") for entry in entries)
    if any(entry.startswith("+") for entry in entries) and not additive:
        raise argparse.ArgumentTypeError(
            "cannot mix replacing (CAT) and extending (+CAT) entries"
        )
    categories = tuple(entry.lstrip("+") for entry in entries)
    known = set(rules_by_category())
    unknown = [category for category in categories if category not in known]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown rule categories {', '.join(unknown)}; known: {', '.join(sorted(known))}"
        )
    if additive:
        defaults = SynthesisConfig().rule_categories
        return defaults + tuple(c for c in categories if c not in defaults)
    return categories


def _config_from_args(args: argparse.Namespace) -> SynthesisConfig:
    """Thread every exposed knob into a SynthesisConfig."""
    kwargs = dict(
        epsilon=args.epsilon,
        top_k=args.top_k,
        cost_function=args.cost,
        rewrite_iterations=args.rewrite_iterations,
        max_enodes=args.max_enodes,
        max_seconds=args.max_seconds,
        incremental_search=not args.no_incremental,
        incremental_extraction=not args.no_incremental_extraction,
        apply_dedup=not args.no_apply_dedup,
    )
    if args.search_workers:
        from repro.egraph.parallel import clamp_search_workers

        # Each concurrent job slot may host its own search pool, so the
        # requested per-job count is clamped to jobs × workers <= cores
        # (`synth` and inline `batch --jobs 0` count as one slot).
        slots = max(1, getattr(args, "jobs", 1) or 1)
        kwargs["search_workers"] = clamp_search_workers(args.search_workers, slots)
    if args.rules is not None:
        kwargs["rule_categories"] = args.rules
    return SynthesisConfig(**kwargs)


def _print_event(event) -> None:
    print(str(event))


def _build_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    """A ResultCache from --cache/--cache-max-mb, or None without --cache."""
    if not args.cache:
        if args.cache_max_mb is not None:
            raise SystemExit("--cache-max-mb requires --cache DIR")
        return None
    max_bytes = None
    if args.cache_max_mb is not None:
        if args.cache_max_mb <= 0:
            raise SystemExit("--cache-max-mb must be positive")
        max_bytes = int(args.cache_max_mb * 1024 * 1024)
    return ResultCache(
        args.cache,
        max_bytes=max_bytes,
        semantic=not getattr(args, "no_semantic_cache", False),
    )


def _write_report(path: Optional[str], payload: dict) -> None:
    if path:
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def _cmd_synth(args: argparse.Namespace) -> int:
    tracer = None
    if args.trace:
        from repro.obs.trace import Tracer

        tracer = Tracer()
    name = Path(args.input).stem
    csg = None
    if tracer is not None:
        with tracer.span("job", {"name": name}):
            with tracer.span("parse"):
                csg = parse_csg(Path(args.input).read_text(), strict=False)
            result = synthesize(csg, _config_from_args(args), tracer=tracer)
            if args.validate:
                report = validate_synthesis(csg, result.output_term(), tracer=tracer)
    else:
        csg = parse_csg(Path(args.input).read_text(), strict=False)
        result = synthesize(csg, _config_from_args(args))
        if args.validate:
            report = validate_synthesis(csg, result.output_term())
    for candidate in result.candidates:
        print(f"-- rank {candidate.rank} (cost {candidate.cost:g}, loops={candidate.has_loops})")
        print(format_openscad_like(candidate.term))
    if args.validate:
        print(f"-- validation: {'OK' if report.valid else 'FAILED'}")
    if tracer is not None:
        from repro.obs.export import span_lines, write_trace_jsonl

        count = write_trace_jsonl(
            Path(args.trace), span_lines(f"synth:{name}", name, tracer.export())
        )
        print(f"-- trace: {count} span(s) appended to {args.trace}")
    print(
        f"-- {result.seconds:.2f}s, loops {result.loop_summary()}, "
        f"functions {result.function_summary()}, "
        f"size reduction {result.size_reduction() * 100.0:.1f}%"
    )
    return 0


def _cmd_flatten(args: argparse.Namespace) -> int:
    source = Path(args.input).read_text()
    flat = flatten_source(source)
    print(format_term(flat))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    cache = _build_cache(args)
    mutate = None
    if args.semantic_variants:
        from repro.benchsuite.variants import semantic_variant

        mutate = semantic_variant
    report = run_table1_batch(
        worker_count=args.jobs,
        cache=cache,
        on_event=_print_event if args.progress else None,
        persistent=args.persistent_workers,
        mutate=mutate,
    )
    print(format_table(report.rows, report.failures))
    if cache is not None and report.batch is not None:
        print(
            f"-- cache: {report.batch.cache_hits}/{len(report.batch.results)} jobs served "
            f"({report.batch.exact_hits} exact, {report.batch.semantic_hits} semantic; "
            f"{report.batch.cache['hit_rate'] * 100.0:.0f}% of lookups hit)"
        )
    _write_report(args.report, report.to_dict())
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    benchmark = get_benchmark(args.name)
    report = run_table1_batch([benchmark])
    print(format_table(report.rows, report.failures))
    return 0 if report.ok else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    import traceback

    from repro.service.job import JobResult, JobStatus

    config = _config_from_args(args)
    jobs = []
    build_failures = []
    for path in args.inputs:
        # A file that cannot be read or parsed is isolated exactly like a
        # job that fails later: one FAILED line, the batch keeps going.
        try:
            jobs.append(SynthesisJob.from_file(path, config, timeout=args.timeout))
        except Exception:
            build_failures.append(
                JobResult(
                    job_id=f"file:{path}",
                    name=Path(path).stem,
                    status=JobStatus.FAILED,
                    error=traceback.format_exc(),
                )
            )
    bench_names = list(args.bench)
    if args.suite:
        bench_names.extend(b.name for b in BENCHMARKS if b.name not in bench_names)
    if bench_names:
        from repro.benchsuite.table1 import benchmark_jobs

        selection = [get_benchmark(name) for name in bench_names]
        bench_jobs, bench_failures = benchmark_jobs(selection, timeout=args.timeout)
        jobs.extend(bench_jobs)
        build_failures.extend(bench_failures)
    if not jobs and not build_failures:
        print("batch: nothing to do (pass CSG files, --bench NAME, or --suite)")
        return 2

    cache = _build_cache(args)
    service = SynthesisService(
        worker_count=args.jobs,
        cache=cache,
        on_event=_print_event,
        persistent=args.persistent_workers,
        trace=bool(args.trace),
    )
    batch = service.run_batch(jobs)
    if args.trace:
        from repro.obs.export import span_lines, write_trace_jsonl

        written = 0
        for result in batch.results:
            if result.trace:
                written += write_trace_jsonl(
                    Path(args.trace),
                    span_lines(result.job_id, result.name, result.trace),
                )
        print(f"-- trace: {written} span(s) appended to {args.trace}")

    failures = build_failures + batch.failed
    for result in batch.results:
        if result.ok:
            best = result.result.best
            origin = "cache" if result.cached else f"{result.seconds:.2f}s"
            print(
                f"ok     {result.name:<20} cost {best.cost:g} "
                f"loops {result.result.loop_summary():<8} [{origin}]"
            )
    for failure in failures:
        print(f"FAILED {failure.name:<20} [{failure.status.value}] {failure.error_summary()}")
    hit_note = (
        f", {batch.cache_hits} from cache "
        f"({batch.exact_hits} exact, {batch.semantic_hits} semantic; "
        f"{batch.cache['hit_rate'] * 100.0:.0f}% hit rate)"
        if cache is not None
        else ""
    )
    print(
        f"-- {len(batch.succeeded)}/{len(jobs) + len(build_failures)} jobs succeeded in "
        f"{batch.seconds:.2f}s with {args.jobs} worker(s){hit_note}"
    )
    payload = batch.to_dict()
    payload["build_failures"] = [failure.to_dict() for failure in build_failures]
    _write_report(args.report, payload)
    return 0 if not failures else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the resident synthesis daemon until SIGTERM/SIGINT (or a
    client's ``shutdown`` request), then drain and exit cleanly."""
    import signal

    from repro.service.daemon import SynthesisDaemon

    if args.jobs < 1:
        raise SystemExit("serve: --jobs must be >= 1 (the daemon always uses workers)")
    cache = _build_cache(args)
    daemon = SynthesisDaemon(
        args.socket,
        worker_count=args.jobs,
        cache=cache,
        max_pending=args.max_pending,
        default_timeout=args.timeout,
        trace_jobs=not args.no_job_tracing,
        trace_path=args.trace,
        search_workers=args.search_workers,
    )
    daemon.start()

    def _graceful(signum, frame):
        print(f"-- received signal {signum}: draining in-flight jobs", flush=True)
        daemon.request_shutdown()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    print(
        f"-- szalinski daemon serving on {args.socket} "
        f"({args.jobs} worker(s), cache {'at ' + args.cache if args.cache else 'off'}, "
        f"max {args.max_pending} pending)",
        flush=True,
    )
    daemon.serve_forever()
    print("-- daemon stopped", flush=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Talk to a running daemon: submit jobs, or query/stop it."""
    from repro.service.protocol import DaemonClient, DaemonError

    control = [name for name in ("health", "stats", "shutdown") if getattr(args, name)]
    if len(control) > 1:
        raise SystemExit("submit: --health/--stats/--shutdown are mutually exclusive")
    if control and (args.inputs or args.bench or args.suite):
        raise SystemExit(f"submit: --{control[0]} does not take job inputs")

    try:
        client = DaemonClient(args.socket, timeout=args.connect_timeout)
    except OSError as exc:
        raise SystemExit(f"submit: cannot reach daemon at {args.socket}: {exc}")
    with client:
        if control:
            try:
                response = getattr(client, control[0])()
            except DaemonError as exc:
                raise SystemExit(f"submit: daemon error: {exc}")
            print(json.dumps(response, indent=2))
            return 0

        specs = []
        read_failures = []
        for path in args.inputs:
            # An unreadable file is isolated exactly like the batch CLI
            # does it: one failed line, the submission keeps going.
            try:
                text = Path(path).read_text()
            except OSError as exc:
                read_failures.append((Path(path).stem, str(exc)))
                continue
            specs.append({"name": Path(path).stem, "term": text})
        bench_names = list(args.bench)
        if args.suite:
            bench_names.extend(b.name for b in BENCHMARKS if b.name not in bench_names)
        if bench_names:
            from repro.benchsuite.table1 import benchmark_jobs
            from repro.lang.canon import canonical_term_text

            selection = [get_benchmark(name) for name in bench_names]
            bench_jobs, bench_failures = benchmark_jobs(selection)
            for job in bench_jobs:
                specs.append(
                    {
                        "name": job.name,
                        "term": canonical_term_text(job.term),
                        "config": job.config.to_dict(),
                    }
                )
            read_failures.extend(
                (failure.name, failure.error_summary()) for failure in bench_failures
            )
        for spec in specs:
            if args.timeout is not None:
                spec["timeout"] = args.timeout
            if args.priority:
                spec["priority"] = args.priority
        if not specs and not read_failures:
            print("submit: nothing to do (pass CSG files, --bench NAME, or --suite)")
            return 2

        results = []
        try:
            if args.wait:
                results = client.submit_and_wait(specs)
            elif specs:
                accepted = client.submit(specs, wait=False)
                print(f"accepted {len(accepted['job_ids'])} job(s): "
                      + ", ".join(accepted["job_ids"]))
        except DaemonError as exc:
            print(f"rejected: {exc}")
            return 3

        failed = list(read_failures)
        for result in results:
            if result["status"] == "succeeded":
                headline = result.get("result") or {}
                origin = (
                    f"cache:{result.get('cache_tier', 'exact')}"
                    if result.get("cached")
                    else f"{result.get('seconds', 0.0):.2f}s"
                )
                cost = headline.get("best_cost")
                print(
                    f"ok     {result['name']:<20} "
                    f"cost {cost:g} [{origin}]" if cost is not None
                    else f"ok     {result['name']:<20} [{origin}]"
                )
            else:
                failed.append((result["name"], result.get("error", result["status"])))
        for name, error in failed:
            print(f"FAILED {name:<20} {error}")
        if args.wait:
            succeeded = sum(1 for r in results if r["status"] == "succeeded")
            hits = sum(1 for r in results if r.get("cached"))
            print(
                f"-- {succeeded}/{len(specs) + len(read_failures)} jobs succeeded, "
                f"{hits} from cache"
            )
        _write_report(
            args.report,
            {
                "socket": args.socket,
                "results": results,
                "read_failures": [
                    {"name": name, "error": error} for name, error in read_failures
                ],
            },
        )
        return 0 if not failed else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    """Query a running daemon's stats frame; render latency percentiles."""
    from repro.service.protocol import DaemonClient

    try:
        client = DaemonClient(args.socket, timeout=args.connect_timeout)
    except OSError as exc:
        raise SystemExit(f"stats: cannot reach daemon at {args.socket}: {exc}")
    if args.prometheus:
        with client:
            frame = client.metrics()
        print(frame.get("text", ""), end="")
        return 0
    with client:
        frame = client.stats()
    if args.percentiles:
        from repro.obs.histogram import format_latency_table

        print(format_latency_table(frame.get("latency")))
    else:
        print(json.dumps(frame, indent=2))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Summarize a JSONL trace file; optionally convert it for Perfetto."""
    from repro.obs.export import read_trace_jsonl, write_chrome_trace
    from repro.obs.histogram import LatencyHistogram, format_latency_table

    try:
        records = read_trace_jsonl(Path(args.input))
    except (OSError, ValueError) as exc:
        raise SystemExit(f"trace: cannot read {args.input}: {exc}")
    jobs = {str(record.get("job_id", "?")) for record in records}
    phases = {}
    root_hist = LatencyHistogram()
    for record in records:
        name = record.get("name", "?")
        phases.setdefault(name, LatencyHistogram()).record(record.get("duration", 0.0))
        if record.get("parent_id") is None:
            root_hist.record(record.get("duration", 0.0))
    snapshot = {
        "jobs": root_hist.to_dict(),
        "phases": {name: hist.to_dict() for name, hist in sorted(phases.items())},
    }
    print(f"{len(records)} span(s) from {len(jobs)} job(s) in {args.input}")
    print(format_latency_table(snapshot))
    if args.chrome:
        events = write_chrome_trace(Path(args.chrome), records)
        print(
            f"-- wrote {events} trace event(s) to {args.chrome} "
            "(open at https://ui.perfetto.dev or chrome://tracing)"
        )
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    for benchmark in BENCHMARKS:
        structure = "structured" if benchmark.expects_structure else "no structure"
        print(f"{benchmark.name:<16} {benchmark.label():<26} [{benchmark.source}] {structure}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="szalinski",
        description="Szalinski reproduction: infer loops and functions in flat CSG models.",
    )
    parser.add_argument("--epsilon", type=float, default=1e-3, help="solver noise tolerance")
    parser.add_argument(
        "--top-k", "--topk", dest="top_k", type=int, default=5,
        help="number of programs to return",
    )
    parser.add_argument(
        "--cost", choices=("ast-size", "reward-loops"), default="ast-size",
        help="extraction cost function",
    )
    parser.add_argument(
        "--rewrite-iterations", type=int, default=SynthesisConfig.rewrite_iterations,
        help="inner saturation iteration limit",
    )
    parser.add_argument(
        "--max-enodes", type=int, default=SynthesisConfig.max_enodes,
        help="e-graph node budget for saturation",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=SynthesisConfig.max_seconds,
        help="saturation wall-clock budget in seconds",
    )
    parser.add_argument(
        "--no-incremental", action="store_true",
        help="disable the incremental trie e-matcher (use the naive sweep)",
    )
    parser.add_argument(
        "--no-incremental-extraction", action="store_true",
        help="disable the saturation-time cost analysis (recompute best "
        "costs from scratch at extraction time)",
    )
    parser.add_argument(
        "--no-apply-dedup", action="store_true",
        help="disable the apply-phase dedup ledger (re-apply every match "
        "every iteration)",
    )
    parser.add_argument(
        "--search-workers", type=int, default=0, metavar="N",
        help="search-worker processes per saturation run (0 = serial); "
        "e-matching fans out over a shared-memory e-graph snapshot with "
        "byte-identical results; clamped so jobs x workers <= cores",
    )
    parser.add_argument(
        "--rules", type=_rule_categories, default=None, metavar="CAT[,CAT...]",
        help=(
            "rewrite-rule categories: a plain list REPLACES the default set, "
            "while +CAT entries EXTEND it (e.g. --rules +boolean-expansive); "
            f"known: {', '.join(sorted(rules_by_category()))}"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    synth = subparsers.add_parser(
        "synth", aliases=["run"],
        help="synthesize programs for a flat CSG file (alias: run)",
    )
    synth.add_argument("input", help="path to an s-expression CSG file")
    synth.add_argument("--validate", action="store_true", help="validate the output by unrolling")
    synth.add_argument(
        "--trace", metavar="FILE",
        help="append per-phase span records (JSONL, one span per line) to FILE",
    )
    synth.set_defaults(func=_cmd_synth)

    flatten = subparsers.add_parser("flatten", help="flatten an OpenSCAD file to flat CSG")
    flatten.add_argument("input", help="path to an OpenSCAD file")
    flatten.set_defaults(func=_cmd_flatten)

    table1 = subparsers.add_parser(
        "table1", help="reproduce Table 1 over the benchmark suite (batch service)"
    )
    table1.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes (0 = run in-process)",
    )
    table1.add_argument(
        "--persistent-workers", action="store_true",
        help="keep worker processes alive across jobs within the batch "
        "(amortizes startup; crashed workers are respawned)",
    )
    table1.add_argument("--cache", help="content-addressed result cache directory")
    table1.add_argument(
        "--cache-max-mb", type=float, default=None,
        help="evict least-recently-used disk cache entries beyond this size",
    )
    table1.add_argument(
        "--no-semantic-cache", action="store_true",
        help="disable the cache's semantic (normalized-key) lookup level; "
        "only byte-identical inputs hit",
    )
    table1.add_argument(
        "--semantic-variants", action="store_true",
        help="run the suite over semantically equal respellings of every "
        "model (renamed parameters, reordered commutative operands, "
        "respelled literals) — the semantic-cache CI check",
    )
    table1.add_argument("--report", help="write a JSON report of the run")
    table1.add_argument(
        "--progress", action="store_true", help="stream per-model progress events"
    )
    table1.set_defaults(func=_cmd_table1)

    bench = subparsers.add_parser("bench", help="run a single benchmark by name")
    bench.add_argument("name", choices=benchmark_names())
    bench.set_defaults(func=_cmd_bench)

    batch = subparsers.add_parser(
        "batch", help="batch-synthesize many flat CSG files and/or benchmarks"
    )
    batch.add_argument("inputs", nargs="*", help="flat CSG s-expression files")
    batch.add_argument(
        "--bench", action="append", default=[], choices=benchmark_names(),
        metavar="NAME", help="add a bundled benchmark to the batch (repeatable)",
    )
    batch.add_argument(
        "--suite", action="store_true", help="add the whole 16-model benchmark suite"
    )
    batch.add_argument(
        "--jobs", type=int, default=0, help="worker processes (0 = run in-process)"
    )
    batch.add_argument(
        "--persistent-workers", action="store_true",
        help="keep worker processes alive across jobs within the batch "
        "(amortizes startup; crashed workers are respawned)",
    )
    batch.add_argument("--cache", help="content-addressed result cache directory")
    batch.add_argument(
        "--cache-max-mb", type=float, default=None,
        help="evict least-recently-used disk cache entries beyond this size",
    )
    batch.add_argument(
        "--no-semantic-cache", action="store_true",
        help="disable the cache's semantic (normalized-key) lookup level; "
        "only byte-identical inputs hit",
    )
    batch.add_argument("--timeout", type=float, default=None, help="per-job timeout in seconds")
    batch.add_argument("--report", help="write a JSON batch report")
    batch.add_argument(
        "--trace", metavar="FILE",
        help="run every job with per-phase span tracing and append the spans "
        "to FILE (JSONL, one span per line; convert with `szalinski trace`)",
    )
    batch.set_defaults(func=_cmd_batch)

    serve = subparsers.add_parser(
        "serve",
        help="run the resident synthesis daemon on a Unix-domain socket",
    )
    serve.add_argument(
        "--socket", required=True,
        help="Unix-domain socket path to listen on (created; unlinked on exit)",
    )
    serve.add_argument(
        "--jobs", type=int, default=2,
        help="persistent worker processes shared by all clients",
    )
    serve.add_argument("--cache", help="content-addressed result cache directory")
    serve.add_argument(
        "--cache-max-mb", type=float, default=None,
        help="evict least-recently-used disk cache entries beyond this size",
    )
    serve.add_argument(
        "--no-semantic-cache", action="store_true",
        help="disable the cache's semantic (normalized-key) lookup level; "
        "only byte-identical inputs hit",
    )
    serve.add_argument(
        "--max-pending", type=int, default=256,
        help="admission control: reject submissions once this many jobs are "
        "admitted but unfinished",
    )
    serve.add_argument(
        "--timeout", type=float, default=None,
        help="default per-job timeout in seconds for jobs that do not set one",
    )
    serve.add_argument(
        "--trace", metavar="FILE",
        help="append every finished job's span records to FILE "
        "(JSONL, one span per line; convert with `szalinski trace`)",
    )
    serve.add_argument(
        "--no-job-tracing", action="store_true",
        help="disable per-job span tracing (the stats frame then reports "
        "end-to-end latency percentiles only, without per-phase families)",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = subparsers.add_parser(
        "submit",
        help="submit jobs to (or query/stop) a running daemon",
    )
    submit.add_argument("inputs", nargs="*", help="flat CSG s-expression files")
    submit.add_argument(
        "--socket", required=True, help="Unix-domain socket of the daemon"
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until every job's result frame arrives (and print them)",
    )
    submit.add_argument(
        "--bench", action="append", default=[], choices=benchmark_names(),
        metavar="NAME", help="add a bundled benchmark to the submission (repeatable)",
    )
    submit.add_argument(
        "--suite", action="store_true", help="add the whole 16-model benchmark suite"
    )
    submit.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout in seconds"
    )
    submit.add_argument(
        "--priority", type=int, default=0, help="job priority (higher runs first)"
    )
    submit.add_argument(
        "--connect-timeout", type=float, default=600.0,
        help="socket timeout in seconds for daemon I/O",
    )
    submit.add_argument(
        "--health", action="store_true", help="print the daemon's health snapshot"
    )
    submit.add_argument(
        "--stats", action="store_true", help="print the daemon's full statistics"
    )
    submit.add_argument(
        "--shutdown", action="store_true",
        help="ask the daemon to drain in-flight jobs and exit",
    )
    submit.add_argument("--report", help="write a JSON report of the submission")
    submit.set_defaults(func=_cmd_submit)

    stats = subparsers.add_parser(
        "stats",
        help="query a running daemon's statistics (latency percentiles and counters)",
    )
    stats.add_argument(
        "--socket", required=True, help="Unix-domain socket of the daemon"
    )
    stats.add_argument(
        "--percentiles", action="store_true",
        help="render the latency section as a per-phase/-model/-tier "
        "p50/p95/p99 table instead of dumping the raw JSON frame",
    )
    stats.add_argument(
        "--prometheus", action="store_true",
        help="print the metrics families as Prometheus text exposition "
        "(repro_phase_latency_seconds etc.) instead of JSON",
    )
    stats.add_argument(
        "--connect-timeout", type=float, default=60.0,
        help="socket timeout in seconds for daemon I/O",
    )
    stats.set_defaults(func=_cmd_stats)

    trace = subparsers.add_parser(
        "trace",
        help="summarize a JSONL span trace and/or convert it to Chrome "
        "trace_event JSON for Perfetto",
    )
    trace.add_argument("input", help="JSONL trace file (from --trace)")
    trace.add_argument(
        "--chrome", metavar="OUT",
        help="write Chrome trace_event JSON to OUT (open in Perfetto)",
    )
    trace.set_defaults(func=_cmd_trace)

    lister = subparsers.add_parser("list", help="list the benchmark suite")
    lister.set_defaults(func=_cmd_list)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``szalinski`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
