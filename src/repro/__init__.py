"""Reproduction of Szalinski (PLDI 2020).

Szalinski synthesizes structured, parameterized CAD programs (in a small
functional language, "LambdaCAD") from flat Constructive Solid Geometry
inputs by combining equality saturation over an e-graph with arithmetic
closed-form solvers ("inverse transformations").

The public API is intentionally small:

``synthesize(csg, config=None)``
    Run the full Szalinski pipeline on a flat CSG term and return the top-k
    parameterized LambdaCAD candidates (best first).

``parse_csg(text)`` / ``format_term(term)``
    Parse and pretty-print s-expression CSG / LambdaCAD terms.

``unroll(term)``
    Evaluate a LambdaCAD program back down to a flat CSG (the inverse
    transformation used for translation validation).

Subpackages provide the underlying substrates: :mod:`repro.egraph` (the
equality-saturation engine), :mod:`repro.csg` and :mod:`repro.cad` (the input
and output languages), :mod:`repro.solvers` (closed-form inference),
:mod:`repro.geometry` (meshes, STL, Hausdorff validation), :mod:`repro.scad`
(an OpenSCAD frontend), and :mod:`repro.benchsuite` (the paper's benchmark
models and the Table 1 harness).
"""

from repro.lang.sexp import parse_sexp, format_sexp
from repro.lang.term import Term
from repro.csg.parser import parse_csg
from repro.csg.pretty import format_term
from repro.cad.evaluator import unroll
from repro.core.config import SynthesisConfig
from repro.core.pipeline import synthesize, SynthesisResult

__all__ = [
    "Term",
    "parse_sexp",
    "format_sexp",
    "parse_csg",
    "format_term",
    "unroll",
    "SynthesisConfig",
    "SynthesisResult",
    "synthesize",
]

__version__ = "1.0.0"
