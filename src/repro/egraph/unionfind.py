"""Union-find (disjoint set) over dense integer ids.

E-class ids are allocated densely by the e-graph, so the union-find is an
array-backed structure with path compression.  Union is *not*
union-by-rank: the e-graph needs to control which id survives a merge (the
canonical id keeps the merged class's data), so :meth:`union` always makes
the second argument point at the first.

**Inlined finds.**  The saturation inner loops (e-matching, apply,
congruence repair) canonicalize ids millions of times per run; a method
call per ``find`` dominates their profile.  :attr:`parents` exposes the
backing array so those loops can run the two-pass find (walk to the root,
then compress) inline::

    parents = union_find.parents
    root = id_
    while parents[root] != root:
        root = parents[root]
    while parents[id_] != root:
        parents[id_], id_ = root, parents[id_]

The array object is stable for the lifetime of the union-find
(:meth:`make_set` appends in place), so a borrowed reference never goes
stale.  Borrowers must only ever *compress* (redirect an id at its current
root) — never re-parent a root.

**Union versioning.**  :attr:`version` counts effective unions.  An id's
canonical representative can only change when a union happens, so any
canonicalized value (e.g. a rewrite match fingerprint) computed at version
``v`` is still canonical while ``version == v`` — the cheap validity stamp
the apply-phase dedup ledger relies on.
"""

from __future__ import annotations

from typing import List


class UnionFind:
    """Array-backed union-find with path compression."""

    __slots__ = ("parents", "version")

    def __init__(self) -> None:
        #: The live parent array, for inlined finds (see the module
        #: docstring).  A plain attribute, not a property: the borrowing
        #: loops read it once per canonicalization and a descriptor call
        #: there is measurable.  Never rebound — only mutated in place.
        self.parents: List[int] = []
        #: Number of effective unions performed (see the module docstring).
        self.version = 0

    def __len__(self) -> int:
        return len(self.parents)

    def make_set(self) -> int:
        """Create a fresh singleton set and return its id."""
        new_id = len(self.parents)
        self.parents.append(new_id)
        return new_id

    def find(self, id_: int) -> int:
        """Return the canonical representative of ``id_`` (with compression)."""
        parents = self.parents
        root = id_
        while parents[root] != root:
            root = parents[root]
        # Path compression.
        while parents[id_] != root:
            parents[id_], id_ = root, parents[id_]
        return root

    def union(self, keep: int, merge: int) -> int:
        """Merge the set of ``merge`` into the set of ``keep``.

        Both arguments may be non-canonical; the canonical representative of
        ``keep`` becomes the representative of the merged set and is
        returned.
        """
        keep_root = self.find(keep)
        merge_root = self.find(merge)
        if keep_root != merge_root:
            self.parents[merge_root] = keep_root
            self.version += 1
        return keep_root

    def in_same_set(self, a: int, b: int) -> bool:
        """True when the two ids are currently equivalent."""
        return self.find(a) == self.find(b)

    # -- introspection (used by EGraph.check_invariants) -------------------------

    def compress_all(self) -> None:
        """Path-compress every id (so :meth:`is_fully_compressed` is meaningful)."""
        for id_ in range(len(self.parents)):
            self.find(id_)

    def is_fully_compressed(self) -> bool:
        """True when every id points directly at its root."""
        parents = self.parents
        return all(parents[parents[id_]] == parents[id_] for id_ in range(len(parents)))

    def roots(self) -> List[int]:
        """All canonical representatives (ids that are their own parent)."""
        return [id_ for id_, parent in enumerate(self.parents) if id_ == parent]
