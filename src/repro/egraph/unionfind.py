"""Union-find (disjoint set) over dense integer ids.

E-class ids are allocated densely by the e-graph, so the union-find is an
array-backed structure with path compression.  Union is *not*
union-by-rank: the e-graph needs to control which id survives a merge (the
canonical id keeps the merged class's data), so :meth:`union` always makes
the second argument point at the first.
"""

from __future__ import annotations

from typing import List


class UnionFind:
    """Array-backed union-find with path compression."""

    def __init__(self) -> None:
        self._parents: List[int] = []

    def __len__(self) -> int:
        return len(self._parents)

    def make_set(self) -> int:
        """Create a fresh singleton set and return its id."""
        new_id = len(self._parents)
        self._parents.append(new_id)
        return new_id

    def find(self, id_: int) -> int:
        """Return the canonical representative of ``id_`` (with compression)."""
        root = id_
        while self._parents[root] != root:
            root = self._parents[root]
        # Path compression.
        while self._parents[id_] != root:
            self._parents[id_], id_ = root, self._parents[id_]
        return root

    def union(self, keep: int, merge: int) -> int:
        """Merge the set of ``merge`` into the set of ``keep``.

        Both arguments may be non-canonical; the canonical representative of
        ``keep`` becomes the representative of the merged set and is
        returned.
        """
        keep_root = self.find(keep)
        merge_root = self.find(merge)
        if keep_root != merge_root:
            self._parents[merge_root] = keep_root
        return keep_root

    def in_same_set(self, a: int, b: int) -> bool:
        """True when the two ids are currently equivalent."""
        return self.find(a) == self.find(b)

    # -- introspection (used by EGraph.check_invariants) -------------------------

    def compress_all(self) -> None:
        """Path-compress every id (so :meth:`is_fully_compressed` is meaningful)."""
        for id_ in range(len(self._parents)):
            self.find(id_)

    def is_fully_compressed(self) -> bool:
        """True when every id points directly at its root."""
        parents = self._parents
        return all(parents[parents[id_]] == parents[id_] for id_ in range(len(parents)))

    def roots(self) -> List[int]:
        """All canonical representatives (ids that are their own parent)."""
        return [id_ for id_, parent in enumerate(self._parents) if id_ == parent]
