"""Equality-saturation engine.

The paper implements its own e-graph in OCaml (pre-dating the egg library
that grew out of this line of work); this package is our Python equivalent.
It provides:

* :mod:`repro.egraph.unionfind` — a union-find over e-class ids (with a
  union-version counter and an exposed parent array for inlined finds);
* :mod:`repro.egraph.symbols` — the per-e-graph operator interner backing
  the flat ``(op_id, *arg_ids)`` node representation;
* :mod:`repro.egraph.egraph` — hash-consed e-nodes, e-classes, congruence
  closure with deferred rebuilding, and term insertion/extraction helpers;
* :mod:`repro.egraph.pattern` — pattern terms with ``?x`` variables, the
  naive backtracking e-matcher, and the compiled discrimination-trie
  matcher with incremental dirty-class search;
* :mod:`repro.egraph.rewrite` — rewrite rules (pattern → pattern, or pattern
  → programmatic applier) in the style of Section 3.2;
* :mod:`repro.egraph.runner` — the batched two-phase saturation loop with a
  per-rule backoff scheduler and fuel / node / time limits enforced inside
  the apply phase;
* :mod:`repro.egraph.extract` — the incremental :class:`CostAnalysis`
  (an e-class analysis maintained during saturation), analysis-backed
  single-best extraction, and lazy k-best (Eppstein-style) candidate heaps
  enumerating only realizable, acyclic derivations (Section 5.1).
"""

from repro.egraph.unionfind import UnionFind
from repro.egraph.symbols import SymbolTable
from repro.egraph.egraph import Analysis, EGraph, ENode, EClass
from repro.egraph.pattern import (
    CompiledRuleSet,
    IncrementalMatcher,
    Pattern,
    PatternVar,
    SearchStats,
    TrieStats,
    parse_pattern,
    Substitution,
)
from repro.egraph.rewrite import Rewrite, RewriteMatch, rewrite, DynamicRewrite
from repro.egraph.runner import (
    BackoffConfig,
    BackoffScheduler,
    Runner,
    RunnerLimits,
    RunReport,
    StopReason,
)
from repro.egraph.extract import (
    CostAnalysis,
    ExtractionError,
    Extractor,
    RankedTerm,
    TopKExtractor,
    ast_size_cost,
)

__all__ = [
    "UnionFind",
    "SymbolTable",
    "Analysis",
    "EGraph",
    "ENode",
    "EClass",
    "Pattern",
    "PatternVar",
    "parse_pattern",
    "Substitution",
    "CompiledRuleSet",
    "IncrementalMatcher",
    "SearchStats",
    "TrieStats",
    "Rewrite",
    "RewriteMatch",
    "rewrite",
    "DynamicRewrite",
    "BackoffConfig",
    "BackoffScheduler",
    "Runner",
    "RunnerLimits",
    "RunReport",
    "StopReason",
    "CostAnalysis",
    "ExtractionError",
    "Extractor",
    "RankedTerm",
    "TopKExtractor",
    "ast_size_cost",
]
