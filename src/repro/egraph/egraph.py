"""The e-graph: hash-consed e-nodes, e-classes, and congruence closure.

An e-graph compactly represents a set of equivalent terms (paper Section
3.1).  It is a union-find over *e-class ids* plus, per e-class, a set of
*e-nodes* — operators applied to argument e-class ids.  Adding a term
hash-conses it; merging two e-classes records a new equivalence; rebuilding
restores the two invariants that make e-matching sound:

* **hashcons invariant** — every canonical e-node maps to exactly one
  canonical e-class id;
* **congruence invariant** — e-nodes that become identical after
  canonicalizing their children live in the same e-class.

Rebuilding is deferred (egg-style): merges enqueue dirty classes and a
single :meth:`EGraph.rebuild` pass repairs the invariants before the next
round of matching.

**Flat node representation.**  Internally an e-node is a plain tuple
``(op_id, *arg_ids)`` of integers: the operator is interned into a dense id
by the e-graph's :class:`~repro.egraph.symbols.SymbolTable` and the
arguments are e-class ids.  Hashcons keys, class node lists, and parent
logs all store these flat tuples, so the hot loops (hashcons probes,
congruence repair, compiled e-matching) hash and compare nothing but small
integer tuples — and canonicalization (:meth:`EGraph.canonical_flat`)
returns its input *unchanged* when every argument is already canonical,
making the common post-rebuild case allocation-free.  The public surface
still speaks :class:`ENode`: :meth:`EGraph.add_enode` encodes at the
boundary and :meth:`EGraph.nodes` decodes (with a per-class cache), so code
outside the ``egraph`` package never sees a flat tuple.  Package-internal
consumers use :meth:`EGraph.flat_nodes` / :attr:`EClass.flat` directly.

**Dirty-class tracking (the search-epoch protocol).**  Besides the rebuild
worklist the e-graph records, in :attr:`EGraph._dirty`, every e-class whose
*match set* may have changed since the last search epoch: classes created by
:meth:`add_enode` and the surviving class of every :meth:`merge` (including
congruence merges performed during :meth:`rebuild`).  Node lists only ever
grow through those two operations, so the set is a sound over-approximation
of "where new pattern matches can appear rooted".  An incremental matcher
(see :class:`repro.egraph.pattern.IncrementalMatcher`) calls
:meth:`take_dirty` once per search epoch to consume the set — matches rooted
in an untouched class can only change through a touched *descendant*, which
the matcher covers by closing the dirty set upward over parent pointers to
its patterns' maximum depth.

**E-class analyses.**  An :class:`Analysis` attaches a small piece of data
to every e-class — a best extraction cost, a constant value, an interval —
and the e-graph keeps it consistent through every structural change, the
same mechanism egg uses for constant folding and cost tracking:

* :meth:`Analysis.make` computes the data an e-node contributes, reading
  its children's data through the e-graph;
* :meth:`Analysis.merge` combines the data of two classes that became
  equal (it must be a semilattice join: commutative, associative,
  idempotent — for a cost analysis, ``min``);
* :meth:`Analysis.modify` may inspect/extend the class after its data
  changed (egg uses this for constant folding; the default is a no-op).

:meth:`EGraph.add_enode` makes data for every fresh class immediately, so
analysis data is *total*: every live class has a value for every registered
analysis.  :meth:`EGraph.merge` joins the two sides' data; when the join
differs from the surviving class's previous value, every parent e-node is
queued for re-``make`` and the improvements propagate upward during
:meth:`rebuild` — interleaved with congruence repair, because congruence
merges themselves join data.  Analyses registered late
(:meth:`register_analysis`) are initialized retroactively with the same
worklist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.egraph.symbols import Operator, SymbolTable
from repro.egraph.unionfind import UnionFind
from repro.lang.term import Term

#: Internal e-node representation: ``(op_id, *arg_ids)``.
FlatNode = Tuple[int, ...]


@dataclass(frozen=True)
class ENode:
    """An operator applied to argument e-class ids (the public facade).

    The e-graph stores nodes as flat integer tuples internally (see the
    module docstring); ``ENode`` is what crosses the package boundary —
    rule appliers build them, :meth:`EGraph.nodes` returns them, analyses
    receive them in :meth:`Analysis.make`.
    """

    op: Operator
    args: Tuple[int, ...] = ()

    def canonicalize(self, find) -> "ENode":
        """Return this e-node with every argument id canonicalized.

        Allocation-free when nothing changes: if every argument is already
        canonical, ``self`` is returned unchanged.
        """
        for arg in self.args:
            if find(arg) != arg:
                return ENode(self.op, tuple(find(a) for a in self.args))
        return self

    def map_args(self, fn) -> "ENode":
        return ENode(self.op, tuple(fn(a) for a in self.args))

    @property
    def is_leaf(self) -> bool:
        return not self.args


class Analysis:
    """An e-class analysis: per-class data maintained under congruence.

    Subclasses choose a unique :attr:`key` (the slot in :attr:`EClass.data`
    the values live under) and implement :meth:`make` and :meth:`merge`;
    :meth:`modify` is optional.  Values must support ``==`` (change
    detection) and should be immutable — the e-graph stores them by
    reference and compares them to decide what to re-propagate.
    """

    #: Slot name in :attr:`EClass.data`; must be unique per e-graph.
    key: str = "analysis"

    def make(self, egraph: "EGraph", enode: "ENode"):
        """The data ``enode`` contributes to its class.

        ``enode`` has canonical argument ids; read child data via
        :meth:`EGraph.analysis_data`.  Return ``None`` when nothing can be
        concluded yet (e.g. a child has no data) — the e-node is re-made
        automatically once a child's data changes.
        """
        raise NotImplementedError

    def merge(self, a, b):
        """Join the data of two classes that became equal.

        Must be a semilattice join — in particular ``merge(a, a) == a`` —
        or propagation may not terminate.
        """
        raise NotImplementedError

    def modify(self, egraph: "EGraph", class_id: int) -> None:
        """Hook run after ``class_id``'s data was created or changed.

        May add e-nodes or merge classes (egg-style constant folding); the
        default does nothing.
        """


class EClass:
    """A set of equivalent e-nodes plus back-pointers to parent e-nodes.

    Node storage is flat (:attr:`flat`, see the module docstring); the
    :attr:`nodes` property decodes to :class:`ENode` facades on demand and
    caches the decoded list until the flat list next changes.  All
    mutations go through :meth:`append_flat` / :meth:`extend_flat` /
    :meth:`replace_flat` so the cache can never go stale.
    """

    __slots__ = ("id", "flat", "parents", "data", "_symbols", "_decoded")

    def __init__(self, id: int, symbols: SymbolTable):
        self.id = id
        #: Flat e-nodes ``(op_id, *arg_ids)`` of this class.
        self.flat: List[FlatNode] = []
        #: (flat parent e-node as inserted, parent e-class id) pairs used by
        #: rebuild; read the decoded view via :meth:`EGraph.parent_enodes`.
        self.parents: List[Tuple[FlatNode, int]] = []
        #: Arbitrary per-class analysis data (used by the determinizer and
        #: cost analyses in :mod:`repro.core`).
        self.data: dict = {}
        self._symbols = symbols
        self._decoded: Optional[List[ENode]] = None

    @property
    def nodes(self) -> List[ENode]:
        """The e-nodes of this class, decoded (cached until the class changes)."""
        decoded = self._decoded
        if decoded is None:
            op = self._symbols.op
            decoded = self._decoded = [ENode(op(node[0]), node[1:]) for node in self.flat]
        return decoded

    def append_flat(self, node: FlatNode) -> None:
        self.flat.append(node)
        self._decoded = None

    def extend_flat(self, nodes: Iterable[FlatNode]) -> None:
        self.flat.extend(nodes)
        self._decoded = None

    def replace_flat(self, nodes: List[FlatNode]) -> None:
        self.flat = nodes
        self._decoded = None

    def __iter__(self) -> Iterator[ENode]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.flat)


class EGraph:
    """A congruence-closed e-graph over :class:`~repro.lang.term.Term` languages."""

    def __init__(self) -> None:
        self._union_find = UnionFind()
        self._symbols = SymbolTable()
        self._classes: Dict[int, EClass] = {}
        self._hashcons: Dict[FlatNode, int] = {}
        self._pending: List[int] = []
        #: operator id -> set of e-class ids containing an e-node with that
        #: operator.  Used by e-matching to avoid scanning the whole graph;
        #: entries may be stale (non-canonical or over-approximate) and are
        #: re-canonicalized by readers.
        self._op_index: Dict[int, set] = {}
        #: e-class ids (possibly stale) touched since the last `take_dirty`;
        #: see the module docstring for the search-epoch protocol.
        self._dirty: Set[int] = set()
        #: Registered e-class analyses (see the module docstring).
        self._analyses: List[Analysis] = []
        #: (flat parent e-node, owner id) pairs whose analysis data must be
        #: re-made because a child's data changed; drained by rebuild().
        self._analysis_pending: List[Tuple[FlatNode, int]] = []
        #: Total analysis-data changes (creations + improvements) — runners
        #: snapshot this to report per-iteration analysis activity.
        self.analysis_updates = 0
        #: Exact ``sum(len(c.flat) for c in classes)``, maintained
        #: incrementally (add_enode grows it, rebuild-time dedup shrinks it)
        #: so :attr:`total_enodes` is O(1) instead of a full recount.
        self._enode_count = 0
        #: Monotone count of fresh hashcons inserts ever performed — an
        #: allocation counter runners snapshot per iteration (unlike
        #: ``_enode_count`` it never decreases).
        self.enodes_created = 0
        self.version = 0  # bumped on every structural change; used by runners

    # -- basic queries -----------------------------------------------------------

    def __len__(self) -> int:
        """Number of (canonical) e-classes."""
        return len(self._classes)

    @property
    def symbols(self) -> SymbolTable:
        """The operator interner (package-internal consumers; see module docs)."""
        return self._symbols

    @property
    def total_enodes(self) -> int:
        """Total number of e-nodes across all e-classes (O(1), exact)."""
        return self._enode_count

    @property
    def approx_enodes(self) -> int:
        """O(1) e-node count for node-limit enforcement inside apply loops.

        Now backed by the same exact incremental counter as
        :attr:`total_enodes`: precise immediately after :meth:`rebuild`, and
        between rebuilds it counts entries that congruence will later
        dedupe, which keeps it a safe (slightly conservative) bound.
        """
        return self._enode_count

    @property
    def union_version(self) -> int:
        """Count of effective unions; canonical ids are stable while it is.

        Any canonicalized value (e.g. an apply-phase match fingerprint)
        computed at union version ``v`` remains canonical as long as
        ``union_version == v`` — merges are the only operation that can
        change an id's representative.
        """
        return self._union_find.version

    def find(self, id_: int) -> int:
        """Canonical e-class id for ``id_``."""
        return self._union_find.find(id_)

    def classes(self) -> Iterable[EClass]:
        """Iterate over canonical e-classes."""
        return self._classes.values()

    def eclass(self, id_: int) -> EClass:
        """The canonical :class:`EClass` containing ``id_``."""
        return self._classes[self._union_find.find(id_)]

    def nodes(self, id_: int) -> List[ENode]:
        """The e-nodes of the e-class containing ``id_`` (decoded facades)."""
        return self.eclass(id_).nodes

    def flat_nodes(self, id_: int) -> List[FlatNode]:
        """The flat e-nodes of the e-class containing ``id_``.

        Package-internal fast path (compiled e-matching, extraction): the
        returned list is the live storage — callers must not mutate it.
        """
        return self._classes[self._union_find.find(id_)].flat

    def is_equal(self, a: int, b: int) -> bool:
        """True when the two ids refer to the same e-class."""
        return self.find(a) == self.find(b)

    def classes_with_op(self, op: Operator) -> List[int]:
        """Canonical ids of e-classes containing an e-node with operator ``op``.

        The index is maintained incrementally and may hold stale ids after
        merges; they are canonicalized and de-duplicated here, which keeps
        the common case (e-matching a specific operator) far cheaper than a
        full scan.
        """
        op_id = self._symbols.get(op)
        if op_id is None:
            return []
        ids = self._op_index.get(op_id)
        if not ids:
            return []
        find = self._union_find.find
        live = {find(i) for i in ids}
        live.intersection_update(self._classes)
        if live != ids:
            # Prune in place so repeated queries between rebuilds do not keep
            # re-canonicalizing the same stale ids.
            self._op_index[op_id] = live
        return list(live)

    # -- flat encoding helpers ---------------------------------------------------

    def canonical_flat(self, node: FlatNode) -> FlatNode:
        """``node`` with canonical argument ids; ``node`` itself if unchanged.

        The allocation-free fast path of the rebuild/search loops: after a
        rebuild almost every stored node already has canonical arguments, so
        the loop below usually runs to completion without allocating.
        """
        parents = self._union_find.parents
        for i in range(1, len(node)):
            if parents[node[i]] != node[i]:
                break
        else:
            return node
        find = self._union_find.find
        return (node[0],) + tuple(find(a) for a in node[1:])

    def _decode(self, node: FlatNode) -> ENode:
        """A facade :class:`ENode` for a flat node."""
        return ENode(self._symbols.op(node[0]), node[1:])

    # -- e-class analyses ---------------------------------------------------------

    @property
    def analyses(self) -> Tuple[Analysis, ...]:
        """The registered analyses, in registration order."""
        return tuple(self._analyses)

    def analysis_data(self, class_id: int, key: str, default=None):
        """The analysis value stored under ``key`` for ``class_id``'s class."""
        return self.eclass(class_id).data.get(key, default)

    def register_analysis(self, analysis: Analysis) -> Analysis:
        """Attach an analysis; existing classes are initialized retroactively.

        Idempotent for the *same* object (re-registering is a no-op, so a
        runner can re-run over a graph whose analysis already rides along);
        a different analysis under an already-taken key is rejected.
        """
        for existing in self._analyses:
            if existing is analysis:
                return analysis
            if existing.key == analysis.key:
                raise ValueError(f"analysis key {analysis.key!r} already registered")
        self._analyses.append(analysis)
        # Retroactive init: seed every (enode, class) pair and run the same
        # worklist rebuild() uses.  Leaves make() successfully right away;
        # parents that see a child without data return None and are re-made
        # when the child's data lands (_set_analysis_data enqueues parents
        # on every change, including the first).
        if self._classes:
            for eclass in self._classes.values():
                for node in eclass.flat:
                    self._analysis_pending.append((node, eclass.id))
            self._process_analysis_pending()
        return analysis

    def _set_analysis_data(self, analysis: Analysis, class_id: int, value) -> bool:
        """Join ``value`` into a class's slot; propagate if it changed."""
        # A modify() hook of an earlier analysis may have merged the class
        # away within the same update loop; address the survivor.
        class_id = self.find(class_id)
        eclass = self._classes[class_id]
        old = eclass.data.get(analysis.key)
        new = value if old is None else analysis.merge(old, value)
        if new == old:
            return False
        eclass.data[analysis.key] = new
        self.analysis_updates += 1
        self._analysis_pending.extend(eclass.parents)
        analysis.modify(self, class_id)
        return True

    def _process_analysis_pending(self) -> None:
        """Re-make queued parent e-nodes until analysis data is stable."""
        find = self._union_find.find
        while self._analysis_pending:
            batch = self._analysis_pending
            self._analysis_pending = []
            seen: Set[Tuple[FlatNode, int]] = set()
            for node, owner in batch:
                owner = find(owner)
                if owner not in self._classes:
                    continue
                node = self.canonical_flat(node)
                entry = (node, owner)
                if entry in seen:
                    continue
                seen.add(entry)
                facade = self._decode(node)
                for analysis in self._analyses:
                    made = analysis.make(self, facade)
                    if made is not None:
                        self._set_analysis_data(analysis, owner, made)

    # -- insertion ----------------------------------------------------------------

    def add_enode(self, enode: ENode) -> int:
        """Insert an e-node (hash-consed) and return its e-class id."""
        find = self._union_find.find
        flat = (self._symbols.intern(enode.op),) + tuple(find(a) for a in enode.args)
        existing = self._hashcons.get(flat)
        if existing is not None:
            return find(existing)
        class_id = self._union_find.make_set()
        eclass = EClass(class_id, self._symbols)
        eclass.append_flat(flat)
        self._classes[class_id] = eclass
        self._hashcons[flat] = class_id
        self._op_index.setdefault(flat[0], set()).add(class_id)
        self._dirty.add(class_id)
        self._enode_count += 1
        self.enodes_created += 1
        for arg in flat[1:]:
            self._classes[arg].parents.append((flat, class_id))
        if self._analyses:
            facade = self._decode(flat)
            for analysis in self._analyses:
                made = analysis.make(self, facade)
                if made is not None:
                    self._set_analysis_data(analysis, class_id, made)
        self.version += 1
        return class_id

    def add_term(self, term: Term) -> int:
        """Insert a whole term bottom-up and return the root e-class id."""
        args = tuple(self.add_term(child) for child in term.children)
        return self.add_enode(ENode(term.op, args))

    def add_leaf(self, op: Operator) -> int:
        """Insert a leaf e-node."""
        return self.add_enode(ENode(op))

    def lookup_term(self, term: Term) -> Optional[int]:
        """The e-class id of ``term`` if the e-graph already represents it."""
        op_id = self._symbols.get(term.op)
        if op_id is None:
            return None
        find = self._union_find.find
        args: List[int] = []
        for child in term.children:
            child_id = self.lookup_term(child)
            if child_id is None:
                return None
            args.append(child_id)
        flat = (op_id,) + tuple(find(a) for a in args)
        found = self._hashcons.get(flat)
        return None if found is None else find(found)

    # -- merging and rebuilding -----------------------------------------------------

    def merge(self, a: int, b: int) -> int:
        """Assert that e-classes ``a`` and ``b`` are equal.

        Returns the surviving canonical id.  The actual invariant repair is
        deferred until :meth:`rebuild`.

        Plain (non-analysis) data keys are merged shallowly with a
        deterministic policy: on a key conflict the data of ``b`` (the second
        argument) wins, regardless of which class ends up canonical.
        Rewrites call ``merge(matched, new)``, so the value attached to the
        freshly constructed class — the "later writer" — is the one that
        survives.  Slots owned by a registered :class:`Analysis` are instead
        joined with :meth:`Analysis.merge`, and a change to the surviving
        class's value queues its parents for re-``make`` (see the module
        docstring).
        """
        a_root = self.find(a)
        b_root = self.find(b)
        if a_root == b_root:
            return a_root
        merged_data = {**self._classes[a_root].data, **self._classes[b_root].data}
        # Keep the class with more parents as canonical to move less data.
        if len(self._classes[a_root].parents) < len(self._classes[b_root].parents):
            a_root, b_root = b_root, a_root
        keep = self._union_find.union(a_root, b_root)
        merged_away = b_root if keep == a_root else a_root
        keep_class = self._classes[keep]
        gone_class = self._classes.pop(merged_away)
        keep_data_pre = keep_class.data
        # Analysis slots are joined below, starting from the keep side's
        # previous value — the b-wins shallow policy must not clobber them.
        for analysis in self._analyses:
            pre = keep_data_pre.get(analysis.key)
            if pre is None:
                merged_data.pop(analysis.key, None)
            else:
                merged_data[analysis.key] = pre
        keep_class.extend_flat(gone_class.flat)
        keep_class.parents.extend(gone_class.parents)
        keep_class.data = merged_data
        for analysis in self._analyses:
            gone_value = gone_class.data.get(analysis.key)
            if gone_value is not None:
                self._set_analysis_data(analysis, keep, gone_value)
        self._pending.append(keep)
        # Record the survivor (its match set grew) AND the absorbed root:
        # the raw id stream lets an incremental match cache evict exactly
        # the keys that lost canonicity instead of scanning every entry.
        self._dirty.add(keep)
        self._dirty.add(merged_away)
        self.version += 1
        return keep

    def rebuild(self) -> int:
        """Restore the hashcons and congruence invariants.

        Also drains the analysis worklist: queued parent re-``make``\\ s run
        interleaved with congruence repair, because congruence merges join
        analysis data (possibly queuing more re-makes) and analysis
        improvements never create new merges by themselves — except through
        :meth:`Analysis.modify`, which is handled by the outer loop.

        Returns the number of repair passes performed.  Safe to call when
        nothing is pending.
        """
        passes = 0
        while self._pending or self._analysis_pending:
            if self._pending:
                passes += 1
                todo = {self.find(id_) for id_ in self._pending}
                self._pending.clear()
                for class_id in todo:
                    self._repair(class_id)
            self._process_analysis_pending()
        self._rebuild_hashcons()
        return passes

    def _repair(self, class_id: int) -> None:
        """Re-canonicalize the parents of a recently merged class and detect
        newly congruent parents."""
        find = self._union_find.find
        class_id = find(class_id)
        eclass = self._classes.get(class_id)
        if eclass is None:
            return
        canonical_flat = self.canonical_flat
        hashcons = self._hashcons
        seen: Dict[FlatNode, int] = {}
        for parent_node, parent_id in eclass.parents:
            canonical_node = canonical_flat(parent_node)
            parent_id = find(parent_id)
            previous = seen.get(canonical_node)
            if previous is not None and previous != parent_id:
                # Two parents became congruent: merge their classes.
                merged = self.merge(previous, parent_id)
                seen[canonical_node] = find(merged)
            else:
                seen[canonical_node] = parent_id
            hashcons[canonical_node] = find(seen[canonical_node])
        # Deduplicated rewrite of the log: repeated merges into a hub class
        # would otherwise grow its parents list with one entry per historical
        # merge, which the worklist extractors then re-canonicalize per pop.
        new_parents: List[Tuple[FlatNode, int]] = [
            (node, find(owner)) for node, owner in seen.items()
        ]
        # Replace the log only while this class is still canonical.  If a
        # congruence merge above folded it into another class, that class's
        # parents log already absorbed ours via merge(); overwriting it with
        # just our snapshot would drop the absorber's own parents (the raw
        # combined log is merely stale, which readers canonicalize away).
        if find(class_id) == class_id:
            eclass.parents = new_parents

    def _rebuild_hashcons(self) -> None:
        """Fully re-canonicalize e-nodes, the hashcons, and class node lists."""
        find = self._union_find.find
        canonical_flat = self.canonical_flat
        new_hashcons: Dict[FlatNode, int] = {}
        new_op_index: Dict[int, set] = {}
        for class_id in list(self._classes.keys()):
            canonical_id = find(class_id)
            if canonical_id != class_id:
                continue
            eclass = self._classes[class_id]
            unique_nodes: Dict[FlatNode, None] = {}
            for node in eclass.flat:
                canonical_node = canonical_flat(node)
                unique_nodes[canonical_node] = None
                existing = new_hashcons.get(canonical_node)
                if existing is not None and find(existing) != canonical_id:
                    # Congruent nodes in distinct classes: merge and note that
                    # another pass is required.
                    self._pending.append(self.merge(existing, canonical_id))
                new_hashcons[canonical_node] = find(canonical_id)
                new_op_index.setdefault(canonical_node[0], set()).add(canonical_id)
            self._enode_count -= len(eclass.flat) - len(unique_nodes)
            eclass.replace_flat(list(unique_nodes.keys()))
        self._hashcons = new_hashcons
        self._op_index = new_op_index
        if self._pending:
            # A congruence found during hashcons rebuilding requires another
            # repair round; recursion depth is bounded by the lattice of
            # merges.
            self.rebuild()

    # -- dirty-class tracking (search epochs) ------------------------------------

    def dirty_classes(self) -> Set[int]:
        """Canonical ids of live classes touched since the last :meth:`take_dirty`.

        Stale ids (classes merged away since they were recorded) are folded
        into their canonical survivors; ids whose class disappeared entirely
        are dropped.  The underlying set is not cleared.
        """
        live = {self.find(id_) for id_ in self._dirty}
        live.intersection_update(self._classes)
        return live

    def take_dirty(self) -> Set[int]:
        """Consume and return the canonical dirty set, starting a new epoch.

        One consumer owns the dirty stream: calling this clears the set, so
        two independent incremental matchers over the same e-graph would
        starve each other.  (The runner creates one matcher per run and
        opens with a full sweep, which makes the hand-off safe.)
        """
        dirty = self.dirty_classes()
        self._dirty.clear()
        return dirty

    def take_dirty_raw(self) -> Set[int]:
        """Consume and return the *raw* dirty ids, starting a new epoch.

        Unlike :meth:`take_dirty` the ids are returned as recorded — they
        include roots that have since been merged away.  An incremental
        match cache keyed by canonical-at-insert-time class ids can evict
        exactly ``raw | closure`` instead of probing every cached key for
        staleness; canonicalize with :meth:`find` to recover the set
        :meth:`take_dirty` would have returned.
        """
        raw = set(self._dirty)
        self._dirty.clear()
        return raw

    # -- invariant checking (debug/tests only) -----------------------------------

    def check_invariants(self) -> bool:
        """Assert the e-graph's structural invariants; returns True.

        Debug-only: every check is O(nodes) or worse, so production paths
        must never call this.  Always checked:

        * class-table keys are exactly the union-find roots that own nodes,
          and ``find`` actually path-compresses (after a full ``find`` sweep
          no chain longer than one hop may remain — this guards the
          union-find *implementation*; lazily uncompressed chains between
          finds are normal and not a defect);
        * every parent-log entry resolves to a live class;
        * the dirty set is sound: every recorded id still resolves to a live
          class (or was merged into one);
        * the incremental e-node counter agrees with a full recount.

        When no merges are pending (i.e. immediately after :meth:`rebuild`)
        the deferred invariants must hold too:

        * **hashcons canonical** — the hashcons keys are exactly the
          canonicalized e-nodes stored in the classes, and every value is
          the canonical id of the class holding that node;
        * **congruence closed** — no two distinct classes contain the same
          canonical e-node;
        * **analyses quiescent** — every class's stored analysis value
          absorbs every e-node's ``make`` (joining any of them changes
          nothing), i.e. no propagation work remains.
        """
        find = self._union_find.find
        self._union_find.compress_all()
        assert self._union_find.is_fully_compressed(), (
            "UnionFind.find failed to path-compress during a full sweep"
        )
        roots = set(self._union_find.roots())
        class_ids = set(self._classes)
        assert class_ids == roots, (
            f"class table / union-find roots diverge: "
            f"classes-only {class_ids - roots}, roots-only {roots - class_ids}"
        )
        recount = sum(len(c.flat) for c in self._classes.values())
        assert recount == self._enode_count, (
            f"incremental e-node count {self._enode_count} diverges from "
            f"recount {recount}"
        )
        for class_id, eclass in self._classes.items():
            assert eclass.id == class_id, f"class {class_id} mislabelled as {eclass.id}"
            assert eclass.flat, f"class {class_id} has no e-nodes"
            for node in eclass.flat:
                assert 0 <= node[0] < len(self._symbols), (
                    f"node {node} in class {class_id} has an uninterned operator id"
                )
                for arg in node[1:]:
                    assert find(arg) in self._classes, (
                        f"node {node} in class {class_id} has dangling child {arg}"
                    )
            for _parent_node, parent_id in eclass.parents:
                assert find(parent_id) in self._classes, (
                    f"parent log of class {class_id} references dead class {parent_id}"
                )
        for id_ in self._dirty:
            assert 0 <= id_ < len(self._union_find), f"dirty id {id_} never allocated"
            assert find(id_) in self._classes, (
                f"dirty id {id_} resolves to no live class"
            )
        if not self._pending:
            node_owner: Dict[FlatNode, int] = {}
            canonical_nodes: Set[FlatNode] = set()
            for class_id, eclass in self._classes.items():
                for node in eclass.flat:
                    canonical = self.canonical_flat(node)
                    assert canonical == node, (
                        f"class {class_id} stores non-canonical node {node}"
                    )
                    previous = node_owner.setdefault(canonical, class_id)
                    assert previous == class_id, (
                        f"congruence violated: {canonical} in classes "
                        f"{previous} and {class_id}"
                    )
                    canonical_nodes.add(canonical)
            assert set(self._hashcons) == canonical_nodes, (
                "hashcons keys diverge from stored canonical nodes"
            )
            for node, owner in self._hashcons.items():
                assert find(owner) == node_owner[node], (
                    f"hashcons maps {node} to {owner}, nodes live in {node_owner[node]}"
                )
        if not self._pending and not self._analysis_pending:
            for analysis in self._analyses:
                for class_id, eclass in self._classes.items():
                    stored = eclass.data.get(analysis.key)
                    for node in eclass.flat:
                        made = analysis.make(self, self._decode(self.canonical_flat(node)))
                        if made is None:
                            continue
                        assert stored is not None, (
                            f"analysis {analysis.key!r}: class {class_id} has no "
                            f"data but {node} makes {made!r}"
                        )
                        assert analysis.merge(stored, made) == stored, (
                            f"analysis {analysis.key!r} not quiescent in class "
                            f"{class_id}: stored {stored!r} does not absorb "
                            f"{made!r} from {node}"
                        )
        return True

    # -- parent queries ----------------------------------------------------------

    def parent_enodes(self, class_id: int) -> List[Tuple[ENode, int]]:
        """Canonicalized, de-duplicated parents of an e-class.

        Returns ``(enode, owner_id)`` pairs: every e-node (with canonical
        argument ids) that has ``class_id`` among its children, together with
        the canonical id of the class that contains it.  The raw
        :attr:`EClass.parents` list is an append-only log kept for
        :meth:`rebuild`; this accessor is the read API the worklist extractor
        uses to propagate cost improvements upward.
        """
        find = self._union_find.find
        seen: Dict[Tuple[FlatNode, int], None] = {}
        for parent_node, parent_id in self.eclass(class_id).parents:
            key = (self.canonical_flat(parent_node), find(parent_id))
            seen[key] = None
        return [(self._decode(node), owner) for node, owner in seen.keys()]

    # -- conversions -------------------------------------------------------------

    def extract_any(self, class_id: int) -> Term:
        """Extract *some* term from an e-class (smallest by node count)."""
        from repro.egraph.extract import Extractor, ast_size_cost

        return Extractor(self, ast_size_cost).extract(class_id)

    def enode_to_term(self, enode: ENode, chooser) -> Term:
        """Build a term from an e-node using ``chooser(class_id) -> Term``."""
        return Term(enode.op, tuple(chooser(arg) for arg in enode.args))

    def dump(self) -> str:
        """A compact human-readable dump used in debugging and tests."""
        lines = []
        for eclass in sorted(self._classes.values(), key=lambda c: c.id):
            rendered = ", ".join(
                f"({node.op} {' '.join(str(a) for a in node.args)})" if node.args else str(node.op)
                for node in eclass.nodes
            )
            lines.append(f"e{eclass.id}: {rendered}")
        return "\n".join(lines)
