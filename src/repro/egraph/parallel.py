"""Multi-core e-matching over a shared flat e-graph snapshot.

The search phase executes compiled trie programs (:mod:`repro.egraph.pattern`)
against a *frozen* e-graph — nothing is applied until every rule has searched
— which makes it embarrassingly parallel.  This module exploits that:

* :class:`ParallelSearchPool` owns a small fleet of long-lived worker
  processes (spawned once per :meth:`~repro.egraph.runner.Runner.run`,
  reused every iteration) and exposes the same ``search_classes`` signature
  as :class:`~repro.egraph.pattern.CompiledRuleSet`, so the incremental
  matcher plugs it in without knowing the difference.
* Each search epoch the pool exports the canonical flat representation —
  the union-find parent array plus every class's ``(op_id, *arg_ids)``
  node tuples — into **one** ``multiprocessing.shared_memory`` segment of
  packed int64s (:func:`export_snapshot`).  No per-node pickling: workers
  map the segment read-only and decode node tuples lazily.  The snapshot
  is keyed by the e-graph's mutation version, so the (up to) two search
  calls of one incremental epoch — dirty closure + full sweeps — share it.
* The candidate class set is computed exactly as the serial matcher
  computes it (top-symbol operator index, or the caller's dirty closure),
  sorted, and split into contiguous chunks balanced by per-class e-node
  counts (:func:`partition_classes`).  Workers run the *identical* trie
  code per class, and chunk results are concatenated in chunk order —
  the merged ``{rule name: [RewriteMatch, ...]}`` lists are byte-identical
  to the serial ones, so backoff scheduling, apply-phase ledgers, and the
  incremental cache behave exactly as before.
* A worker crash mid-epoch abandons the dispatch and re-runs it serially
  (reported via :attr:`IterationReport.fallback_epochs`); the segment is
  unlinked in ``finally`` blocks so ``/dev/shm`` is never leaked, even on
  the crash path.

Interplay with the job-level pools (``--jobs`` / the daemon fleet): each
job worker may host its own search pool, so the knobs multiply — callers
clamp with :func:`clamp_search_workers` so ``jobs × search_workers`` never
exceeds the machine, and job workers are spawned ``daemon=False`` because
daemonic processes may not have children of their own.

Python 3.11 note: attaching :class:`~multiprocessing.shared_memory.SharedMemory`
by name registers the segment with the child's resource tracker, which
would unlink it when the child exits (bpo-39959).  On Linux the workers
therefore map ``/dev/shm/<name>`` directly with :mod:`mmap`; elsewhere they
attach and best-effort unregister.
"""

from __future__ import annotations

import mmap
import multiprocessing
import os
import secrets
import time
from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.obs.trace import NULL_TRACER

#: Prefix of every snapshot segment name — the leak tests glob for it.
SHM_PREFIX = "szpar"

#: Ints of header before the packed arrays: n_ids, n_nodes, data_len, unused.
_HEADER_INTS = 4

#: Dispatches with fewer candidate classes than this run serially — the
#: export + IPC overhead dwarfs the search on tiny dirty closures.
DEFAULT_MIN_CLASSES = 16

#: Worker crashes tolerated (with respawn) before the pool disables itself
#: for the rest of the run.
_MAX_CRASHES = 2


def clamp_search_workers(
    requested: int, jobs: int = 1, cpu_count: Optional[int] = None
) -> int:
    """Clamp a per-job search-worker count so ``jobs × workers ≤ cores``.

    ``jobs`` is the number of concurrent job slots that may each host a
    search pool (1 for the inline executor).  Returns 0 (serial) when the
    machine has no spare cores for the requested layout.
    """
    if requested <= 0:
        return 0
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    slots = max(1, jobs)
    return max(0, min(requested, cores // slots))


# ---------------------------------------------------------------------------
# Snapshot export (parent side)
# ---------------------------------------------------------------------------


class Snapshot:
    """One exported e-graph state living in a shared-memory segment.

    Layout (all int64, little-endian native): a 4-int header
    ``[n_ids, n_nodes, data_len, 0]`` followed by the union-find parent
    array (``n_ids``), per-id node-index boundaries (``n_ids + 1``),
    per-node data offsets (``n_nodes + 1``), and the concatenated flat
    node tuples (``data_len``).
    """

    __slots__ = ("shm", "name", "key", "meta", "_unlinked")

    def __init__(self, shm, name: str, key: Tuple[int, int], meta: dict) -> None:
        self.shm = shm
        self.name = name
        self.key = key
        self.meta = meta
        self._unlinked = False

    def release(self) -> None:
        """Close and unlink the segment (idempotent, never raises)."""
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self.shm.close()
        except OSError:
            pass
        try:
            self.shm.unlink()
        except (OSError, FileNotFoundError):
            pass


def export_snapshot(egraph) -> Snapshot:
    """Pack the e-graph's canonical flat representation into shared memory.

    The export is one linear pass over the class table building
    ``array('q')`` buffers; no e-node is ever pickled.  Must run on a
    freshly rebuilt graph (the runner searches only after ``rebuild()``),
    so every stored argument id is canonical.
    """
    from multiprocessing import shared_memory

    parents: List[int] = egraph._union_find.parents
    n_ids = len(parents)
    classes = egraph._classes
    class_first = array("q", bytes(8 * (n_ids + 1)))
    node_start = array("q", [0])
    node_data = array("q")
    node_count = 0
    offset = 0
    for class_id in range(n_ids):
        class_first[class_id] = node_count
        eclass = classes.get(class_id)
        if eclass is not None:
            for node in eclass.flat:
                node_data.extend(node)
                offset += len(node)
                node_start.append(offset)
                node_count += 1
    class_first[n_ids] = node_count

    total = _HEADER_INTS + n_ids + (n_ids + 1) + (node_count + 1) + len(node_data)
    name = f"{SHM_PREFIX}_{os.getpid()}_{secrets.token_hex(4)}"
    shm = shared_memory.SharedMemory(create=True, size=max(8, 8 * total), name=name)
    try:
        view = memoryview(shm.buf).cast("q")
        view[0:_HEADER_INTS] = array("q", [n_ids, node_count, len(node_data), 0])
        pos = _HEADER_INTS
        view[pos : pos + n_ids] = array("q", parents)
        pos += n_ids
        view[pos : pos + n_ids + 1] = class_first
        pos += n_ids + 1
        view[pos : pos + node_count + 1] = node_start
        pos += node_count + 1
        view[pos : pos + len(node_data)] = node_data
        del view  # memoryview must not outlive shm.close()
    except BaseException:
        shm.close()
        try:
            shm.unlink()
        except (OSError, FileNotFoundError):
            pass
        raise
    meta = {"n_ids": n_ids, "n_nodes": node_count, "data_len": len(node_data), "size": shm.size}
    return Snapshot(shm, name, (id(egraph), egraph.version), meta)


def partition_classes(
    candidates: Sequence[int], weights: Sequence[int], parts: int
) -> List[List[int]]:
    """Split a sorted candidate list into ≤ ``parts`` contiguous chunks.

    Chunks are balanced by cumulative weight (per-class e-node counts — the
    trie visits every node of a class at least once, so node count estimates
    match cost far better than class count).  Contiguity is load-bearing:
    the serial matcher emits matches in ascending class-id order, so
    concatenating contiguous chunk results in order reproduces it exactly.
    """
    if parts <= 1 or len(candidates) <= 1:
        return [list(candidates)] if candidates else []
    total = sum(weights)
    parts = min(parts, len(candidates))
    target = total / parts
    chunks: List[List[int]] = []
    current: List[int] = []
    acc = 0.0
    remaining = len(candidates)
    for class_id, weight in zip(candidates, weights):
        current.append(class_id)
        acc += weight
        remaining -= 1
        # Close the chunk at the weight target, but never starve the
        # remaining chunks of at least one class each.
        if (
            len(chunks) < parts - 1
            and acc >= target
            and remaining >= (parts - 1 - len(chunks))
        ):
            chunks.append(current)
            current = []
            acc = 0.0
    if current:
        chunks.append(current)
    return chunks


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _attach_snapshot(name: str, size: int):
    """Map a snapshot segment read-only; returns ``(buffer, closer)``.

    Linux fast path: ``mmap`` the ``/dev/shm`` file directly, bypassing
    ``SharedMemory`` so the child's resource tracker never learns about
    (and never unlinks) a segment the parent owns.
    """
    path = "/dev/shm/" + name
    if os.path.exists(path):
        fd = os.open(path, os.O_RDONLY)
        try:
            buf = mmap.mmap(fd, size, access=mmap.ACCESS_READ)
        finally:
            os.close(fd)
        return buf, buf.close
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    return shm.buf, shm.close


class SnapshotGraph:
    """Read-only e-graph facade over an attached snapshot.

    Implements exactly the surface the compiled trie touches during a
    ``class_ids`` search: ``find``, ``flat_nodes``, ``symbols.get``, and
    ``_union_find.parents``.  The parent array is copied into a local list
    so the matcher's inlined path compression stays process-local; node
    tuples are decoded lazily and cached per class.
    """

    class _LocalUnionFind:
        __slots__ = ("parents",)

        def __init__(self, parents: List[int]) -> None:
            self.parents = parents

    __slots__ = ("_union_find", "_class_first", "_node_start", "_node_data", "_decoded", "symbols")

    def __init__(self, buffer, meta: dict) -> None:
        view = memoryview(buffer).cast("q")
        n_ids = meta["n_ids"]
        n_nodes = meta["n_nodes"]
        data_len = meta["data_len"]
        pos = _HEADER_INTS
        self._union_find = self._LocalUnionFind(list(view[pos : pos + n_ids]))
        pos += n_ids
        self._class_first = view[pos : pos + n_ids + 1]
        pos += n_ids + 1
        self._node_start = view[pos : pos + n_nodes + 1]
        pos += n_nodes + 1
        self._node_data = view[pos : pos + data_len]
        self._decoded: Dict[int, List[Tuple[int, ...]]] = {}
        #: Operator -> interned op id for this graph; installed per dispatch
        #: (a plain dict — ``symbols.get`` is all the matcher calls).
        self.symbols: Dict[object, int] = {}

    def find(self, id_: int) -> int:
        parents = self._union_find.parents
        root = id_
        while parents[root] != root:
            root = parents[root]
        while parents[id_] != root:
            parents[id_], id_ = root, parents[id_]
        return root

    def flat_nodes(self, id_: int) -> List[Tuple[int, ...]]:
        class_id = self.find(id_)
        nodes = self._decoded.get(class_id)
        if nodes is None:
            first = self._class_first[class_id]
            last = self._class_first[class_id + 1]
            starts = self._node_start
            data = self._node_data
            nodes = [
                tuple(data[starts[index] : starts[index + 1]])
                for index in range(first, last)
            ]
            self._decoded[class_id] = nodes
        return nodes


def _tuple_match(class_id: int, substitution: Dict[str, int], reverse: bool):
    """Plain-tuple match constructor used inside workers.

    Workers ship ``(class_id, binding items, reverse)`` tuples; the parent
    re-materializes :class:`~repro.egraph.rewrite.RewriteMatch` objects in
    the same order, with the same binding insertion order.
    """
    return (class_id, tuple(substitution.items()), reverse)


def _search_worker_loop(conn, compiled) -> None:
    """Entry point of one search worker process.

    Speaks a tiny tuple protocol over a duplex pipe:

    * ``("search", snap_name, meta, chunk, enabled, op_ids)`` →
      ``("ok", seconds, {rule name: [match tuples]})`` or
      ``("err", repr(exc))``
    * ``("stop",)`` → exit.
    """
    snapshot: Optional[SnapshotGraph] = None
    snap_name: Optional[str] = None
    closer = None
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "stop":
                break
            _, name, meta, chunk, enabled, op_ids = message
            try:
                if name != snap_name:
                    if closer is not None:
                        snapshot = None
                        closer()
                        closer = None
                    buffer, closer = _attach_snapshot(name, meta["size"])
                    snapshot = SnapshotGraph(buffer, meta)
                    snap_name = name
                snapshot.symbols = op_ids
                start = time.perf_counter()
                out = compiled.search_classes(
                    snapshot,
                    class_ids=chunk,
                    enabled=None if enabled is None else set(enabled),
                    match_type=_tuple_match,
                )
                conn.send(("ok", time.perf_counter() - start, out))
            except Exception as exc:  # surface, let the parent fall back
                try:
                    conn.send(("err", repr(exc)))
                except (OSError, BrokenPipeError):
                    break
    finally:
        if closer is not None:
            snapshot = None
            try:
                closer()
            except BufferError:
                pass
        try:
            conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# The pool (parent side)
# ---------------------------------------------------------------------------


class _Worker:
    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn


class ParallelSearchPool:
    """A persistent fleet of search workers behind the serial matcher's API.

    ``search_classes`` mirrors :meth:`CompiledRuleSet.search_classes` —
    same arguments, byte-identical results — so it can be handed to the
    :class:`~repro.egraph.pattern.IncrementalMatcher` as a drop-in searcher.
    Dispatches smaller than ``min_classes`` run serially (the snapshot and
    IPC overhead would dominate); crashes fall back serially for the epoch,
    respawn the fleet up to ``_MAX_CRASHES`` times, then disable the pool
    for the rest of the run.  All outcomes are counted and drained into the
    runner's :class:`~repro.egraph.runner.IterationReport` via
    :meth:`drain_dispatch_stats`.
    """

    def __init__(
        self,
        compiled,
        workers: int,
        *,
        tracer=None,
        min_classes: int = DEFAULT_MIN_CLASSES,
    ) -> None:
        self.compiled = compiled
        self.workers = max(1, int(workers))
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.min_classes = min_classes
        self._workers: Optional[List[_Worker]] = None
        self._snapshot: Optional[Snapshot] = None
        self._crashes = 0
        self._disabled = False
        self._closed = False
        # Per-iteration counters, drained by the runner after each search.
        self._parallel_dispatches = 0
        self._fallback_dispatches = 0
        self._partition_seconds: List[float] = []

    # -- lifecycle --------------------------------------------------------------

    @property
    def active(self) -> bool:
        """True while the pool may still dispatch work to processes."""
        return not self._disabled and not self._closed

    def _context(self):
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            return multiprocessing.get_context()

    def _ensure_workers(self) -> List[_Worker]:
        if self._workers is None:
            context = self._context()
            fleet: List[_Worker] = []
            for _ in range(self.workers):
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=_search_worker_loop,
                    args=(child_conn, self.compiled),
                    daemon=True,  # leaf processes: no children of their own
                )
                process.start()
                child_conn.close()
                fleet.append(_Worker(process, parent_conn))
            self._workers = fleet
        return self._workers

    def _kill_workers(self) -> None:
        workers, self._workers = self._workers, None
        if not workers:
            return
        for worker in workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
        for worker in workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)

    def _release_snapshot(self) -> None:
        snapshot, self._snapshot = self._snapshot, None
        if snapshot is not None:
            snapshot.release()

    def close(self) -> None:
        """Stop the fleet and unlink the live snapshot (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._kill_workers()
        finally:
            self._release_snapshot()

    def __del__(self):  # best effort; Runner.run closes explicitly
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "ParallelSearchPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- counters ---------------------------------------------------------------

    def drain_dispatch_stats(self) -> Tuple[int, int, List[float]]:
        """(parallel dispatches, fallbacks, per-partition worker seconds)
        accumulated since the previous drain."""
        stats = (
            self._parallel_dispatches,
            self._fallback_dispatches,
            self._partition_seconds,
        )
        self._parallel_dispatches = 0
        self._fallback_dispatches = 0
        self._partition_seconds = []
        return stats

    # -- searching --------------------------------------------------------------

    def _candidates(self, egraph, class_ids: Optional[Iterable[int]]) -> Set[int]:
        """The candidate class set, computed exactly like the serial matcher."""
        compiled = self.compiled
        if class_ids is None:
            candidates: Set[int] = set()
            if compiled._has_var_roots:
                candidates.update(egraph.find(eclass.id) for eclass in egraph.classes())
            else:
                for op in compiled._root_edges_by_op:
                    candidates.update(egraph.classes_with_op(op))
        else:
            candidates = {egraph.find(class_id) for class_id in class_ids}
        return candidates

    def _ensure_snapshot(self, egraph) -> Snapshot:
        key = (id(egraph), egraph.version)
        snapshot = self._snapshot
        if snapshot is not None and snapshot.key == key:
            return snapshot
        self._release_snapshot()
        snapshot = export_snapshot(egraph)
        self._snapshot = snapshot
        return snapshot

    def search_classes(
        self,
        egraph,
        class_ids: Optional[Iterable[int]] = None,
        enabled: Optional[Set[str]] = None,
    ) -> Dict[str, List]:
        """Match the enabled rules over the candidate classes, in parallel.

        Returns the exact dict the serial
        :meth:`CompiledRuleSet.search_classes` would return — same keys,
        same match objects' values, same order.
        """
        compiled = self.compiled
        if not self.active:
            return compiled.search_classes(egraph, class_ids=class_ids, enabled=enabled)
        candidates = sorted(self._candidates(egraph, class_ids))
        if len(candidates) < max(2, self.min_classes):
            return compiled.search_classes(egraph, class_ids=candidates, enabled=enabled)
        try:
            return self._dispatch(egraph, candidates, enabled)
        except (EOFError, OSError, BrokenPipeError, _WorkerFailed):
            self._fallback_dispatches += 1
            self._crashes += 1
            self._kill_workers()
            if self._crashes > _MAX_CRASHES:
                self._disabled = True
            try:
                return compiled.search_classes(
                    egraph, class_ids=candidates, enabled=enabled
                )
            finally:
                # The snapshot cannot be trusted to be reused after a crash
                # (and a disabled pool would otherwise hold it until close).
                self._release_snapshot()

    def _dispatch(
        self, egraph, candidates: List[int], enabled: Optional[Set[str]]
    ) -> Dict[str, List]:
        from repro.egraph.rewrite import RewriteMatch  # local: import cycle

        compiled = self.compiled
        snapshot = self._ensure_snapshot(egraph)
        classes = egraph._classes
        weights = [len(classes[class_id].flat) if class_id in classes else 0
                   for class_id in candidates]
        chunks = partition_classes(candidates, weights, self.workers)
        workers = self._ensure_workers()
        symbols_get = egraph.symbols.get
        op_ids = {op: symbols_get(op) for op in compiled._slot_ops}
        enabled_wire = None if enabled is None else sorted(enabled)

        for index, chunk in enumerate(chunks):
            workers[index].conn.send(
                ("search", snapshot.name, snapshot.meta, chunk, enabled_wire, op_ids)
            )

        merged_raw: List[Dict[str, List]] = []
        tracer = self.tracer
        for index, chunk in enumerate(chunks):
            with tracer.span("search.partition") as span:
                reply = workers[index].conn.recv()
                if reply[0] != "ok":
                    raise _WorkerFailed(reply[1])
                _, seconds, out = reply
                self._partition_seconds.append(seconds)
                merged_raw.append(out)
                if span is not None:
                    span.update(
                        {
                            "partition": index,
                            "classes": len(chunk),
                            "matches": sum(len(m) for m in out.values()),
                            "worker_seconds": seconds,
                        }
                    )
        self._parallel_dispatches += 1

        results: Dict[str, List] = {}
        for name in merged_raw[0]:
            matches: List = []
            for out in merged_raw:
                for class_id, items, reverse in out[name]:
                    matches.append(RewriteMatch(class_id, dict(items), reverse))
            results[name] = matches
        return results


class _WorkerFailed(Exception):
    """A worker reported an exception (treated like a crash: serial fallback)."""
