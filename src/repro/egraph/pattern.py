"""Patterns and e-matching.

Rewrite rules are written as pattern pairs; a pattern is a term whose leaves
may be *pattern variables*, written ``?x`` in the s-expression syntax.
E-matching finds, for every e-class, all substitutions under which the
pattern is represented in that class (paper Section 3.1: "whenever an eclass
c1 represents an expression matching pattern a under substitution phi ...").

The matcher is the standard top-down backtracking e-matcher: match the root
e-node's operator, then recursively match argument patterns against argument
e-classes, threading a substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.egraph.egraph import EGraph, ENode
from repro.lang.sexp import parse_sexp
from repro.lang.term import Term

#: A substitution maps pattern-variable names (without the ``?``) to e-class ids.
Substitution = Dict[str, int]


@dataclass(frozen=True)
class PatternVar:
    """A pattern variable, e.g. ``?x``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class Pattern:
    """A pattern node: either a variable or an operator applied to sub-patterns."""

    op: Union[str, int, float, PatternVar]
    children: Tuple["Pattern", ...] = ()

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def var(name: str) -> "Pattern":
        return Pattern(PatternVar(name))

    @staticmethod
    def from_term(term: Term) -> "Pattern":
        """Convert a concrete term into a (variable-free) pattern."""
        return Pattern(term.op, tuple(Pattern.from_term(c) for c in term.children))

    @staticmethod
    def from_sexp(sexp) -> "Pattern":
        if isinstance(sexp, list):
            if not sexp:
                raise ValueError("empty pattern")
            head = sexp[0]
            if isinstance(head, str) and head.startswith("?"):
                raise ValueError("pattern variables cannot take arguments")
            return Pattern(head, tuple(Pattern.from_sexp(c) for c in sexp[1:]))
        if isinstance(sexp, str) and sexp.startswith("?"):
            return Pattern(PatternVar(sexp[1:]))
        return Pattern(sexp)

    # -- queries ----------------------------------------------------------------

    @property
    def is_var(self) -> bool:
        return isinstance(self.op, PatternVar)

    def variables(self) -> List[str]:
        """All variable names, in first-occurrence order."""
        names: List[str] = []

        def walk(pattern: "Pattern") -> None:
            if isinstance(pattern.op, PatternVar):
                if pattern.op.name not in names:
                    names.append(pattern.op.name)
            for child in pattern.children:
                walk(child)

        walk(self)
        return names

    def to_term(self, bindings: Dict[str, Term]) -> Term:
        """Instantiate the pattern into a concrete term using ``bindings``."""
        if isinstance(self.op, PatternVar):
            try:
                return bindings[self.op.name]
            except KeyError as exc:
                raise KeyError(f"unbound pattern variable ?{self.op.name}") from exc
        return Term(self.op, tuple(c.to_term(bindings) for c in self.children))

    def __str__(self) -> str:
        if not self.children:
            return str(self.op)
        args = " ".join(str(c) for c in self.children)
        return f"({self.op} {args})"


def parse_pattern(text: str) -> Pattern:
    """Parse a pattern from s-expression text, e.g. ``(Union ?a ?b)``."""
    return Pattern.from_sexp(parse_sexp(text))


# ---------------------------------------------------------------------------
# E-matching
# ---------------------------------------------------------------------------

def match_in_class(
    egraph: EGraph, pattern: Pattern, class_id: int, substitution: Optional[Substitution] = None
) -> Iterator[Substitution]:
    """Yield all substitutions under which ``pattern`` matches e-class ``class_id``."""
    substitution = substitution or {}
    class_id = egraph.find(class_id)

    if isinstance(pattern.op, PatternVar):
        name = pattern.op.name
        bound = substitution.get(name)
        if bound is None:
            extended = dict(substitution)
            extended[name] = class_id
            yield extended
        elif egraph.find(bound) == class_id:
            yield dict(substitution)
        return

    for enode in list(egraph.nodes(class_id)):
        if enode.op != pattern.op or len(enode.args) != len(pattern.children):
            continue
        yield from _match_args(egraph, pattern.children, enode.args, substitution)


def _match_args(
    egraph: EGraph,
    patterns: Sequence[Pattern],
    arg_ids: Sequence[int],
    substitution: Substitution,
) -> Iterator[Substitution]:
    if not patterns:
        yield dict(substitution)
        return
    head_pattern, *rest_patterns = patterns
    head_id, *rest_ids = arg_ids
    for partial in match_in_class(egraph, head_pattern, head_id, substitution):
        yield from _match_args(egraph, rest_patterns, rest_ids, partial)


def search(egraph: EGraph, pattern: Pattern) -> List[Tuple[int, Substitution]]:
    """Match ``pattern`` against every e-class.

    Returns a list of (e-class id, substitution) pairs — the paper's
    ``match_eg`` (Fig. 12) used both by the rewrite engine and by the list
    manipulation component.  When the pattern root is a concrete operator,
    only e-classes containing that operator are scanned (via the e-graph's
    operator index), which is what keeps matching fast on large models.
    """
    results: List[Tuple[int, Substitution]] = []
    if isinstance(pattern.op, PatternVar):
        candidate_ids = [egraph.find(eclass.id) for eclass in egraph.classes()]
    else:
        candidate_ids = egraph.classes_with_op(pattern.op)
    seen = set()
    for class_id in candidate_ids:
        class_id = egraph.find(class_id)
        if class_id in seen:
            continue
        seen.add(class_id)
        for substitution in match_in_class(egraph, pattern, class_id):
            results.append((class_id, substitution))
    return results


def instantiate(egraph: EGraph, pattern: Pattern, substitution: Substitution) -> int:
    """Add the instantiation of ``pattern`` under ``substitution`` to the e-graph.

    Pattern variables are looked up in the substitution (their e-class ids are
    reused directly); concrete pattern nodes become fresh e-nodes.
    """
    if isinstance(pattern.op, PatternVar):
        try:
            return egraph.find(substitution[pattern.op.name])
        except KeyError as exc:
            raise KeyError(f"unbound pattern variable ?{pattern.op.name}") from exc
    args = tuple(instantiate(egraph, child, substitution) for child in pattern.children)
    return egraph.add_enode(ENode(pattern.op, args))
