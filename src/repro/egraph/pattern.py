"""Patterns and e-matching.

Rewrite rules are written as pattern pairs; a pattern is a term whose leaves
may be *pattern variables*, written ``?x`` in the s-expression syntax.
E-matching finds, for every e-class, all substitutions under which the
pattern is represented in that class (paper Section 3.1: "whenever an eclass
c1 represents an expression matching pattern a under substitution phi ...").

Two matchers are provided:

* the standard top-down backtracking e-matcher (:func:`match_in_class`,
  :func:`search`): match the root e-node's operator, then recursively match
  argument patterns against argument e-classes, threading a substitution.
  This is the reference ("naive") implementation the differential tests
  treat as the oracle;
* a compiled matcher (:class:`CompiledRuleSet`): every rule pattern is
  compiled once into a short program of register-machine instructions
  (*descend* an e-node binding its argument classes into fresh registers,
  *check* that a class contains a leaf operator, *compare* two registers
  bound to the same pattern variable), and the programs of all rules are
  inserted into a shared discrimination trie so patterns with a common
  prefix — in particular a common top symbol — are matched in one pass.

**The dirty-epoch protocol.**  :class:`IncrementalMatcher` wraps a
:class:`CompiledRuleSet` with a per-rule match cache keyed by canonical
e-class.  Each call to :meth:`IncrementalMatcher.search` opens a new *search
epoch*: it consumes the e-graph's dirty set (:meth:`EGraph.take_dirty` —
classes created or merged since the previous epoch), closes it upward over
parent pointers to the compiled patterns' maximum depth (a new match rooted
at a clean class can only involve a changed class at most ``depth - 1``
argument hops below it), re-matches exactly the closure, and serves every
other class from the cache.  A rule that skipped an epoch (e.g. while
banned by the runner's backoff scheduler) cannot trust its cache — the
dirty sets of the missed epochs are gone — so it falls back to a full
sweep, as does every rule on epoch 0.  The union of cached and re-matched
results is therefore always the *complete* match set, identical to what
:func:`search` returns on the same graph, which is what the differential
suite in ``tests/test_search_differential.py`` locks down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.egraph.egraph import EGraph, ENode, Operator
from repro.lang.sexp import parse_sexp
from repro.lang.term import Term

#: A substitution maps pattern-variable names (without the ``?``) to e-class ids.
Substitution = Dict[str, int]


@dataclass(frozen=True)
class PatternVar:
    """A pattern variable, e.g. ``?x``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class Pattern:
    """A pattern node: either a variable or an operator applied to sub-patterns."""

    op: Union[str, int, float, PatternVar]
    children: Tuple["Pattern", ...] = ()

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def var(name: str) -> "Pattern":
        return Pattern(PatternVar(name))

    @staticmethod
    def from_term(term: Term) -> "Pattern":
        """Convert a concrete term into a (variable-free) pattern."""
        return Pattern(term.op, tuple(Pattern.from_term(c) for c in term.children))

    @staticmethod
    def from_sexp(sexp) -> "Pattern":
        if isinstance(sexp, list):
            if not sexp:
                raise ValueError("empty pattern")
            head = sexp[0]
            if isinstance(head, str) and head.startswith("?"):
                raise ValueError("pattern variables cannot take arguments")
            return Pattern(head, tuple(Pattern.from_sexp(c) for c in sexp[1:]))
        if isinstance(sexp, str) and sexp.startswith("?"):
            return Pattern(PatternVar(sexp[1:]))
        return Pattern(sexp)

    # -- queries ----------------------------------------------------------------

    @property
    def is_var(self) -> bool:
        return isinstance(self.op, PatternVar)

    def variables(self) -> List[str]:
        """All variable names, in first-occurrence order."""
        names: List[str] = []

        def walk(pattern: "Pattern") -> None:
            if isinstance(pattern.op, PatternVar):
                if pattern.op.name not in names:
                    names.append(pattern.op.name)
            for child in pattern.children:
                walk(child)

        walk(self)
        return names

    def to_term(self, bindings: Dict[str, Term]) -> Term:
        """Instantiate the pattern into a concrete term using ``bindings``."""
        if isinstance(self.op, PatternVar):
            try:
                return bindings[self.op.name]
            except KeyError as exc:
                raise KeyError(f"unbound pattern variable ?{self.op.name}") from exc
        return Term(self.op, tuple(c.to_term(bindings) for c in self.children))

    def __str__(self) -> str:
        if not self.children:
            return str(self.op)
        args = " ".join(str(c) for c in self.children)
        return f"({self.op} {args})"


def parse_pattern(text: str) -> Pattern:
    """Parse a pattern from s-expression text, e.g. ``(Union ?a ?b)``."""
    return Pattern.from_sexp(parse_sexp(text))


# ---------------------------------------------------------------------------
# E-matching
# ---------------------------------------------------------------------------

def match_in_class(
    egraph: EGraph, pattern: Pattern, class_id: int, substitution: Optional[Substitution] = None
) -> Iterator[Substitution]:
    """Yield all substitutions under which ``pattern`` matches e-class ``class_id``."""
    substitution = substitution or {}
    class_id = egraph.find(class_id)

    if isinstance(pattern.op, PatternVar):
        name = pattern.op.name
        bound = substitution.get(name)
        if bound is None:
            extended = dict(substitution)
            extended[name] = class_id
            yield extended
        elif egraph.find(bound) == class_id:
            yield dict(substitution)
        return

    for enode in list(egraph.nodes(class_id)):
        if enode.op != pattern.op or len(enode.args) != len(pattern.children):
            continue
        yield from _match_args(egraph, pattern.children, enode.args, substitution)


def _match_args(
    egraph: EGraph,
    patterns: Sequence[Pattern],
    arg_ids: Sequence[int],
    substitution: Substitution,
) -> Iterator[Substitution]:
    if not patterns:
        yield dict(substitution)
        return
    head_pattern, *rest_patterns = patterns
    head_id, *rest_ids = arg_ids
    for partial in match_in_class(egraph, head_pattern, head_id, substitution):
        yield from _match_args(egraph, rest_patterns, rest_ids, partial)


def search(egraph: EGraph, pattern: Pattern) -> List[Tuple[int, Substitution]]:
    """Match ``pattern`` against every e-class.

    Returns a list of (e-class id, substitution) pairs — the paper's
    ``match_eg`` (Fig. 12) used both by the rewrite engine and by the list
    manipulation component.  When the pattern root is a concrete operator,
    only e-classes containing that operator are scanned (via the e-graph's
    operator index), which is what keeps matching fast on large models.
    """
    results: List[Tuple[int, Substitution]] = []
    if isinstance(pattern.op, PatternVar):
        candidate_ids = [egraph.find(eclass.id) for eclass in egraph.classes()]
    else:
        candidate_ids = egraph.classes_with_op(pattern.op)
    seen = set()
    for class_id in candidate_ids:
        class_id = egraph.find(class_id)
        if class_id in seen:
            continue
        seen.add(class_id)
        for substitution in match_in_class(egraph, pattern, class_id):
            results.append((class_id, substitution))
    return results


def instantiate(egraph: EGraph, pattern: Pattern, substitution: Substitution) -> int:
    """Add the instantiation of ``pattern`` under ``substitution`` to the e-graph.

    Pattern variables are looked up in the substitution (their e-class ids are
    reused directly); concrete pattern nodes become fresh e-nodes.
    """
    if isinstance(pattern.op, PatternVar):
        try:
            return egraph.find(substitution[pattern.op.name])
        except KeyError as exc:
            raise KeyError(f"unbound pattern variable ?{pattern.op.name}") from exc
    args = tuple(instantiate(egraph, child, substitution) for child in pattern.children)
    return egraph.add_enode(ENode(pattern.op, args))


# ---------------------------------------------------------------------------
# Compiled e-matching: instruction programs in a shared discrimination trie
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Descend:
    """Enumerate e-nodes ``(op arg0 ... argN)`` in the class held by ``reg``.

    For each such e-node the argument classes are bound (canonicalized) into
    registers ``base .. base + arity - 1`` and matching continues — this is
    the matcher's only backtracking point.
    """

    reg: int
    op: Operator
    arity: int
    base: int


@dataclass(frozen=True)
class Check:
    """Require that the class held by ``reg`` contains the leaf e-node ``op``."""

    reg: int
    op: Operator


@dataclass(frozen=True)
class Compare:
    """Require ``reg`` and ``prev`` to hold the same class (repeated variable)."""

    reg: int
    prev: int


Instruction = Union[Descend, Check, Compare]

#: A yield entry: (rule index, reverse?, ((var name, register), ...)).
_Yield = Tuple[int, bool, Tuple[Tuple[str, int], ...]]


def compile_pattern(pattern: Pattern) -> Tuple[Tuple[Instruction, ...], Tuple[Tuple[str, int], ...]]:
    """Compile a pattern into an instruction program plus a variable map.

    Register 0 holds the candidate root class; registers are allocated in a
    deterministic preorder walk, so two patterns sharing a structural prefix
    compile to programs sharing an instruction prefix — the property the
    discrimination trie exploits.  Variable names never appear in the
    instructions (only in the final variable map), so alpha-equivalent
    prefixes of different rules still share.
    """
    instructions: List[Instruction] = []
    var_regs: Dict[str, int] = {}
    next_reg = 1

    def walk(p: Pattern, reg: int) -> None:
        nonlocal next_reg
        if isinstance(p.op, PatternVar):
            previous = var_regs.get(p.op.name)
            if previous is None:
                var_regs[p.op.name] = reg
            else:
                instructions.append(Compare(reg, previous))
            return
        if not p.children:
            instructions.append(Check(reg, p.op))
            return
        base = next_reg
        next_reg += len(p.children)
        instructions.append(Descend(reg, p.op, len(p.children), base))
        for offset, child in enumerate(p.children):
            walk(child, base + offset)

    walk(pattern, 0)
    return tuple(instructions), tuple(sorted(var_regs.items()))


def pattern_depth(pattern: Pattern) -> int:
    """Depth of a pattern (a bare variable or leaf has depth 1)."""
    return 1 + max((pattern_depth(c) for c in pattern.children), default=0)


class _SearchContext:
    """Per-search state threaded through trie execution (one per search call).

    ``resolved`` maps the rule set's operator slots to this e-graph's
    interned op ids (``None`` for operators the graph has never seen) — one
    list build per search, then every Descend/Check step is a list index.
    """

    __slots__ = ("flat_nodes", "resolved", "parents", "enabled", "out", "match_type")

    def __init__(self, egraph, slot_ops, enabled, out, match_type) -> None:
        self.flat_nodes = egraph.flat_nodes
        get = egraph.symbols.get
        self.resolved: List[Optional[int]] = [get(op) for op in slot_ops]
        self.parents = egraph._union_find.parents
        self.enabled = enabled
        self.out = out
        self.match_type = match_type


class _TrieNode:
    """One node of the shared-program trie; edges are labelled by instructions."""

    __slots__ = ("children", "edges", "yields", "rules")

    def __init__(self) -> None:
        self.children: Dict[Instruction, "_TrieNode"] = {}
        #: The same edges as ``children``, flattened for execution:
        #: ``(instruction, child, op_slot)`` where ``op_slot`` indexes the
        #: rule set's distinct-operator table (-1 for Compare edges).  The
        #: per-search resolution array turns a slot into the e-graph's
        #: interned op id with one list index — no string hashing inside
        #: the trie walk.
        self.edges: List[Tuple[Instruction, "_TrieNode", int]] = []
        self.yields: List[_Yield] = []
        #: Indices of every rule with a program passing through this node —
        #: used to prune whole subtrees when the caller restricts the search
        #: to a subset of rules (e.g. while others are banned).
        self.rules: Set[int] = set()


@dataclass(frozen=True)
class TrieStats:
    """Size/sharing statistics of a compiled rule set."""

    programs: int            #: compiled (rule, direction) programs
    instructions: int        #: total instructions across all programs
    trie_nodes: int          #: interior+leaf nodes actually allocated
    shared_instructions: int #: instructions saved by prefix sharing
    max_depth: int           #: deepest compiled pattern (drives dirty closure)


class CompiledRuleSet:
    """All rule patterns of a rule set compiled into one discrimination trie.

    Construction walks every rule's searchable patterns — the left-hand side
    always, and for bidirectional rules whose right-hand side binds every
    left-hand variable also the right-hand side (tagged *reverse*, mirroring
    :meth:`repro.egraph.rewrite.Rewrite.search`) — compiles each into an
    instruction program, and inserts the programs into a trie whose root
    edges are keyed by the pattern's top symbol.  Searching a class then
    dispatches once on the class's operators instead of once per rule.

    The object is immutable with respect to the e-graph: it holds no graph
    state, so one compiled set can be shared by many runs (the pipeline
    compiles the rule database once per :func:`~repro.core.pipeline.synthesize`
    call).  Incremental state lives in :class:`IncrementalMatcher`.
    """

    def __init__(self, rules: Sequence) -> None:
        self.rules = list(rules)
        self.rule_names: List[str] = [rule.name for rule in self.rules]
        if len(set(self.rule_names)) != len(self.rule_names):
            raise ValueError("rule names must be unique to compile a rule set")
        self._root = _TrieNode()
        #: Root trie edges grouped by the pattern's top symbol.
        self._root_edges_by_op: Dict[Operator, List[Tuple[Instruction, _TrieNode, int]]] = {}
        #: Distinct instruction operators, slot-indexed (see _TrieNode.edges).
        self._slot_ops: List[Operator] = []
        self._op_slots: Dict[Operator, int] = {}
        #: True when some pattern is a bare variable (matches every class).
        self._has_var_roots = False
        programs = 0
        total_instructions = 0
        max_depth = 1
        for index, rule in enumerate(self.rules):
            patterns: List[Tuple[Pattern, bool]] = [(rule.lhs, False)]
            rhs = getattr(rule, "rhs", None)
            if getattr(rule, "bidirectional", False) and rhs is not None:
                # A reverse match can only fire if the rhs binds every
                # variable the lhs needs; that is a static property of the
                # two patterns, so the filter runs at compile time.
                if set(rule.lhs.variables()) <= set(rhs.variables()):
                    patterns.append((rhs, True))
            for pattern, reverse in patterns:
                instructions, varmap = compile_pattern(pattern)
                self._insert(instructions, (index, reverse, varmap))
                programs += 1
                total_instructions += len(instructions)
                max_depth = max(max_depth, pattern_depth(pattern))
        self.max_depth = max_depth
        #: Parent hops needed to cover every class whose match set a dirty
        #: class can influence.
        self.closure_steps = max(0, max_depth - 1)
        trie_nodes = self._count_nodes(self._root)
        self.stats = TrieStats(
            programs=programs,
            instructions=total_instructions,
            trie_nodes=trie_nodes,
            shared_instructions=total_instructions - (trie_nodes - 1),
            max_depth=max_depth,
        )

    # -- construction helpers ---------------------------------------------------

    def _op_slot(self, instruction: Instruction) -> int:
        """The resolution-table slot for an instruction (-1 for Compare)."""
        if isinstance(instruction, Compare):
            return -1
        slot = self._op_slots.get(instruction.op)
        if slot is None:
            slot = self._op_slots[instruction.op] = len(self._slot_ops)
            self._slot_ops.append(instruction.op)
        return slot

    def _insert(self, instructions: Tuple[Instruction, ...], entry: _Yield) -> None:
        node = self._root
        node.rules.add(entry[0])
        for position, instruction in enumerate(instructions):
            child = node.children.get(instruction)
            if child is None:
                child = node.children[instruction] = _TrieNode()
                edge = (instruction, child, self._op_slot(instruction))
                node.edges.append(edge)
                if position == 0:
                    self._root_edges_by_op.setdefault(instruction.op, []).append(edge)
            child.rules.add(entry[0])
            node = child
        if node is self._root:
            self._has_var_roots = True
        node.yields.append(entry)

    def _count_nodes(self, node: _TrieNode) -> int:
        return 1 + sum(self._count_nodes(child) for child in node.children.values())

    # -- pickling ---------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle without the rule objects.

        Dynamic rewrites close over arbitrary appliers/guards (lambdas),
        which do not pickle — and the search path never touches them: it
        needs only the trie, the operator slots, and the rule names.  A
        search-worker process therefore receives a compiled set whose
        ``rules`` is ``None``; applying matches stays in the parent.
        """
        state = dict(self.__dict__)
        state["rules"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -- searching --------------------------------------------------------------

    def search_classes(
        self,
        egraph: EGraph,
        class_ids: Optional[Iterable[int]] = None,
        enabled: Optional[Set[str]] = None,
        match_type=None,
    ) -> Dict[str, List]:
        """Match every compiled pattern against a set of candidate classes.

        ``class_ids`` restricts the search (``None`` means the whole graph,
        pre-filtered through the operator index); ``enabled`` restricts it to
        a subset of rule names, pruning shared trie branches no enabled rule
        passes through.  Returns ``{rule name: [RewriteMatch, ...]}`` with
        matches ordered by canonical class id; every rule searched gets an
        entry, even when empty.

        The trie executes over the e-graph's *flat* node representation:
        instruction operators are resolved to the graph's interned ids once
        per search, the node loops compare integers, and argument ids are
        canonicalized with an inlined path-compressed find (see
        :mod:`repro.egraph.symbols` and the e-graph module docstring).

        ``match_type`` overrides the match constructor — the parallel search
        workers (:mod:`repro.egraph.parallel`) pass a plain-tuple builder so
        results cross process boundaries without pickling match objects.
        ``egraph`` may then be any object with the e-graph's search surface
        (``find`` / ``flat_nodes`` / ``symbols.get``/ ``_union_find.parents``),
        e.g. a shared-memory snapshot.
        """
        if match_type is None:
            from repro.egraph.rewrite import RewriteMatch  # local: avoids an import cycle

            match_type = RewriteMatch

        if enabled is None:
            enabled_indices: Optional[Set[int]] = None
        else:
            enabled_indices = {i for i, n in enumerate(self.rule_names) if n in enabled}
        if class_ids is None:
            candidates: Set[int] = set()
            if self._has_var_roots:
                candidates.update(egraph.find(eclass.id) for eclass in egraph.classes())
            else:
                for op in self._root_edges_by_op:
                    candidates.update(egraph.classes_with_op(op))
        else:
            candidates = {egraph.find(class_id) for class_id in class_ids}
        out: Dict[int, List] = {
            i: [] for i in range(len(self.rule_names))
            if enabled_indices is None or i in enabled_indices
        }
        ctx = _SearchContext(egraph, self._slot_ops, enabled_indices, out, match_type)
        symbols = egraph.symbols
        # Root trie edges re-keyed by this graph's interned op ids; an
        # operator the graph has never interned cannot match anywhere.
        root_edges: Dict[int, List] = {}
        for op, edges in self._root_edges_by_op.items():
            op_id = symbols.get(op)
            if op_id is not None:
                root_edges[op_id] = edges
        for class_id in sorted(candidates):
            self._match_class(ctx, class_id, root_edges)
        return {self.rule_names[index]: matches for index, matches in out.items()}

    def _match_class(self, ctx, class_id, root_edges) -> None:
        enabled = ctx.enabled
        for entry in self._root.yields:  # bare-variable patterns match any class
            if enabled is None or entry[0] in enabled:
                self._emit(entry, [class_id], class_id, ctx.out, ctx.match_type)
        regs = [class_id]
        for op_id in {node[0] for node in ctx.flat_nodes(class_id)}:
            edges = root_edges.get(op_id)
            if edges is not None:
                for instruction, child, slot in edges:
                    self._step(ctx, instruction, child, slot, regs, class_id)

    def _emit(self, entry, regs, class_id, out, match_type) -> None:
        index, reverse, varmap = entry
        out[index].append(
            match_type(class_id, {name: regs[reg] for name, reg in varmap}, reverse)
        )

    def _execute(self, ctx, node, regs, class_id) -> None:
        enabled = ctx.enabled
        for entry in node.yields:
            if enabled is None or entry[0] in enabled:
                self._emit(entry, regs, class_id, ctx.out, ctx.match_type)
        for instruction, child, slot in node.edges:
            self._step(ctx, instruction, child, slot, regs, class_id)

    def _step(self, ctx, instruction, child, slot, regs, class_id) -> None:
        if ctx.enabled is not None and not (child.rules & ctx.enabled):
            return
        kind = type(instruction)
        if kind is Descend:
            op_id = ctx.resolved[slot]
            if op_id is None:
                return
            width = instruction.arity + 1
            parents = ctx.parents
            for node in ctx.flat_nodes(regs[instruction.reg]):
                if node[0] == op_id and len(node) == width:
                    # Bind argument classes, canonicalized with an inlined
                    # path-compressed find (this is the matcher's innermost
                    # loop; a find() call per argument dominated its profile).
                    new_regs = list(regs)
                    for arg in node[1:]:
                        root = arg
                        while parents[root] != root:
                            root = parents[root]
                        while parents[arg] != root:
                            parents[arg], arg = root, parents[arg]
                        new_regs.append(root)
                    self._execute(ctx, child, new_regs, class_id)
        elif kind is Check:
            op_id = ctx.resolved[slot]
            if op_id is None:
                return
            for node in ctx.flat_nodes(regs[instruction.reg]):
                if len(node) == 1 and node[0] == op_id:
                    self._execute(ctx, child, regs, class_id)
                    break
        else:  # Compare
            if regs[instruction.reg] == regs[instruction.prev]:
                self._execute(ctx, child, regs, class_id)


@dataclass
class SearchStats:
    """What one :meth:`IncrementalMatcher.search` epoch actually did."""

    epoch: int = 0
    dirty_classes: int = 0       #: canonical classes dirtied since last epoch
    searched_classes: int = 0    #: dirty closure actually re-matched
    full_sweep_rules: List[str] = field(default_factory=list)
    cached_matches: int = 0      #: matches served from the cache
    recomputed_matches: int = 0  #: matches produced by trie execution


class IncrementalMatcher:
    """Epoch-cached incremental e-matching over one e-graph.

    See the module docstring for the dirty-epoch protocol.  The matcher owns
    the e-graph's dirty stream from its first :meth:`search` on: it calls
    :meth:`EGraph.take_dirty` every epoch, so at most one matcher may drive
    a given e-graph at a time.
    """

    def __init__(self, compiled: CompiledRuleSet, searcher=None) -> None:
        self.compiled = compiled
        #: Optional ``search_classes`` provider substituted for the compiled
        #: set — the parallel search pool (:mod:`repro.egraph.parallel`)
        #: plugs in here.  Must return byte-identical results to
        #: :meth:`CompiledRuleSet.search_classes` (the pool guarantees it).
        self.searcher = compiled if searcher is None else searcher
        self._epoch = 0
        self._rule_epoch: Dict[str, int] = {}
        #: rule name -> canonical class id -> cached matches in that class.
        self._cache: Dict[str, Dict[int, List]] = {name: {} for name in compiled.rule_names}
        self.last_stats = SearchStats()

    # -- dirty closure ----------------------------------------------------------

    def _dirty_closure(self, egraph: EGraph, dirty: Set[int]) -> Set[int]:
        """Close the dirty set upward over parents to the patterns' depth."""
        closure = set(dirty)
        frontier = dirty
        find = egraph.find
        for _ in range(self.compiled.closure_steps):
            if not frontier:
                break
            next_frontier: Set[int] = set()
            for class_id in frontier:
                for _parent_node, parent_id in egraph.eclass(class_id).parents:
                    parent = find(parent_id)
                    if parent not in closure:
                        closure.add(parent)
                        next_frontier.add(parent)
            frontier = next_frontier
        return closure

    # -- searching --------------------------------------------------------------

    def search(
        self, egraph: EGraph, enabled: Optional[Set[str]] = None
    ) -> Dict[str, List]:
        """Complete match sets for the enabled rules on the current graph.

        Equivalent to calling :func:`search` per rule pattern, but clean
        classes are served from the previous epoch's cache.
        """
        self._epoch += 1
        dirty = egraph.dirty_classes()
        raw_dirty = egraph.take_dirty_raw()
        names = (
            list(self.compiled.rule_names)
            if enabled is None
            else [n for n in self.compiled.rule_names if n in enabled]
        )
        incremental = [n for n in names if self._rule_epoch.get(n) == self._epoch - 1]
        full = [n for n in names if self._rule_epoch.get(n) != self._epoch - 1]
        stats = SearchStats(epoch=self._epoch, dirty_classes=len(dirty))
        stats.full_sweep_rules = list(full)

        closure: Set[int] = set()
        if incremental:
            closure = self._dirty_closure(egraph, dirty)
            stats.searched_classes = len(closure)
            # Evict exactly the cache keys that can be stale: the closure
            # (whose matches are recomputed below) plus the raw dirty ids —
            # which include every root merged away since the last epoch, so
            # keys that lost canonicity are hit directly instead of probing
            # every cached class with find().
            stale = raw_dirty | closure
            for name in incremental:
                cache = self._cache[name]
                for class_id in stale:
                    cache.pop(class_id, None)
            if closure:
                recomputed = self.searcher.search_classes(
                    egraph, class_ids=closure, enabled=set(incremental)
                )
                for name, matches in recomputed.items():
                    cache = self._cache[name]
                    for match in matches:
                        cache.setdefault(match.class_id, []).append(match)
                    stats.recomputed_matches += len(matches)
        if full:
            swept = self.searcher.search_classes(egraph, enabled=set(full))
            for name, matches in swept.items():
                grouped: Dict[int, List] = {}
                for match in matches:
                    grouped.setdefault(match.class_id, []).append(match)
                self._cache[name] = grouped
                stats.recomputed_matches += len(matches)

        results: Dict[str, List] = {}
        for name in names:
            self._rule_epoch[name] = self._epoch
            cache = self._cache[name]
            flat: List = []
            for class_id in sorted(cache):
                flat.extend(cache[class_id])
            results[name] = flat
        stats.cached_matches = sum(len(m) for m in results.values()) - stats.recomputed_matches
        self.last_stats = stats
        return results
