"""Rewrite rules over e-graphs.

A rewrite ``lhs { rhs`` searches the e-graph for matches of ``lhs`` and, for
every match, adds the instantiation of ``rhs`` and merges it into the matched
e-class (paper Section 3.1).  Because the e-graph is non-destructive, both the
old and the new expressions remain available, which is what mitigates phase
ordering.

Two flavours are provided:

* :class:`Rewrite` — purely syntactic ``Pattern -> Pattern`` rules, optionally
  guarded by a predicate over the substitution (used, e.g., to require that
  two matched vectors are numerically equal within epsilon, or that a scale
  factor is non-zero before dividing); bidirectional rules additionally
  search the rhs and tag those matches ``reverse`` so the apply phase
  instantiates the lhs for them;
* :class:`DynamicRewrite` — pattern on the left, arbitrary *applier* function
  on the right.  The applier receives the e-graph, the matched class, and the
  substitution and returns the id of a class to merge with (or ``None``).
  The affine reordering/collapsing rules that must *compute* new vectors
  (Fig. 8b/8c) are dynamic rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.egraph.egraph import EGraph
from repro.egraph.pattern import Pattern, Substitution, instantiate, parse_pattern, search

#: A fingerprint: (canonical class id, reverse?, ((var, canonical id), ...)).
Fingerprint = Tuple[int, bool, Tuple[Tuple[str, int], ...]]

#: A guard receives (egraph, eclass id, substitution) and says whether to fire.
Guard = Callable[[EGraph, int, Substitution], bool]

#: An applier receives (egraph, eclass id, substitution) and returns the id of
#: the newly constructed equivalent class, or None to skip.
Applier = Callable[[EGraph, int, Substitution], Optional[int]]


@dataclass(slots=True)
class RewriteMatch:
    """One firing opportunity discovered during the search phase.

    ``reverse`` marks matches found by searching the *right-hand* side of a
    bidirectional rule; applying such a match must instantiate the left-hand
    side (instantiating the rhs again would merge the matched class with
    itself, a silent no-op — the bug this flag fixes).

    :meth:`fingerprint` projects the match onto canonical ids — the key of
    the runner's applied-match ledger.  Two matches with equal fingerprints
    denote the same rewrite opportunity on the current graph, so a
    syntactic rule that already fired one of them can skip the other
    without instantiating anything.  The fingerprint is cached on the match
    object, stamped with the e-graph's :attr:`~repro.egraph.egraph.EGraph.union_version`:
    canonical ids can only change when a union happens, so while the stamp
    matches the cache is exact and a re-encounter of the match (the
    incremental matcher serves the *same* objects from its cache every
    epoch) costs one integer compare instead of a find per bound id.
    """

    class_id: int
    substitution: Substitution
    reverse: bool = False
    #: Fingerprint cache (see above); not part of the match's identity.
    _fingerprint: Optional[Fingerprint] = field(
        default=None, repr=False, compare=False
    )
    _fingerprint_stamp: int = field(default=-1, repr=False, compare=False)
    #: Union version at which this match was last confirmed present in its
    #: rule's applied ledger.  While no union has happened since, the match
    #: is skippable on a single integer compare — no fingerprint, no set
    #: probe.  Maintained by the runner's apply phase.
    skip_stamp: int = field(default=-1, repr=False, compare=False)

    def fingerprint(self, egraph: EGraph) -> Fingerprint:
        """This match projected onto canonical ids (cached per union epoch).

        Binding order follows the substitution's (deterministic) insertion
        order rather than a per-call sort: within one runner run every
        match of a rule is built by the same code path — the compiled
        matcher's variable map or the naive matcher's traversal — so equal
        opportunities always serialize their bindings identically, and the
        ledger never mixes matchers.

        Revalidation is allocation-free: a cached fingerprint is exact as
        long as every id it binds is still its own union-find root (unions
        only ever re-parent roots, so an id that canonicalized to ``r``
        keeps canonicalizing to ``r`` while ``r`` stays a root).  Merges in
        unrelated parts of the graph therefore do not force a recompute.
        """
        uf = egraph._union_find
        fp = self._fingerprint
        if fp is not None:
            stamp = uf.version
            if self._fingerprint_stamp == stamp:
                return fp
            parents = uf.parents
            if parents[fp[0]] == fp[0]:
                for _name, bound in fp[2]:
                    if parents[bound] != bound:
                        break
                else:
                    self._fingerprint_stamp = stamp
                    return fp
        find = uf.find
        fp = (
            find(self.class_id),
            self.reverse,
            tuple((name, find(cid)) for name, cid in self.substitution.items()),
        )
        self._fingerprint = fp
        self._fingerprint_stamp = uf.version
        return fp


class BaseRewrite:
    """Shared search/apply machinery for syntactic and dynamic rewrites."""

    name: str

    #: True when applying a match is a pure function of its *canonical
    #: fingerprint* — re-applying an identical fingerprint can never add
    #: information the first application did not.  The runner's apply-phase
    #: dedup ledger only ever skips matches of deduplicable rules.
    #: Syntactic rewrites qualify (``instantiate`` reads nothing but the
    #: substitution's ids); dynamic rewrites whose applier inspects class
    #: *contents* do not, because a class can gain e-nodes without its id
    #: changing.  Conservative default: off.
    deduplicable = False

    def search(self, egraph: EGraph) -> List[RewriteMatch]:
        raise NotImplementedError

    def apply_match(self, egraph: EGraph, match: RewriteMatch) -> bool:
        """Apply to one match; returns True when the e-graph changed."""
        return self.apply_match_checked(egraph, match)[0]

    def apply_match_checked(self, egraph: EGraph, match: RewriteMatch) -> Tuple[bool, bool]:
        """Apply to one match; returns ``(changed, executed)``.

        ``changed`` is :meth:`apply_match`'s value (the e-graph changed);
        ``executed`` is True when the rewrite actually ran — i.e. it was not
        turned away by a guard.  Only executed matches may enter the dedup
        ledger: a guard-rejected match must be re-examined next epoch
        because guards read mutable e-graph state.
        """
        raise NotImplementedError

    def run(self, egraph: EGraph) -> int:
        """Search then apply everywhere; returns the number of effective firings."""
        matches = self.search(egraph)
        fired = 0
        for match in matches:
            if self.apply_match(egraph, match):
                fired += 1
        return fired


@dataclass
class Rewrite(BaseRewrite):
    """A guarded syntactic rewrite ``lhs { rhs``."""

    name: str
    lhs: Pattern
    rhs: Pattern
    guard: Optional[Guard] = None
    #: Bidirectional rules also add lhs when rhs matches; the boolean-operator
    #: associativity rules are bidirectional in spirit but we keep them
    #: one-directional by default to bound growth.
    bidirectional: bool = False

    # Instantiating a pattern reads nothing but the substitution's class
    # ids, so re-applying an identical canonical fingerprint is always a
    # semantic no-op (the instantiated class hashconses onto the one the
    # first application built and the merge is already in effect).
    deduplicable = True

    def search(self, egraph: EGraph) -> List[RewriteMatch]:
        matches = [RewriteMatch(cid, sub) for cid, sub in search(egraph, self.lhs)]
        if self.bidirectional:
            # A reverse match can only fire if the rhs bound every variable
            # the lhs needs; rules that drop variables left-to-right are
            # simply one-directional for those matches.
            needed = set(self.lhs.variables())
            matches.extend(
                RewriteMatch(cid, sub, reverse=True)
                for cid, sub in search(egraph, self.rhs)
                if needed <= sub.keys()
            )
        return matches

    def apply_match_checked(self, egraph: EGraph, match: RewriteMatch) -> Tuple[bool, bool]:
        if self.guard is not None and not self.guard(egraph, match.class_id, match.substitution):
            return False, False
        before = egraph.version
        target = self.lhs if match.reverse else self.rhs
        new_id = instantiate(egraph, target, match.substitution)
        egraph.merge(match.class_id, new_id)
        return egraph.version != before, True

    def __str__(self) -> str:
        return f"{self.name}: {self.lhs} => {self.rhs}"


@dataclass
class DynamicRewrite(BaseRewrite):
    """A rewrite whose right-hand side is computed by an applier function.

    ``pure`` declares that a *successful* applier outcome is a stable
    function of the canonical ids the match binds: once the applier
    returned a class for a given canonical substitution, re-running it can
    only ever reproduce the same (already merged) equivalence.  The affine
    arithmetic rules qualify — they read the numeric *values* of bound
    literal classes, which sound merges never change.  Rules whose applier
    enumerates class *structure* (the chain-folding rule walks whatever
    ``Union`` e-nodes currently exist) are impure: a later epoch can
    genuinely produce a new result for an already-seen match, so they never
    enter the dedup ledger.  (``None`` outcomes are always re-examined,
    pure or not — see :meth:`apply_match_checked`.)  The default (impure)
    is always safe.

    ``content_key`` is the middle ground for impure rules: a function
    ``(egraph, class_id, substitution) -> hashable`` that captures
    *everything* the guard and applier read beyond the canonical ids — for
    the chain-folding rule, the walked list's class contents.  The runner
    then keeps a ``fingerprint -> content`` ledger and skips a match only
    while its content key is unchanged, so *any* outcome (including
    ``None``) may be ledgered: if re-running could differ, the key differs.
    The contract is strict — a key that misses one applier-visible input
    turns skipped epochs into missed rewrites.
    """

    name: str
    lhs: Pattern
    applier: Applier
    guard: Optional[Guard] = None
    pure: bool = False
    #: See the class docstring; ``(egraph, class_id, substitution) -> hashable``.
    content_key: Optional[Callable[[EGraph, int, Substitution], object]] = None

    @property
    def deduplicable(self) -> bool:
        return self.pure or self.content_key is not None

    def search(self, egraph: EGraph) -> List[RewriteMatch]:
        return [RewriteMatch(cid, sub) for cid, sub in search(egraph, self.lhs)]

    def apply_match_checked(self, egraph: EGraph, match: RewriteMatch) -> Tuple[bool, bool]:
        if self.guard is not None and not self.guard(egraph, match.class_id, match.substitution):
            return False, False
        before = egraph.version
        new_id = self.applier(egraph, match.class_id, match.substitution)
        if new_id is None:
            # Not ``executed`` for ledger purposes even when ``pure``: a
            # None outcome can flip once a *bound class* gains the e-node
            # the applier was looking for (its id never changes), so the
            # match must be re-examined every epoch, exactly like a
            # guard rejection.
            return False, False
        egraph.merge(match.class_id, new_id)
        return egraph.version != before, True

    def __str__(self) -> str:
        return f"{self.name}: {self.lhs} => <dynamic>"


def rewrite(
    name: str,
    lhs: str,
    rhs: str,
    *,
    guard: Optional[Guard] = None,
    bidirectional: bool = False,
) -> Rewrite:
    """Construct a syntactic rewrite from s-expression pattern text.

    Example::

        rewrite("lift-translate-union",
                "(Union (Translate ?x ?y ?z ?a) (Translate ?x ?y ?z ?b))",
                "(Translate ?x ?y ?z (Union ?a ?b))")
    """
    return Rewrite(
        name=name,
        lhs=parse_pattern(lhs),
        rhs=parse_pattern(rhs),
        guard=guard,
        bidirectional=bidirectional,
    )


def dynamic_rewrite(
    name: str,
    lhs: str,
    applier: Applier,
    *,
    guard: Optional[Guard] = None,
    pure: bool = False,
    content_key: Optional[Callable[[EGraph, int, Substitution], object]] = None,
) -> DynamicRewrite:
    """Construct a dynamic rewrite from s-expression pattern text and an applier.

    Pass ``pure=True`` only when the applier's outcome depends solely on the
    canonical ids bound by the match; pass ``content_key`` for an impure
    rule whose extra inputs can be fingerprinted (see
    :class:`DynamicRewrite`).
    """
    return DynamicRewrite(
        name=name,
        lhs=parse_pattern(lhs),
        applier=applier,
        guard=guard,
        pure=pure,
        content_key=content_key,
    )
