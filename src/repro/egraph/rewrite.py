"""Rewrite rules over e-graphs.

A rewrite ``lhs { rhs`` searches the e-graph for matches of ``lhs`` and, for
every match, adds the instantiation of ``rhs`` and merges it into the matched
e-class (paper Section 3.1).  Because the e-graph is non-destructive, both the
old and the new expressions remain available, which is what mitigates phase
ordering.

Two flavours are provided:

* :class:`Rewrite` — purely syntactic ``Pattern -> Pattern`` rules, optionally
  guarded by a predicate over the substitution (used, e.g., to require that
  two matched vectors are numerically equal within epsilon, or that a scale
  factor is non-zero before dividing); bidirectional rules additionally
  search the rhs and tag those matches ``reverse`` so the apply phase
  instantiates the lhs for them;
* :class:`DynamicRewrite` — pattern on the left, arbitrary *applier* function
  on the right.  The applier receives the e-graph, the matched class, and the
  substitution and returns the id of a class to merge with (or ``None``).
  The affine reordering/collapsing rules that must *compute* new vectors
  (Fig. 8b/8c) are dynamic rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.egraph.egraph import EGraph
from repro.egraph.pattern import Pattern, Substitution, instantiate, parse_pattern, search

#: A guard receives (egraph, eclass id, substitution) and says whether to fire.
Guard = Callable[[EGraph, int, Substitution], bool]

#: An applier receives (egraph, eclass id, substitution) and returns the id of
#: the newly constructed equivalent class, or None to skip.
Applier = Callable[[EGraph, int, Substitution], Optional[int]]


@dataclass
class RewriteMatch:
    """One firing opportunity discovered during the search phase.

    ``reverse`` marks matches found by searching the *right-hand* side of a
    bidirectional rule; applying such a match must instantiate the left-hand
    side (instantiating the rhs again would merge the matched class with
    itself, a silent no-op — the bug this flag fixes).
    """

    class_id: int
    substitution: Substitution
    reverse: bool = False


class BaseRewrite:
    """Shared search/apply machinery for syntactic and dynamic rewrites."""

    name: str

    def search(self, egraph: EGraph) -> List[RewriteMatch]:
        raise NotImplementedError

    def apply_match(self, egraph: EGraph, match: RewriteMatch) -> bool:
        """Apply to one match; returns True when the e-graph changed."""
        raise NotImplementedError

    def run(self, egraph: EGraph) -> int:
        """Search then apply everywhere; returns the number of effective firings."""
        matches = self.search(egraph)
        fired = 0
        for match in matches:
            if self.apply_match(egraph, match):
                fired += 1
        return fired


@dataclass
class Rewrite(BaseRewrite):
    """A guarded syntactic rewrite ``lhs { rhs``."""

    name: str
    lhs: Pattern
    rhs: Pattern
    guard: Optional[Guard] = None
    #: Bidirectional rules also add lhs when rhs matches; the boolean-operator
    #: associativity rules are bidirectional in spirit but we keep them
    #: one-directional by default to bound growth.
    bidirectional: bool = False

    def search(self, egraph: EGraph) -> List[RewriteMatch]:
        matches = [RewriteMatch(cid, sub) for cid, sub in search(egraph, self.lhs)]
        if self.bidirectional:
            # A reverse match can only fire if the rhs bound every variable
            # the lhs needs; rules that drop variables left-to-right are
            # simply one-directional for those matches.
            needed = set(self.lhs.variables())
            matches.extend(
                RewriteMatch(cid, sub, reverse=True)
                for cid, sub in search(egraph, self.rhs)
                if needed <= sub.keys()
            )
        return matches

    def apply_match(self, egraph: EGraph, match: RewriteMatch) -> bool:
        if self.guard is not None and not self.guard(egraph, match.class_id, match.substitution):
            return False
        before = egraph.version
        target = self.lhs if match.reverse else self.rhs
        new_id = instantiate(egraph, target, match.substitution)
        egraph.merge(match.class_id, new_id)
        return egraph.version != before

    def __str__(self) -> str:
        return f"{self.name}: {self.lhs} => {self.rhs}"


@dataclass
class DynamicRewrite(BaseRewrite):
    """A rewrite whose right-hand side is computed by an applier function."""

    name: str
    lhs: Pattern
    applier: Applier
    guard: Optional[Guard] = None

    def search(self, egraph: EGraph) -> List[RewriteMatch]:
        return [RewriteMatch(cid, sub) for cid, sub in search(egraph, self.lhs)]

    def apply_match(self, egraph: EGraph, match: RewriteMatch) -> bool:
        if self.guard is not None and not self.guard(egraph, match.class_id, match.substitution):
            return False
        before = egraph.version
        new_id = self.applier(egraph, match.class_id, match.substitution)
        if new_id is None:
            return False
        egraph.merge(match.class_id, new_id)
        return egraph.version != before

    def __str__(self) -> str:
        return f"{self.name}: {self.lhs} => <dynamic>"


def rewrite(
    name: str,
    lhs: str,
    rhs: str,
    *,
    guard: Optional[Guard] = None,
    bidirectional: bool = False,
) -> Rewrite:
    """Construct a syntactic rewrite from s-expression pattern text.

    Example::

        rewrite("lift-translate-union",
                "(Union (Translate ?x ?y ?z ?a) (Translate ?x ?y ?z ?b))",
                "(Translate ?x ?y ?z (Union ?a ?b))")
    """
    return Rewrite(
        name=name,
        lhs=parse_pattern(lhs),
        rhs=parse_pattern(rhs),
        guard=guard,
        bidirectional=bidirectional,
    )


def dynamic_rewrite(
    name: str, lhs: str, applier: Applier, *, guard: Optional[Guard] = None
) -> DynamicRewrite:
    """Construct a dynamic rewrite from s-expression pattern text and an applier."""
    return DynamicRewrite(name=name, lhs=parse_pattern(lhs), applier=applier, guard=guard)
