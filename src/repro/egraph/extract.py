"""Extraction of (top-k) best terms from an e-graph.

After saturation, every e-class represents many equivalent programs; a cost
function picks which ones to return.  The paper's default cost is the number
of AST nodes; the alternative ``reward-loops`` cost discounts ``Mapi`` nodes
(Section 6.1, "Cost function robustness").  Because there is no single right
parameterization, Szalinski returns the top-k programs (Section 5.1) so the
user can choose.

Single-best extraction is the standard fixpoint dynamic program over
e-classes.  Top-k extraction generalizes it: each e-class keeps a bounded
list of its k cheapest *distinct* terms, and candidates for an e-node are
formed by combining the children's lists (bounded cube-style so the work
stays proportional to k).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.egraph.egraph import EGraph, ENode
from repro.lang.term import Term

#: A cost function maps (operator, children costs) to a cost.
CostFunction = Callable[[object, Sequence[float]], float]


def ast_size_cost(op: object, child_costs: Sequence[float]) -> float:
    """The paper's default cost: one per AST node."""
    return 1.0 + sum(child_costs)


class ExtractionError(RuntimeError):
    """Raised when no finite-cost term exists for the requested e-class."""


class Extractor:
    """Single-best extraction by fixpoint over e-classes."""

    def __init__(self, egraph: EGraph, cost_function: CostFunction = ast_size_cost):
        self.egraph = egraph
        self.cost_function = cost_function
        self._best: Dict[int, Tuple[float, ENode]] = {}
        self._compute()

    def _compute(self) -> None:
        """Iterate to a fixpoint assigning each class its cheapest e-node."""
        changed = True
        while changed:
            changed = False
            for eclass in self.egraph.classes():
                class_id = self.egraph.find(eclass.id)
                for enode in eclass.nodes:
                    cost = self._enode_cost(enode)
                    if cost is None:
                        continue
                    current = self._best.get(class_id)
                    if current is None or cost < current[0]:
                        self._best[class_id] = (cost, enode)
                        changed = True

    def _enode_cost(self, enode: ENode) -> Optional[float]:
        child_costs = []
        for arg in enode.args:
            entry = self._best.get(self.egraph.find(arg))
            if entry is None:
                return None
            child_costs.append(entry[0])
        return self.cost_function(enode.op, child_costs)

    def cost_of(self, class_id: int) -> float:
        """The cost of the best term for ``class_id``."""
        entry = self._best.get(self.egraph.find(class_id))
        if entry is None:
            raise ExtractionError(f"no extractable term for e-class {class_id}")
        return entry[0]

    def extract(self, class_id: int) -> Term:
        """The cheapest term represented by ``class_id``."""
        class_id = self.egraph.find(class_id)
        entry = self._best.get(class_id)
        if entry is None:
            raise ExtractionError(f"no extractable term for e-class {class_id}")
        _, enode = entry
        return Term(enode.op, tuple(self.extract(arg) for arg in enode.args))


@dataclass(frozen=True)
class RankedTerm:
    """A term together with its cost (and its rank after sorting)."""

    cost: float
    term: Term


class TopKExtractor:
    """Extraction of the k cheapest distinct terms per e-class."""

    def __init__(
        self,
        egraph: EGraph,
        cost_function: CostFunction = ast_size_cost,
        k: int = 5,
        max_rounds: int = 1000,
        roots: Optional[Sequence[int]] = None,
    ):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.egraph = egraph
        self.cost_function = cost_function
        self.k = k
        self.max_rounds = max_rounds
        self._table: Dict[int, List[RankedTerm]] = {}
        self._restrict = self._reachable(roots) if roots is not None else None
        self._compute()

    def _reachable(self, roots: Sequence[int]) -> set:
        """E-classes reachable from the roots (the only ones worth ranking)."""
        seen = set()
        stack = [self.egraph.find(r) for r in roots]
        while stack:
            class_id = stack.pop()
            if class_id in seen:
                continue
            seen.add(class_id)
            for enode in self.egraph.nodes(class_id):
                for arg in enode.args:
                    arg = self.egraph.find(arg)
                    if arg not in seen:
                        stack.append(arg)
        return seen

    # -- fixpoint ---------------------------------------------------------------

    def _compute(self) -> None:
        for _ in range(self.max_rounds):
            changed = False
            for eclass in self.egraph.classes():
                class_id = self.egraph.find(eclass.id)
                if self._restrict is not None and class_id not in self._restrict:
                    continue
                candidates: Dict[Term, float] = {
                    entry.term: entry.cost for entry in self._table.get(class_id, [])
                }
                for enode in eclass.nodes:
                    for cost, term in self._enode_candidates(enode):
                        previous = candidates.get(term)
                        if previous is None or cost < previous:
                            candidates[term] = cost
                # Ties are broken by insertion order (deterministic for a
                # given run); rendering terms for tie-breaking would dominate
                # extraction time on large models.
                ranked = sorted(
                    (RankedTerm(cost, term) for term, cost in candidates.items()),
                    key=lambda r: r.cost,
                )[: self.k]
                if ranked != self._table.get(class_id, []):
                    self._table[class_id] = ranked
                    changed = True
            if not changed:
                break

    def _enode_candidates(self, enode: ENode) -> List[Tuple[float, Term]]:
        """Candidate terms for one e-node from its children's current top-k."""
        if not enode.args:
            return [(self.cost_function(enode.op, ()), Term(enode.op))]
        child_lists = []
        for arg in enode.args:
            entries = self._table.get(self.egraph.find(arg))
            if not entries:
                return []
            child_lists.append(entries)
        # Bounded combination: explore child choices whose index sum is small,
        # which covers the k cheapest combinations without a full product.
        candidates: List[Tuple[float, Term]] = []
        index_choices = self._bounded_index_tuples([len(c) for c in child_lists])
        for indices in index_choices:
            chosen = [child_lists[i][j] for i, j in enumerate(indices)]
            cost = self.cost_function(enode.op, [c.cost for c in chosen])
            term = Term(enode.op, tuple(c.term for c in chosen))
            candidates.append((cost, term))
        return candidates

    def _bounded_index_tuples(self, lengths: List[int]) -> List[Tuple[int, ...]]:
        """Index tuples with a bounded index sum (cube-pruning style)."""
        budget = self.k - 1
        results: List[Tuple[int, ...]] = []

        def go(position: int, remaining: int, prefix: Tuple[int, ...]) -> None:
            if position == len(lengths):
                results.append(prefix)
                return
            limit = min(lengths[position] - 1, remaining)
            for index in range(limit + 1):
                go(position + 1, remaining - index, prefix + (index,))

        go(0, budget, ())
        return results

    # -- queries -----------------------------------------------------------------

    def extract_top_k(self, class_id: int) -> List[RankedTerm]:
        """The k cheapest distinct terms of ``class_id``, best first."""
        entries = self._table.get(self.egraph.find(class_id))
        if not entries:
            raise ExtractionError(f"no extractable term for e-class {class_id}")
        return list(entries)

    def best(self, class_id: int) -> RankedTerm:
        """The single cheapest entry for ``class_id``."""
        return self.extract_top_k(class_id)[0]

    def best_per_enode(self, class_id: int) -> List[RankedTerm]:
        """The cheapest term rooted at each distinct e-node of ``class_id``.

        Whereas :meth:`extract_top_k` returns the k globally cheapest terms
        (which for CAD models are often near-identical affine reorderings of
        one another), this query returns one representative per alternative
        the e-class actually offers at its root — e.g. the original boolean
        chain, the affine-lifted variant, and the ``Fold``-based structured
        variant each contribute their own candidate.  The pipeline combines
        both views to build a useful top-k (see ``repro.core.pipeline``).
        """
        class_id = self.egraph.find(class_id)
        results: List[RankedTerm] = []
        seen = set()
        for enode in self.egraph.nodes(class_id):
            child_entries = []
            missing = False
            for arg in enode.args:
                entries = self._table.get(self.egraph.find(arg))
                if not entries:
                    missing = True
                    break
                child_entries.append(entries[0])
            if missing:
                continue
            cost = self.cost_function(enode.op, [c.cost for c in child_entries])
            term = Term(enode.op, tuple(c.term for c in child_entries))
            if term in seen:
                continue
            seen.add(term)
            results.append(RankedTerm(cost, term))
        results.sort(key=lambda entry: entry.cost)
        return results
