"""Extraction of (top-k) best terms from an e-graph.

After saturation, every e-class represents many equivalent programs; a cost
function picks which ones to return.  The paper's default cost is the number
of AST nodes; the alternative ``reward-loops`` cost discounts ``Mapi`` nodes
(Section 6.1, "Cost function robustness").  Because there is no single right
parameterization, Szalinski returns the top-k programs (Section 5.1) so the
user can choose.

Both extractors are *worklist* algorithms driven by the e-graph's parent
pointers rather than whole-graph fixpoints:

* :class:`Extractor` (single best) seeds every leaf e-node and propagates
  cost improvements upward through :meth:`EGraph.parent_enodes`; each
  e-class is re-examined only when one of its children actually improved,
  so the work is proportional to the number of cost changes instead of
  ``O(passes x classes x nodes)``.
* :class:`TopKExtractor` keeps, per e-class, a bounded *candidate table* of
  ``(cost, e-node, child ranks)`` triples — a DAG representation that never
  materializes :class:`~repro.lang.term.Term` objects inside the fixpoint.
  Candidates for an e-node are formed by combining the children's tables
  cube-pruning style (bounded index sums), and concrete terms are built
  lazily, memoized per ``(class, rank)``, only when a query asks for them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.egraph.egraph import EGraph, ENode
from repro.lang.term import Term

#: A cost function maps (operator, children costs) to a cost.
CostFunction = Callable[[object, Sequence[float]], float]


def ast_size_cost(op: object, child_costs: Sequence[float]) -> float:
    """The paper's default cost: one per AST node."""
    return 1.0 + sum(child_costs)


class ExtractionError(RuntimeError):
    """Raised when no finite-cost term exists for the requested e-class."""


class Extractor:
    """Single-best extraction via a parent-driven worklist.

    Leaves are seeded with their intrinsic cost; whenever an e-class's best
    cost improves, every parent e-node (via :meth:`EGraph.parent_enodes`) is
    re-costed and its owning class updated.  Costs are bounded below and
    strictly decrease on every update; directly self-referential e-nodes
    that would undercut their own class's best (possible only for
    non-monotone costs like ``reward-loops``) are rejected so the common
    self-loop case stays well-founded.  Indirect cycles that undercut every
    realizable term — constructible with a non-monotone cost and mutually
    recursive classes — cannot be excluded locally; :meth:`extract` detects
    them and raises :class:`ExtractionError` instead of recursing forever
    (see ROADMAP for the lazy-k-best alternative that would rank only
    realizable derivations).
    """

    def __init__(self, egraph: EGraph, cost_function: CostFunction = ast_size_cost):
        self.egraph = egraph
        self.cost_function = cost_function
        self._best: Dict[int, Tuple[float, ENode]] = {}
        self._compute()

    def _compute(self) -> None:
        find = self.egraph.find
        worklist: deque = deque()
        queued: Set[int] = set()

        def update(class_id: int, cost: float, enode: ENode) -> None:
            current = self._best.get(class_id)
            if current is None or cost < current[0]:
                self._best[class_id] = (cost, enode)
                if class_id not in queued:
                    queued.add(class_id)
                    worklist.append(class_id)

        # Seed: every leaf e-node gives its class a first (finite) cost.
        for eclass in self.egraph.classes():
            class_id = find(eclass.id)
            for enode in eclass.nodes:
                if not enode.args:
                    update(class_id, self.cost_function(enode.op, ()), enode)

        # Propagate improvements to parents until no class changes.
        while worklist:
            class_id = worklist.popleft()
            queued.discard(class_id)
            for parent_node, parent_id in self.egraph.parent_enodes(class_id):
                cost = self._enode_cost(parent_node, owner=parent_id)
                if cost is not None:
                    update(parent_id, cost, parent_node)

    def _enode_cost(self, enode: ENode, owner: Optional[int] = None) -> Optional[float]:
        child_classes = [self.egraph.find(arg) for arg in enode.args]
        child_costs = []
        for child in child_classes:
            entry = self._best.get(child)
            if entry is None:
                return None
            child_costs.append(entry[0])
        cost = self.cost_function(enode.op, child_costs)
        # Well-foundedness guard (see class docstring): a self-referential
        # e-node may only win if it costs strictly more than the entry it
        # feeds on — otherwise extract() would recurse into itself.
        if owner is not None and any(
            child == owner and cost <= child_cost
            for child, child_cost in zip(child_classes, child_costs)
        ):
            return None
        return cost

    def cost_of(self, class_id: int) -> float:
        """The cost of the best term for ``class_id``."""
        entry = self._best.get(self.egraph.find(class_id))
        if entry is None:
            raise ExtractionError(f"no extractable term for e-class {class_id}")
        return entry[0]

    def extract(self, class_id: int) -> Term:
        """The cheapest term represented by ``class_id``."""
        return self._extract(class_id, set())

    def _extract(self, class_id: int, path: Set[int]) -> Term:
        class_id = self.egraph.find(class_id)
        entry = self._best.get(class_id)
        if entry is None:
            raise ExtractionError(f"no extractable term for e-class {class_id}")
        if class_id in path:
            raise ExtractionError(
                f"cyclic best derivation for e-class {class_id}: the cost "
                "function is non-monotone and an equivalence cycle undercuts "
                "every realizable term"
            )
        path.add(class_id)
        try:
            _, enode = entry
            return Term(enode.op, tuple(self._extract(arg, path) for arg in enode.args))
        finally:
            path.discard(class_id)


@dataclass(frozen=True, slots=True)
class RankedTerm:
    """A term together with its cost (and its rank after sorting)."""

    cost: float
    term: Term


#: One top-k table entry: (cost, root e-node, chosen rank per child).
_Candidate = Tuple[float, ENode, Tuple[int, ...]]


class TopKExtractor:
    """Extraction of the k cheapest distinct terms per e-class.

    The fixpoint operates entirely on the DAG-level candidate table; see the
    module docstring.  ``max_rounds`` bounds how many times any single
    e-class may be recomputed (a safety valve for non-monotone cost
    functions, mirroring the round limit of the old whole-graph fixpoint).
    """

    def __init__(
        self,
        egraph: EGraph,
        cost_function: CostFunction = ast_size_cost,
        k: int = 5,
        max_rounds: int = 1000,
        roots: Optional[Sequence[int]] = None,
    ):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.egraph = egraph
        self.cost_function = cost_function
        self.k = k
        self.max_rounds = max_rounds
        self._entries: Dict[int, List[_Candidate]] = {}
        self._term_memo: Dict[Tuple[int, int], Optional[RankedTerm]] = {}
        self._restrict = self._reachable(roots) if roots is not None else None
        self._compute()

    def _reachable(self, roots: Sequence[int]) -> set:
        """E-classes reachable from the roots (the only ones worth ranking)."""
        seen = set()
        stack = [self.egraph.find(r) for r in roots]
        while stack:
            class_id = stack.pop()
            if class_id in seen:
                continue
            seen.add(class_id)
            for enode in self.egraph.nodes(class_id):
                for arg in enode.args:
                    arg = self.egraph.find(arg)
                    if arg not in seen:
                        stack.append(arg)
        return seen

    # -- fixpoint ---------------------------------------------------------------

    def _compute(self) -> None:
        find = self.egraph.find
        if self._restrict is not None:
            class_ids = list(self._restrict)
        else:
            class_ids = [find(eclass.id) for eclass in self.egraph.classes()]

        worklist: deque = deque(class_ids)
        queued: Set[int] = set(class_ids)
        recomputes: Dict[int, int] = {}

        while worklist:
            class_id = worklist.popleft()
            queued.discard(class_id)
            rounds = recomputes.get(class_id, 0)
            if rounds >= self.max_rounds:
                continue
            recomputes[class_id] = rounds + 1
            fresh = self._class_candidates(class_id)
            if fresh == self._entries.get(class_id, []):
                continue
            self._entries[class_id] = fresh
            for _parent_node, parent_id in self.egraph.parent_enodes(class_id):
                if self._restrict is not None and parent_id not in self._restrict:
                    continue
                if parent_id not in queued:
                    queued.add(parent_id)
                    worklist.append(parent_id)

    def _class_candidates(self, class_id: int) -> List[_Candidate]:
        """The k cheapest candidates derivable from current child tables."""
        candidates: Dict[Tuple[ENode, Tuple[int, ...]], float] = {}
        for enode in self.egraph.nodes(class_id):
            for cost, node, indices in self._enode_candidates(enode, class_id):
                key = (node, indices)
                previous = candidates.get(key)
                if previous is None or cost < previous:
                    candidates[key] = cost
        # Ties are broken by insertion order (deterministic for a given run).
        ranked = sorted(
            ((cost, node, indices) for (node, indices), cost in candidates.items()),
            key=lambda entry: entry[0],
        )
        return ranked[: self.k]

    def _enode_candidates(self, enode: ENode, class_id: int) -> List[_Candidate]:
        """Candidate entries for one e-node from its children's tables."""
        if not enode.args:
            return [(self.cost_function(enode.op, ()), enode, ())]
        child_classes = [self.egraph.find(arg) for arg in enode.args]
        child_tables = []
        for child in child_classes:
            entries = self._entries.get(child)
            if not entries:
                return []
            child_tables.append(entries)
        # Bounded combination: explore child choices whose index sum is small,
        # which covers the k cheapest combinations without a full product.
        results: List[_Candidate] = []
        for indices in self._bounded_index_tuples([len(t) for t in child_tables]):
            child_costs = [child_tables[i][j][0] for i, j in enumerate(indices)]
            cost = self.cost_function(enode.op, child_costs)
            # Well-foundedness guard: a candidate that refers back to its own
            # class while costing no more than the entry it refers to (only
            # possible for non-monotone costs like reward-loops' discount)
            # would displace every realizable term with an unmaterializable
            # self-loop; drop it.  Self-references that cost strictly more
            # than their referent sort after it and stay materializable.
            if any(
                child == class_id and cost <= child_costs[i]
                for i, child in enumerate(child_classes)
            ):
                continue
            results.append((cost, enode, indices))
        return results

    def _bounded_index_tuples(self, lengths: List[int]) -> List[Tuple[int, ...]]:
        """Index tuples with a bounded index sum (cube-pruning style)."""
        budget = self.k - 1
        results: List[Tuple[int, ...]] = []

        def go(position: int, remaining: int, prefix: Tuple[int, ...]) -> None:
            if position == len(lengths):
                results.append(prefix)
                return
            limit = min(lengths[position] - 1, remaining)
            for index in range(limit + 1):
                go(position + 1, remaining - index, prefix + (index,))

        go(0, budget, ())
        return results

    # -- term materialization -----------------------------------------------------

    def _term_at(
        self, class_id: int, rank: int, in_progress: Set[Tuple[int, int]]
    ) -> Optional[RankedTerm]:
        """Materialize the term for one table entry, memoized per (class, rank).

        Returns None for out-of-range ranks and for self-referential entries
        (a candidate whose derivation would revisit itself — possible only
        for cost functions where a node can be cheaper than its child).
        """
        class_id = self.egraph.find(class_id)
        key = (class_id, rank)
        if key in self._term_memo:
            return self._term_memo[key]
        if key in in_progress:
            return None
        entries = self._entries.get(class_id)
        if not entries or rank >= len(entries):
            return None
        cost, enode, indices = entries[rank]
        in_progress.add(key)
        try:
            children = []
            for arg, child_rank in zip(enode.args, indices):
                child = self._term_at(arg, child_rank, in_progress)
                if child is None:
                    self._term_memo[key] = None
                    return None
                children.append(child.term)
        finally:
            in_progress.discard(key)
        ranked = RankedTerm(cost, Term(enode.op, tuple(children)))
        self._term_memo[key] = ranked
        return ranked

    def _materialized(self, class_id: int) -> List[RankedTerm]:
        """All table entries of a class as concrete terms, distinct, best first."""
        class_id = self.egraph.find(class_id)
        results: List[RankedTerm] = []
        seen: Set[Term] = set()
        for rank in range(len(self._entries.get(class_id, []))):
            entry = self._term_at(class_id, rank, set())
            if entry is None or entry.term in seen:
                continue
            seen.add(entry.term)
            results.append(entry)
        return results

    # -- queries -----------------------------------------------------------------

    def extract_top_k(self, class_id: int) -> List[RankedTerm]:
        """The k cheapest distinct terms of ``class_id``, best first."""
        entries = self._materialized(class_id)
        if not entries:
            if self._entries.get(self.egraph.find(class_id)):
                raise ExtractionError(
                    f"only cyclic candidates for e-class {class_id}: the cost "
                    "function is non-monotone and an equivalence cycle "
                    "undercuts every realizable term"
                )
            raise ExtractionError(f"no extractable term for e-class {class_id}")
        return entries[: self.k]

    def best(self, class_id: int) -> RankedTerm:
        """The single cheapest entry for ``class_id``."""
        return self.extract_top_k(class_id)[0]

    def best_per_enode(self, class_id: int) -> List[RankedTerm]:
        """The cheapest term rooted at each distinct e-node of ``class_id``.

        Whereas :meth:`extract_top_k` returns the k globally cheapest terms
        (which for CAD models are often near-identical affine reorderings of
        one another), this query returns one representative per alternative
        the e-class actually offers at its root — e.g. the original boolean
        chain, the affine-lifted variant, and the ``Fold``-based structured
        variant each contribute their own candidate.  The pipeline combines
        both views to build a useful top-k (see ``repro.core.pipeline``).
        """
        class_id = self.egraph.find(class_id)
        results: List[RankedTerm] = []
        seen = set()
        for enode in self.egraph.nodes(class_id):
            child_entries = []
            missing = False
            for arg in enode.args:
                child = self._term_at(self.egraph.find(arg), 0, set())
                if child is None:
                    missing = True
                    break
                child_entries.append(child)
            if missing:
                continue
            cost = self.cost_function(enode.op, [c.cost for c in child_entries])
            term = Term(enode.op, tuple(c.term for c in child_entries))
            if term in seen:
                continue
            seen.add(term)
            results.append(RankedTerm(cost, term))
        results.sort(key=lambda entry: entry.cost)
        return results
