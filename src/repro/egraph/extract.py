"""Extraction of (top-k) best terms from an e-graph.

After saturation, every e-class represents many equivalent programs; a cost
function picks which ones to return.  The paper's default cost is the number
of AST nodes; the alternative ``reward-loops`` cost discounts loop
combinators (Section 6.1, "Cost function robustness").  Because there is no
single right parameterization, Szalinski returns the top-k programs
(Section 5.1) so the user can choose.

The stack has two layers:

* :class:`CostAnalysis` — an e-class :class:`~repro.egraph.egraph.Analysis`
  holding ``(best cost, witness e-node)`` per class, maintained
  *incrementally* through ``add_enode``/``merge``/``rebuild``.  When the
  runner registers it, post-saturation single-best extraction degenerates to
  an O(answer) walk over the witnesses (:class:`Extractor` reuses the data
  instead of recomputing a fixpoint).
* :class:`TopKExtractor` — **lazy k-best candidate heaps** per e-class
  (Eppstein-style, as in Huang & Chiang's lazy k-best parsing), generalized
  to cyclic e-graphs: only *realizable* derivations are enumerated, in cost
  order.  "Realizable" here means **acyclic**: a derivation may not revisit
  an e-class on any root-to-leaf path — the standard e-graph extraction
  semantics, under which the derivation space is finite and best costs are
  well-defined.  (A discount cost over an equivalence cycle can denote
  finite unfoldings of unboundedly decreasing cost with an unattained
  infimum — ``Mapi(Mapi(...))`` towers under ``reward-loops`` — so
  *cheapest represented term* is not even well-defined there; cheapest
  acyclic derivation is, and is what every query below returns.)  The
  path restriction is enforced *by construction*: revisits can only
  happen inside a strongly connected component of the class graph, so each
  candidate stream carries the set of same-SCC ancestor classes it must
  avoid and descends into children with that set extended.  Outside
  non-trivial SCCs the set is always empty and streams are shared
  context-free.  This makes non-monotone costs (``reward-loops``) and
  indirect equivalence cycles *correct* instead of detected-and-rejected —
  an unrealizable cyclic "best" simply never appears in any stream, so no
  well-foundedness guards or cycle errors are needed.

Cost functions must be monotone in their child costs (nondecreasing in each
argument — both bundled functions are strictly increasing), which is what
keeps each stream's emissions sorted.  They need *not* satisfy
``f(...) >= max(child costs)``: a discounted parent cheaper than its child
is exactly the ``reward-loops`` case the lazy heaps exist for.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.egraph.egraph import Analysis, EGraph, ENode
from repro.lang.term import Term

#: A cost function maps (operator, children costs) to a cost.
CostFunction = Callable[[object, Sequence[float]], float]


def ast_size_cost(op: object, child_costs: Sequence[float]) -> float:
    """The paper's default cost: one per AST node."""
    return 1.0 + sum(child_costs)


class ExtractionError(RuntimeError):
    """Raised when no realizable term exists for the requested e-class."""


@dataclass(frozen=True, slots=True)
class RankedTerm:
    """A term together with its cost (and its rank after sorting)."""

    cost: float
    term: Term


# ---------------------------------------------------------------------------
# The cost analysis (incremental best cost + witness per e-class)
# ---------------------------------------------------------------------------


class CostAnalysis(Analysis):
    """Per-class ``(best cost, witness e-node)`` under a cost function.

    ``make`` prices an e-node from its children's best costs; ``merge`` keeps
    the cheaper side (ties keep the first argument, which is deterministic
    for a given run).  Registered on an e-graph — typically by the runner,
    so it rides along during saturation — it turns post-hoc extraction
    fixpoints into constant-time reads; :class:`Extractor` picks it up
    automatically when its cost function matches.

    The analysis is a pure least-fixpoint: on an equivalence cycle that
    undercuts every realizable term (possible only when a node can be
    cheaper than its child, e.g. ``reward-loops``), the stored cost is a
    *lower bound* whose witness walk revisits a class.  Consumers detect
    that and fall back to the k-best enumeration, which is
    correct-by-construction (see the module docstring).
    """

    def __init__(self, cost_function: CostFunction = ast_size_cost, key: Optional[str] = None):
        self.cost_function = cost_function
        if key is None:
            name = getattr(cost_function, "__name__", hex(id(cost_function)))
            key = f"cost:{name}"
        self.key = key

    def make(self, egraph: EGraph, enode: ENode) -> Optional[Tuple[float, ENode]]:
        child_costs: List[float] = []
        for arg in enode.args:
            data = egraph.analysis_data(arg, self.key)
            if data is None:
                return None
            child_costs.append(data[0])
        return (self.cost_function(enode.op, child_costs), enode)

    def merge(self, a: Tuple[float, ENode], b: Tuple[float, ENode]) -> Tuple[float, ENode]:
        return a if a[0] <= b[0] else b


# ---------------------------------------------------------------------------
# Single-best extraction (analysis view, with a k-best fallback for cycles)
# ---------------------------------------------------------------------------


class _CyclicWitness(Exception):
    """Internal: the analysis witness walk revisited a class."""


class Extractor:
    """Single-best extraction over :class:`CostAnalysis` data.

    When the e-graph already carries a registered, quiescent
    :class:`CostAnalysis` for the *same* cost function, its data is reused
    directly — extraction is then an O(answer) witness walk with no
    per-query fixpoint at all.  Otherwise the same best-cost table is
    computed once here with a parent-driven worklist (seeded at leaves,
    propagating improvements through :meth:`EGraph.parent_enodes`).

    Best costs are least-fixpoint values; if the best witness derivation
    revisits a class (non-monotone cost + equivalence cycle), the query
    falls back to the lazy k-best enumeration and returns the cheapest
    *realizable* term instead — no error path remains for cycles.
    """

    def __init__(self, egraph: EGraph, cost_function: CostFunction = ast_size_cost):
        self.egraph = egraph
        self.cost_function = cost_function
        self._analysis = self._registered_analysis()
        self._best: Optional[Dict[int, Tuple[float, ENode]]] = None
        if self._analysis is None:
            self._best = {}
            self._compute()
        self._term_memo: Dict[int, Term] = {}
        self._resolved: Dict[int, RankedTerm] = {}
        self._kbest: Optional[_KBestEngine] = None

    # -- cost table -------------------------------------------------------------

    def _registered_analysis(self) -> Optional[CostAnalysis]:
        """A reusable registered analysis, or None (compute from scratch).

        Reuse requires the same cost function *and* a quiescent graph —
        with merges or analysis propagation still pending the stored data
        may be stale, so a mid-rebuild caller gets the scratch path.
        """
        if self.egraph._pending or self.egraph._analysis_pending:
            return None
        for analysis in self.egraph.analyses:
            if isinstance(analysis, CostAnalysis) and analysis.cost_function is self.cost_function:
                return analysis
        return None

    def _compute(self) -> None:
        find = self.egraph.find
        worklist: deque = deque()
        queued: Set[int] = set()

        def update(class_id: int, cost: float, enode: ENode) -> None:
            current = self._best.get(class_id)
            if current is None or cost < current[0]:
                self._best[class_id] = (cost, enode)
                if class_id not in queued:
                    queued.add(class_id)
                    worklist.append(class_id)

        # Seed: every leaf e-node gives its class a first (finite) cost.
        # (Leaves are found on the flat representation — one int-length
        # check per node — and decoded only when they actually seed.)
        decode_op = self.egraph.symbols.op
        for eclass in self.egraph.classes():
            class_id = find(eclass.id)
            for node in eclass.flat:
                if len(node) == 1:
                    op = decode_op(node[0])
                    update(class_id, self.cost_function(op, ()), ENode(op))

        # Propagate improvements to parents until no class changes.  On a
        # discount cycle the improvements form a geometric series that
        # reaches its float fixpoint after finitely many strict updates, so
        # the loop terminates without any well-foundedness guard.
        while worklist:
            class_id = worklist.popleft()
            queued.discard(class_id)
            for parent_node, parent_id in self.egraph.parent_enodes(class_id):
                cost = self._enode_cost(parent_node)
                if cost is not None:
                    update(parent_id, cost, parent_node)

    def _enode_cost(self, enode: ENode) -> Optional[float]:
        child_costs = []
        for arg in enode.args:
            entry = self._best.get(self.egraph.find(arg))
            if entry is None:
                return None
            child_costs.append(entry[0])
        return self.cost_function(enode.op, child_costs)

    def _best_entry(self, class_id: int) -> Optional[Tuple[float, ENode]]:
        """The (least-fixpoint cost, witness) pair for a canonical id."""
        if self._analysis is not None:
            return self.egraph.analysis_data(class_id, self._analysis.key)
        return self._best.get(class_id)

    # -- queries ----------------------------------------------------------------

    def cost_of(self, class_id: int) -> float:
        """The cost of ``class_id``'s cheapest acyclic derivation.

        Not a lower bound over every *represented* term: a discount cost
        over an equivalence cycle denotes cyclic-derivation unfoldings that
        can undercut this value (see the module docstring).
        """
        return self._resolve(class_id).cost

    def extract(self, class_id: int) -> Term:
        """The term of ``class_id``'s cheapest acyclic derivation."""
        return self._resolve(class_id).term

    def _resolve(self, class_id: int) -> RankedTerm:
        class_id = self.egraph.find(class_id)
        resolved = self._resolved.get(class_id)
        if resolved is not None:
            return resolved
        entry = self._best_entry(class_id)
        if entry is None:
            raise ExtractionError(f"no extractable term for e-class {class_id}")
        try:
            resolved = RankedTerm(entry[0], self._walk(class_id, set()))
        except _CyclicWitness:
            # The fixpoint best is an unrealizable cycle: enumerate
            # realizable derivations instead (rare; only non-monotone costs
            # over equivalence cycles reach this).
            if self._kbest is None:
                self._kbest = _KBestEngine(self.egraph, self.cost_function)
            best = self._kbest.stream(class_id).get(0)
            if best is None:
                raise ExtractionError(
                    f"no extractable term for e-class {class_id}"
                ) from None
            resolved = best
        self._resolved[class_id] = resolved
        return resolved

    def _walk(self, class_id: int, path: Set[int]) -> Term:
        """Materialize the witness derivation, failing on a class revisit."""
        class_id = self.egraph.find(class_id)
        memoized = self._term_memo.get(class_id)
        if memoized is not None:
            return memoized
        if class_id in path:
            raise _CyclicWitness
        entry = self._best_entry(class_id)
        if entry is None:
            raise ExtractionError(f"no extractable term for e-class {class_id}")
        path.add(class_id)
        try:
            _, enode = entry
            term = Term(enode.op, tuple(self._walk(arg, path) for arg in enode.args))
        finally:
            path.discard(class_id)
        self._term_memo[class_id] = term
        return term


# ---------------------------------------------------------------------------
# Lazy k-best candidate heaps (Eppstein-style, cycle-safe)
# ---------------------------------------------------------------------------


class _Stream:
    """Derivations of one e-class in nondecreasing cost order, lazily.

    ``banned`` is the set of same-SCC ancestor classes this stream's
    derivations must avoid (always empty outside non-trivial SCCs).  The
    frontier heap holds candidates ``(cost, seq, enode index, child
    ranks)``; popping a candidate emits its term and pushes its rank
    successors — the classic lazy k-best step, except that candidates whose
    e-node descends into a banned class never enter the heap, so every
    emission is realizable and acyclic by construction.
    """

    __slots__ = ("engine", "class_id", "banned", "entries", "_nodes", "_heap",
                 "_pushed", "_seen_terms", "_initialized")

    def __init__(self, engine: "_KBestEngine", class_id: int, banned: frozenset):
        self.engine = engine
        self.class_id = class_id
        self.banned = banned
        #: Emitted derivations: distinct terms, nondecreasing cost.
        self.entries: List[RankedTerm] = []
        self._nodes: List[Tuple[ENode, List["_Stream"]]] = []
        self._heap: List[Tuple[float, int, int, Tuple[int, ...]]] = []
        self._pushed: Set[Tuple[int, Tuple[int, ...]]] = set()
        self._seen_terms: Set[Term] = set()
        self._initialized = False

    def _init(self) -> None:
        self._initialized = True
        egraph = self.engine.egraph
        find = egraph.find
        blocked = self.banned | {self.class_id}
        seen_nodes: Set[ENode] = set()
        for enode in egraph.nodes(self.class_id):
            enode = enode.canonicalize(find)
            if enode in seen_nodes:
                continue
            seen_nodes.add(enode)
            if any(find(arg) in blocked for arg in enode.args):
                continue
            children = [self.engine.stream(arg, blocked) for arg in enode.args]
            self._nodes.append((enode, children))
        for index in range(len(self._nodes)):
            self._push(index, (0,) * len(self._nodes[index][1]))

    def _push(self, index: int, ranks: Tuple[int, ...]) -> None:
        key = (index, ranks)
        if key in self._pushed:
            return
        self._pushed.add(key)
        enode, children = self._nodes[index]
        child_costs = []
        for child, rank in zip(children, ranks):
            entry = child.get(rank)
            if entry is None:
                return  # child stream exhausted below this rank
            child_costs.append(entry.cost)
        cost = self.engine.cost_function(enode.op, child_costs)
        heapq.heappush(self._heap, (cost, next(self.engine.seq), index, ranks))

    def get(self, rank: int) -> Optional[RankedTerm]:
        """The ``rank``-th cheapest distinct term, or None past the end."""
        if not self._initialized:
            self._init()
        while len(self.entries) <= rank and self._heap:
            cost, _, index, ranks = heapq.heappop(self._heap)
            enode, children = self._nodes[index]
            term = Term(
                enode.op,
                tuple(child.entries[r].term for child, r in zip(children, ranks)),
            )
            # Successors always expand the frontier, even when the popped
            # term turns out to be a duplicate.
            for position in range(len(ranks)):
                bumped = list(ranks)
                bumped[position] += 1
                self._push(index, tuple(bumped))
            if term not in self._seen_terms:
                self._seen_terms.add(term)
                self.entries.append(RankedTerm(cost, term))
        return self.entries[rank] if rank < len(self.entries) else None


class _KBestEngine:
    """Shared stream registry + SCC index for one (e-graph, cost fn) pair.

    Streams are memoized on ``(class id, banned set)`` after intersecting
    the inherited banned set with the class's *cycle set* — the members of
    its strongly connected component when that SCC is non-trivial, else the
    empty set.  A banned ancestor outside the class's SCC can never be
    reached again (the SCC condensation is acyclic), so dropping it is
    sound and collapses almost every request onto the context-free stream.
    """

    def __init__(self, egraph: EGraph, cost_function: CostFunction):
        self.egraph = egraph
        self.cost_function = cost_function
        self.seq = itertools.count()  # heap tiebreaker: deterministic FIFO
        self._streams: Dict[Tuple[int, frozenset], _Stream] = {}
        self._children: Dict[int, List[int]] = {}
        self._cycle_sets: Dict[int, frozenset] = {}
        self._scc_index: Dict[int, int] = {}
        self._scc_low: Dict[int, int] = {}
        self._scc_counter = 0

    def stream(self, class_id: int, banned: frozenset = frozenset()) -> _Stream:
        class_id = self.egraph.find(class_id)
        banned = banned & self._cycle_set(class_id)
        key = (class_id, banned)
        stream = self._streams.get(key)
        if stream is None:
            stream = self._streams[key] = _Stream(self, class_id, banned)
        return stream

    # -- SCC index --------------------------------------------------------------

    def _child_classes(self, class_id: int) -> List[int]:
        children = self._children.get(class_id)
        if children is None:
            find = self.egraph.find
            children = self._children[class_id] = list(
                {find(arg) for node in self.egraph.flat_nodes(class_id) for arg in node[1:]}
            )
        return children

    def _cycle_set(self, class_id: int) -> frozenset:
        cached = self._cycle_sets.get(class_id)
        if cached is not None:
            return cached
        self._run_tarjan(class_id)
        return self._cycle_sets[class_id]

    def _run_tarjan(self, start: int) -> None:
        """Iterative Tarjan from ``start``; finished classes are skipped.

        Incremental restarts are sound: any cycle through an already
        finished class is fully contained in the subgraph that earlier run
        explored, so treating finished classes as closed cannot miss SCC
        members.
        """
        index = self._scc_index
        low = self._scc_low
        tarjan_stack: List[int] = []
        on_stack: Set[int] = set()

        index[start] = low[start] = self._scc_counter
        self._scc_counter += 1
        tarjan_stack.append(start)
        on_stack.add(start)
        frames: List[List] = [[start, self._child_classes(start), 0]]
        while frames:
            frame = frames[-1]
            node, children, position = frame
            advanced = False
            while position < len(children):
                child = children[position]
                position += 1
                frame[2] = position
                if child in self._cycle_sets and child not in on_stack:
                    continue  # finished by an earlier run
                if child not in index:
                    index[child] = low[child] = self._scc_counter
                    self._scc_counter += 1
                    tarjan_stack.append(child)
                    on_stack.add(child)
                    frames.append([child, self._child_classes(child), 0])
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            frames.pop()
            if frames:
                parent = frames[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                members: Set[int] = set()
                while True:
                    member = tarjan_stack.pop()
                    on_stack.discard(member)
                    members.add(member)
                    if member == node:
                        break
                nontrivial = len(members) > 1 or node in self._child_classes(node)
                cycle = frozenset(members) if nontrivial else frozenset()
                for member in members:
                    self._cycle_sets[member] = cycle


class TopKExtractor:
    """Extraction of the k cheapest distinct realizable terms per e-class.

    A thin facade over the lazy stream machinery (see the module
    docstring): nothing is computed until a query forces it, and a query
    for class ``c`` touches only classes reachable from ``c`` — the old
    whole-graph candidate-table fixpoint (and its ``max_rounds`` safety
    valve and cube-pruning rank-monotonicity assumption) is gone.

    ``roots`` is accepted for API compatibility; enumeration is lazy per
    queried class, so no reachability restriction is needed any more.
    """

    def __init__(
        self,
        egraph: EGraph,
        cost_function: CostFunction = ast_size_cost,
        k: int = 5,
        roots: Optional[Sequence[int]] = None,
    ):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.egraph = egraph
        self.cost_function = cost_function
        self.k = k
        self._engine = _KBestEngine(egraph, cost_function)

    # -- queries -----------------------------------------------------------------

    def extract_top_k(self, class_id: int) -> List[RankedTerm]:
        """Up to k cheapest distinct realizable terms, best first.

        Fewer than k entries come back when the class offers fewer distinct
        realizable terms (e.g. every other candidate descends into an
        equivalence cycle).
        """
        stream = self._engine.stream(class_id)
        entries: List[RankedTerm] = []
        for rank in range(self.k):
            entry = stream.get(rank)
            if entry is None:
                break
            entries.append(entry)
        if not entries:
            raise ExtractionError(f"no extractable term for e-class {class_id}")
        return entries

    def best(self, class_id: int) -> RankedTerm:
        """The single cheapest realizable entry for ``class_id``."""
        return self.extract_top_k(class_id)[0]

    def best_per_enode(self, class_id: int) -> List[RankedTerm]:
        """The cheapest term rooted at each distinct e-node of ``class_id``.

        Whereas :meth:`extract_top_k` returns the k globally cheapest terms
        (which for CAD models are often near-identical affine reorderings of
        one another), this query returns one representative per alternative
        the e-class actually offers at its root — e.g. the original boolean
        chain, the affine-lifted variant, and the ``Fold``-based structured
        variant each contribute their own candidate.  The pipeline combines
        both views to build a useful top-k (see ``repro.core.pipeline``).
        """
        class_id = self.egraph.find(class_id)
        find = self.egraph.find
        blocked = frozenset((class_id,))
        results: List[RankedTerm] = []
        seen: Set[Term] = set()
        seen_nodes: Set[ENode] = set()
        for enode in self.egraph.nodes(class_id):
            enode = enode.canonicalize(find)
            if enode in seen_nodes:
                continue
            seen_nodes.add(enode)
            child_entries = []
            missing = False
            for arg in enode.args:
                child = self._engine.stream(arg, blocked).get(0)
                if child is None:
                    missing = True
                    break
                child_entries.append(child)
            if missing:
                continue
            cost = self.cost_function(enode.op, [c.cost for c in child_entries])
            term = Term(enode.op, tuple(c.term for c in child_entries))
            if term in seen:
                continue
            seen.add(term)
            results.append(RankedTerm(cost, term))
        results.sort(key=lambda entry: entry.cost)
        return results
