"""The equality-saturation loop: a batched two-phase scheduler.

Each iteration runs in two phases, egg-style:

1. **search** — every enabled rule is matched against the *frozen*, freshly
   rebuilt e-graph, collecting a list of :class:`RewriteMatch`\\ es per rule.
   Because nothing is applied during this phase, every rule sees the same
   graph and rule order cannot influence which matches exist — the engine is
   deterministic and the per-iteration work is one e-matching pass per rule.
   With ``incremental=True`` the pass goes through an
   :class:`~repro.egraph.pattern.IncrementalMatcher` over a compiled
   discrimination trie instead of the naive per-rule sweep: only classes
   dirtied since the previous iteration (closed upward to pattern depth) are
   re-matched, with a full sweep on the first iteration and for any rule
   that skipped an iteration (e.g. while banned), so the match sets handed
   to the apply phase are always identical to the naive engine's.
2. **apply** — the collected matches are applied in order, then the graph is
   rebuilt *once*.  Node and time limits are enforced between individual
   match applications (not once per iteration), so a single explosive
   iteration can no longer blow arbitrarily past the configured budget.

   With ``dedup=True`` (the default) every deduplicable rule keeps an
   *applied-match ledger*: the canonical fingerprints
   (:meth:`RewriteMatch.fingerprint`) of matches that already executed.  A
   match whose fingerprint is in the ledger is skipped outright — no guard
   evaluation, no instantiation, no self-merge — because re-applying an
   identical canonical fingerprint of a syntactic rule cannot add anything
   the first application did not (the instantiated class hashconses onto
   the existing one and the merge is already in effect).  Fingerprints are
   stamped against the union-find version: they stay cached on the match
   objects while no merge happens, so a quiescent late iteration that
   rediscovers thousands of stale matches costs one set lookup per match;
   and whenever a merge *does* re-canonicalize a participating id, the
   entry can never be hit again (lookups canonicalize first) and is pruned
   from the ledger at the end of the iteration.  Skips are reported per
   iteration as :attr:`IterationReport.skipped_applications`.

A per-rule *backoff scheduler* (:class:`BackoffScheduler`) tames rules whose
match counts explode: when a rule produces more matches in one search than
its current threshold, the rule is banned for a number of iterations and its
threshold and ban length double on each offence.  Saturation is only
declared when an iteration changes nothing *and* no rule is still banned
(a banned rule might have fired).

The paper's main loop (Fig. 5) wraps one of these rewrite phases together
with the arithmetic components; see :mod:`repro.core.pipeline` for that
composition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.egraph.egraph import Analysis, EGraph
from repro.egraph.pattern import CompiledRuleSet, IncrementalMatcher
from repro.egraph.rewrite import BaseRewrite, RewriteMatch
from repro.obs.trace import NULL_TRACER


class StopReason(Enum):
    """Why a saturation run stopped."""

    SATURATED = "saturated"
    ITERATION_LIMIT = "iteration-limit"
    NODE_LIMIT = "node-limit"
    TIME_LIMIT = "time-limit"


@dataclass(frozen=True)
class RunnerLimits:
    """Resource limits for a saturation run (the paper's ``fuel``)."""

    max_iterations: int = 30
    max_enodes: int = 200_000
    max_seconds: float = 60.0


@dataclass(frozen=True)
class BackoffConfig:
    """Knobs of the per-rule backoff scheduler.

    ``match_limit`` is the initial per-iteration match-count threshold; a
    rule exceeding it is banned for ``ban_length`` iterations.  Both double
    every time the same rule re-offends, so a chronically explosive rule is
    applied in exponentially rarer bursts instead of dominating every
    iteration.
    """

    match_limit: int = 10_000
    ban_length: int = 5


@dataclass
class _RuleStats:
    """Mutable per-rule scheduler state."""

    times_banned: int = 0
    banned_until: int = 0  # first iteration index at which the rule may fire again
    total_matches: int = 0


class BackoffScheduler:
    """Exponential-backoff rule scheduler (egg's ``BackoffScheduler``)."""

    def __init__(self, config: Optional[BackoffConfig] = None):
        self.config = config or BackoffConfig()
        self._stats: Dict[str, _RuleStats] = {}

    def _stats_for(self, name: str) -> _RuleStats:
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = _RuleStats()
        return stats

    def is_banned(self, name: str, iteration: int) -> bool:
        """True when ``name`` must not search/apply during ``iteration``."""
        return self._stats_for(name).banned_until > iteration

    def banned_rules(self, iteration: int) -> List[str]:
        """Names of all rules banned during ``iteration``."""
        return [n for n, s in self._stats.items() if s.banned_until > iteration]

    def next_expiry(self, iteration: int) -> Optional[int]:
        """The earliest iteration at which a currently banned rule unbans.

        None when nothing is banned during ``iteration``.
        """
        pending = [s.banned_until for s in self._stats.values() if s.banned_until > iteration]
        return min(pending) if pending else None

    def record_search(self, name: str, match_count: int, iteration: int) -> bool:
        """Record a search result; returns False when the rule is now banned.

        A False return means the caller must drop this iteration's matches
        for the rule — the threshold and the ban both double on each offence.
        """
        stats = self._stats_for(name)
        stats.total_matches += match_count
        threshold = self.config.match_limit << stats.times_banned
        if match_count > threshold:
            ban = self.config.ban_length << stats.times_banned
            stats.times_banned += 1
            stats.banned_until = iteration + 1 + ban
            return False
        return True

    def total_matches(self, name: str) -> int:
        return self._stats_for(name).total_matches


@dataclass
class IterationReport:
    """Statistics for a single two-phase rewrite iteration."""

    index: int
    firings: Dict[str, int] = field(default_factory=dict)
    #: Matches collected during the search phase, per rule (including rules
    #: whose matches were then dropped because the scheduler banned them).
    matches: Dict[str, int] = field(default_factory=dict)
    #: Rules that sat out this iteration because of a backoff ban.
    banned: List[str] = field(default_factory=list)
    enodes_after: int = 0
    classes_after: int = 0
    seconds: float = 0.0
    search_seconds: float = 0.0
    apply_seconds: float = 0.0
    rebuild_seconds: float = 0.0
    #: Incremental-search statistics (None fields when the naive matcher ran).
    #: ``dirty_classes`` is the canonical dirty-core size this epoch,
    #: ``searched_classes`` the parent-closure actually re-matched,
    #: ``full_sweep_rules`` the rules that could not use their cache (first
    #: iteration, or just back from a backoff ban), and ``cached_matches``
    #: how many matches were served without touching the trie.
    dirty_classes: Optional[int] = None
    searched_classes: Optional[int] = None
    full_sweep_rules: List[str] = field(default_factory=list)
    cached_matches: int = 0
    trie_nodes: int = 0
    trie_programs: int = 0
    #: E-class analysis data changes (creations + improvements) performed
    #: during this iteration — 0 when no analysis is registered.  With a
    #: cost analysis riding along this is the incremental-extraction work
    #: the post-hoc fixpoint no longer has to do.
    analysis_updates: int = 0
    #: Apply-phase dedup counters: matches skipped because an identical
    #: canonical fingerprint already executed, and matches that actually ran
    #: (guard passed, instantiation/applier performed).  In a quiescent late
    #: iteration ``skipped_applications`` approaches the match count and
    #: ``applied_matches`` approaches zero.
    skipped_applications: int = 0
    applied_matches: int = 0
    #: Fresh e-nodes hash-consed into the graph during this iteration — the
    #: apply phase's allocation counter (0 in a fully deduplicated epoch).
    enodes_created: int = 0
    #: Parallel-search counters (``search_workers > 0`` only; see
    #: :mod:`repro.egraph.parallel`): search dispatches this iteration that
    #: ran on the worker pool, dispatches that fell back to the serial path
    #: (worker crash), and per-partition worker-side execution seconds.
    parallel_search_epochs: int = 0
    fallback_epochs: int = 0
    partition_seconds: List[float] = field(default_factory=list)

    @property
    def total_firings(self) -> int:
        return sum(self.firings.values())

    def to_dict(self) -> dict:
        """JSON-able snapshot (every field is a scalar, list, or str-keyed dict)."""
        from dataclasses import asdict

        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "IterationReport":
        """Rebuild an iteration report from :meth:`to_dict` output."""
        return IterationReport(**data)


@dataclass
class RunReport:
    """Statistics for a whole saturation run."""

    stop_reason: StopReason
    iterations: List[IterationReport] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def iteration_count(self) -> int:
        return len(self.iterations)

    @property
    def total_firings(self) -> int:
        return sum(it.total_firings for it in self.iterations)

    def to_dict(self) -> dict:
        """JSON-able snapshot; the stop reason is stored by enum value."""
        return {
            "stop_reason": self.stop_reason.value,
            "seconds": self.seconds,
            "iterations": [it.to_dict() for it in self.iterations],
        }

    @staticmethod
    def from_dict(data: dict) -> "RunReport":
        """Rebuild a run report from :meth:`to_dict` output."""
        return RunReport(
            stop_reason=StopReason(data["stop_reason"]),
            seconds=data.get("seconds", 0.0),
            iterations=[IterationReport.from_dict(it) for it in data.get("iterations", [])],
        )


class Runner:
    """Applies a fixed rule set to an e-graph until saturation or limits.

    ``backoff`` configures the match-count scheduler; pass
    ``BackoffConfig(match_limit=...)`` to tame explosive rules, or leave the
    default (high threshold) to effectively disable banning for small runs.
    Every :meth:`run` starts a fresh scheduler (ban windows are expressed in
    that run's iteration indices); the most recent one stays available as
    :attr:`scheduler` for post-run inspection.

    ``incremental=True`` switches the search phase to the compiled
    discrimination trie with dirty-class caching; ``compiled`` optionally
    supplies a pre-built :class:`CompiledRuleSet` over the *same* rules so
    callers running many saturations (the synthesis pipeline) compile once —
    it must cover exactly this runner's rule names, and implies incremental
    search unless ``incremental=False`` is passed explicitly.  Match
    semantics are identical either way — only the search cost differs.

    ``analyses`` lists e-class analyses (e.g. the extraction
    :class:`~repro.egraph.extract.CostAnalysis`) to register on the e-graph
    at the start of every :meth:`run` — registration is retroactive and
    idempotent, so the same runner can be re-run and the same analysis can
    already be riding on the graph.  Their data is then maintained
    incrementally through the whole saturation, and each
    :class:`IterationReport` carries the number of analysis updates the
    iteration performed.
    """

    def __init__(
        self,
        rules: Sequence[BaseRewrite],
        limits: Optional[RunnerLimits] = None,
        *,
        backoff: Optional[BackoffConfig] = None,
        incremental: Optional[bool] = None,
        compiled: Optional[CompiledRuleSet] = None,
        analyses: Sequence[Analysis] = (),
        dedup: Optional[bool] = None,
        tracer=None,
        search_workers: int = 0,
    ):
        self.rules = list(rules)
        #: Structured tracing sink (``repro.obs.trace``); the shared
        #: ``NULL_TRACER`` singleton when tracing is off, so the hot loop
        #: pays one no-op ``with`` per phase and allocates nothing.
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.limits = limits or RunnerLimits()
        self.backoff = backoff or BackoffConfig()
        self.scheduler = BackoffScheduler(self.backoff)
        if compiled is not None and set(compiled.rule_names) != {r.name for r in self.rules}:
            raise ValueError(
                "compiled rule set does not cover this runner's rules: "
                f"compiled={sorted(compiled.rule_names)} "
                f"runner={sorted(r.name for r in self.rules)}"
            )
        self.analyses = list(analyses)
        self.incremental = (compiled is not None) if incremental is None else incremental
        self.compiled = compiled
        if self.incremental and self.compiled is None:
            self.compiled = CompiledRuleSet(self.rules)
        #: Apply-phase deduplication (see the module docstring); on by
        #: default, switchable off for ablations/differential testing.
        self.dedup = True if dedup is None else dedup
        #: rule name -> executed canonical fingerprints; reset per run.  A
        #: plain set for pure/syntactic rules, a fingerprint->content dict
        #: for content-keyed dynamic rules.
        self._ledgers: Dict[str, object] = {}
        self._ledger_stamp = -1
        #: The matcher of the most recent :meth:`run` (post-run inspection).
        self.matcher: Optional[IncrementalMatcher] = None
        #: Search-worker processes per run (0 = serial).  Requires the
        #: compiled/incremental search path; the naive per-rule sweep is
        #: never parallelized.  Match results are byte-identical either way
        #: (see :mod:`repro.egraph.parallel`).
        self.search_workers = max(0, int(search_workers))
        #: The live pool during :meth:`run` (tests reach in to sabotage it).
        self._search_pool = None

    # -- phases -------------------------------------------------------------------

    def _search_phase(
        self, egraph: EGraph, iteration: int, report: IterationReport
    ) -> List[Tuple[BaseRewrite, List[RewriteMatch]]]:
        """Match every enabled rule against the frozen e-graph.

        With a matcher attached (``incremental=True``) the whole pass is one
        trie search over the dirty closure; either way the match lists are
        complete, so the backoff scheduler sees identical counts.
        """
        searched: List[Tuple[BaseRewrite, List[RewriteMatch]]] = []
        enabled: List[BaseRewrite] = []
        for rule in self.rules:
            if self.scheduler.is_banned(rule.name, iteration):
                report.banned.append(rule.name)
            else:
                enabled.append(rule)
        if self.matcher is not None:
            results = self.matcher.search(egraph, {rule.name for rule in enabled})
            stats = self.matcher.last_stats
            report.dirty_classes = stats.dirty_classes
            report.searched_classes = stats.searched_classes
            report.full_sweep_rules = list(stats.full_sweep_rules)
            report.cached_matches = stats.cached_matches
            report.trie_nodes = self.compiled.stats.trie_nodes
            report.trie_programs = self.compiled.stats.programs
            if self._search_pool is not None:
                parallel, fallbacks, partition_seconds = (
                    self._search_pool.drain_dispatch_stats()
                )
                report.parallel_search_epochs = parallel
                report.fallback_epochs = fallbacks
                report.partition_seconds = partition_seconds
        else:
            results = None
        for rule in enabled:
            matches = results[rule.name] if results is not None else rule.search(egraph)
            report.matches[rule.name] = len(matches)
            if not matches:
                continue
            if not self.scheduler.record_search(rule.name, len(matches), iteration):
                report.banned.append(rule.name)
                continue
            searched.append((rule, matches))
        return searched

    def _apply_phase(
        self,
        egraph: EGraph,
        searched: List[Tuple[BaseRewrite, List[RewriteMatch]]],
        start: float,
        report: IterationReport,
    ) -> Optional[StopReason]:
        """Apply collected matches, enforcing limits between applications.

        Deduplicable rules consult their applied-match ledger first: a
        match whose canonical fingerprint already executed is skipped
        before the limit checks, the guard, and the instantiation — in a
        quiescent late iteration the whole phase degenerates to one set
        lookup per match (the fingerprints themselves are cached on the
        match objects while no union happens).
        """
        max_enodes = self.limits.max_enodes
        max_seconds = self.limits.max_seconds
        union_find = egraph._union_find
        # The union version only moves inside apply_match_checked, so the
        # loop tracks it in a local instead of re-reading the attribute
        # chain per match — the skip fast path below is two slot reads and
        # an integer compare.
        union_version = union_find.version
        stop: Optional[StopReason] = None
        for rule, matches in searched:
            ledger = self._ledgers.get(rule.name)
            content_key = getattr(rule, "content_key", None) if ledger is not None else None
            apply_checked = rule.apply_match_checked
            fired = skipped = applied = 0
            for match in matches:
                content = None
                if ledger is not None:
                    # Fast path: the match was confirmed in the ledger and no
                    # union has happened since.  (The incremental matcher
                    # serves the same objects every epoch, so a quiescent
                    # tail iteration takes this branch for nearly every
                    # match.)  Sound for content-keyed rules too: class
                    # contents only ever change through unions, so an
                    # unchanged union version means an unchanged content key.
                    if match.skip_stamp == union_version:
                        skipped += 1
                        continue
                    fingerprint = match.fingerprint(egraph)
                    if content_key is not None:
                        # Content-keyed ledger (a dict): skip only while the
                        # rule's extra inputs hash the same as when the match
                        # was last examined.
                        content = content_key(egraph, match.class_id, match.substitution)
                        if ledger.get(fingerprint) == content:
                            match.skip_stamp = union_version
                            skipped += 1
                            continue
                    elif fingerprint in ledger:
                        match.skip_stamp = union_version
                        skipped += 1
                        continue
                if egraph.approx_enodes > max_enodes:
                    stop = StopReason.NODE_LIMIT
                    break
                if time.perf_counter() - start > max_seconds:
                    stop = StopReason.TIME_LIMIT
                    break
                changed, executed = apply_checked(egraph, match)
                if changed:
                    union_version = union_find.version
                if executed:
                    applied += 1
                if content_key is not None:
                    # Every outcome is ledgered — the content key captures
                    # all applier-visible inputs, so even a None/guarded
                    # outcome is stable until the key changes.  (A changed
                    # application may itself move the walked contents; the
                    # stale stored key then forces one re-examination next
                    # epoch, which converges.)
                    ledger[fingerprint] = content
                    if not changed:
                        match.skip_stamp = union_version
                elif executed and ledger is not None:
                    ledger.add(fingerprint)
                    if not changed:
                        match.skip_stamp = union_version
                if changed:
                    fired += 1
            if fired:
                report.firings[rule.name] = report.firings.get(rule.name, 0) + fired
            report.skipped_applications += skipped
            report.applied_matches += applied
            if stop is not None:
                return stop
        return None

    # -- dedup ledger maintenance -------------------------------------------------

    @staticmethod
    def _fingerprint_canonical(parents: List[int], fingerprint) -> bool:
        """True while every id the fingerprint binds is still canonical."""
        class_id, _reverse, bindings = fingerprint
        if parents[class_id] != class_id:
            return False
        for _name, bound in bindings:
            if parents[bound] != bound:
                return False
        return True

    def _prune_ledgers(self, egraph: EGraph) -> None:
        """Drop ledger entries invalidated by merges since the last prune.

        An entry is invalidated exactly when a merge re-canonicalized one of
        its participating ids: lookups canonicalize the incoming match
        first, so such an entry can never be hit again and only wastes
        memory.  The union-find version is the epoch stamp — while it is
        unchanged no id's representative moved and the sweep is skipped
        entirely, which makes quiescent iterations free.  A sweep is
        O(ledger), so it additionally waits until the unions accumulated
        since the last sweep are at least a quarter of the ledger size —
        amortized O(1) bookkeeping per union, with staleness bounded to a
        constant fraction of the live entries.
        """
        if not self._ledgers:
            return
        stamp = egraph.union_version
        unions = stamp - self._ledger_stamp
        if unions <= 0:
            return
        total = sum(len(ledger) for ledger in self._ledgers.values())
        if unions * 4 < total:
            return
        self._ledger_stamp = stamp
        parents = egraph._union_find.parents
        canonical = self._fingerprint_canonical
        for name, ledger in self._ledgers.items():
            if isinstance(ledger, dict):
                self._ledgers[name] = {
                    fp: content for fp, content in ledger.items() if canonical(parents, fp)
                }
            else:
                self._ledgers[name] = {fp for fp in ledger if canonical(parents, fp)}

    # -- driver -------------------------------------------------------------------

    def run(self, egraph: EGraph) -> RunReport:
        """Run equality saturation; the e-graph is mutated in place."""
        start = time.perf_counter()
        report = RunReport(stop_reason=StopReason.ITERATION_LIMIT)
        self.scheduler = BackoffScheduler(self.backoff)
        # The search-worker pool lives for exactly one run: spawned here,
        # reused by every iteration's search phase, closed in the finally
        # below so shared-memory segments are unlinked on every exit path.
        if self.search_workers > 0 and self.incremental:
            from repro.egraph.parallel import ParallelSearchPool

            self._search_pool = ParallelSearchPool(
                self.compiled, self.search_workers, tracer=self.tracer
            )
        # A fresh matcher per run: its first epoch is a full sweep, which
        # also makes it safe to take over the graph's dirty stream from any
        # previous consumer (mutations between runs are then irrelevant).
        self.matcher = (
            IncrementalMatcher(self.compiled, searcher=self._search_pool)
            if self.incremental
            else None
        )
        # Fresh ledgers per run: fingerprints embed this graph's class ids.
        # Content-keyed rules get a dict (fingerprint -> content key);
        # everything else a plain set of executed fingerprints.
        self._ledgers = (
            {
                rule.name: ({} if getattr(rule, "content_key", None) is not None else set())
                for rule in self.rules
                if rule.deduplicable
            }
            if self.dedup
            else {}
        )
        for analysis in self.analyses:
            egraph.register_analysis(analysis)
        egraph.rebuild()  # searches must always see canonical ids
        self._ledger_stamp = egraph.union_version

        iteration = 0
        tracer = self.tracer
        try:
            self._run_loop(egraph, iteration, start, report, tracer)
        finally:
            pool, self._search_pool = self._search_pool, None
            if pool is not None:
                pool.close()

        report.seconds = time.perf_counter() - start
        return report

    def _run_loop(self, egraph, iteration, start, report, tracer) -> None:
        while iteration < self.limits.max_iterations:
            with tracer.span("iteration") as it_span:
                iteration_start = time.perf_counter()
                version_before = egraph.version
                updates_before = egraph.analysis_updates
                created_before = egraph.enodes_created
                it_report = IterationReport(index=iteration)

                with tracer.span("search"):
                    searched = self._search_phase(egraph, iteration, it_report)
                it_report.search_seconds = time.perf_counter() - iteration_start

                apply_start = time.perf_counter()
                with tracer.span("apply"):
                    stop = self._apply_phase(egraph, searched, start, it_report)
                it_report.apply_seconds = time.perf_counter() - apply_start

                rebuild_start = time.perf_counter()
                with tracer.span("rebuild"):
                    egraph.rebuild()
                    self._prune_ledgers(egraph)
                it_report.rebuild_seconds = time.perf_counter() - rebuild_start

                it_report.enodes_created = egraph.enodes_created - created_before
                it_report.enodes_after = egraph.total_enodes
                it_report.classes_after = len(egraph)
                it_report.analysis_updates = egraph.analysis_updates - updates_before
                it_report.seconds = time.perf_counter() - iteration_start
                report.iterations.append(it_report)
                if it_span is not None:
                    it_span.update(
                        {
                            "index": it_report.index,
                            "matches": sum(it_report.matches.values()),
                            "firings": sum(it_report.firings.values()),
                            "banned": len(it_report.banned),
                            "applied_matches": it_report.applied_matches,
                            "skipped_applications": it_report.skipped_applications,
                            "enodes_created": it_report.enodes_created,
                            "enodes_after": it_report.enodes_after,
                            "classes_after": it_report.classes_after,
                            "searched_classes": it_report.searched_classes,
                            "cached_matches": it_report.cached_matches,
                            "analysis_updates": it_report.analysis_updates,
                        }
                    )

            if stop is not None:
                report.stop_reason = stop
                break
            if egraph.version == version_before:
                # Saturation needs an unchanged graph AND a full hearing: a
                # rule banned during this iteration (even one whose ban
                # expires next iteration) may still have matches to fire.
                expiry = self.scheduler.next_expiry(iteration)
                if expiry is None:
                    report.stop_reason = StopReason.SATURATED
                    break
                if time.perf_counter() - start > self.limits.max_seconds:
                    report.stop_reason = StopReason.TIME_LIMIT
                    break
                # Nothing can change until a ban lapses; re-searching the
                # unchanged graph every iteration until then would produce
                # identical results, so fast-forward to the first expiry
                # (iteration indices in the report may therefore skip).
                iteration = max(iteration + 1, expiry)
            else:
                # Budgets re-checked at iteration end: the per-match node
                # check runs *before* each application (the final match can
                # land just over), and the per-match time check never ran if
                # matches were all guard-rejected cheaply.  Catching both
                # here saves a full search phase over an over-budget graph.
                if egraph.approx_enodes > self.limits.max_enodes:
                    report.stop_reason = StopReason.NODE_LIMIT
                    break
                if time.perf_counter() - start > self.limits.max_seconds:
                    report.stop_reason = StopReason.TIME_LIMIT
                    break
                iteration += 1
