"""The equality-saturation loop.

Repeatedly apply a rule set to an e-graph until saturation (no rule changes
the graph), or until a fuel / node / time limit is hit.  The paper's main
loop (Fig. 5) wraps one of these rewrite phases together with the arithmetic
components; see :mod:`repro.core.pipeline` for that composition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import BaseRewrite


class StopReason(Enum):
    """Why a saturation run stopped."""

    SATURATED = "saturated"
    ITERATION_LIMIT = "iteration-limit"
    NODE_LIMIT = "node-limit"
    TIME_LIMIT = "time-limit"


@dataclass(frozen=True)
class RunnerLimits:
    """Resource limits for a saturation run (the paper's ``fuel``)."""

    max_iterations: int = 30
    max_enodes: int = 200_000
    max_seconds: float = 60.0


@dataclass
class IterationReport:
    """Statistics for a single rewrite iteration."""

    index: int
    firings: Dict[str, int] = field(default_factory=dict)
    enodes_after: int = 0
    classes_after: int = 0
    seconds: float = 0.0

    @property
    def total_firings(self) -> int:
        return sum(self.firings.values())


@dataclass
class RunReport:
    """Statistics for a whole saturation run."""

    stop_reason: StopReason
    iterations: List[IterationReport] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def iteration_count(self) -> int:
        return len(self.iterations)

    @property
    def total_firings(self) -> int:
        return sum(it.total_firings for it in self.iterations)


class Runner:
    """Applies a fixed rule set to an e-graph until saturation or limits."""

    def __init__(self, rules: Sequence[BaseRewrite], limits: Optional[RunnerLimits] = None):
        self.rules = list(rules)
        self.limits = limits or RunnerLimits()

    def run(self, egraph: EGraph) -> RunReport:
        """Run equality saturation; the e-graph is mutated in place."""
        start = time.perf_counter()
        report = RunReport(stop_reason=StopReason.SATURATED)

        for iteration in range(self.limits.max_iterations):
            iteration_start = time.perf_counter()
            version_before = egraph.version
            firings: Dict[str, int] = {}

            for rule in self.rules:
                fired = rule.run(egraph)
                if fired:
                    firings[rule.name] = firings.get(rule.name, 0) + fired
            egraph.rebuild()

            elapsed = time.perf_counter() - start
            report.iterations.append(
                IterationReport(
                    index=iteration,
                    firings=firings,
                    enodes_after=egraph.total_enodes,
                    classes_after=len(egraph),
                    seconds=time.perf_counter() - iteration_start,
                )
            )

            if egraph.version == version_before:
                report.stop_reason = StopReason.SATURATED
                break
            if egraph.total_enodes > self.limits.max_enodes:
                report.stop_reason = StopReason.NODE_LIMIT
                break
            if elapsed > self.limits.max_seconds:
                report.stop_reason = StopReason.TIME_LIMIT
                break
        else:
            report.stop_reason = StopReason.ITERATION_LIMIT

        report.seconds = time.perf_counter() - start
        return report
