"""Operator interning: the per-e-graph symbol table.

The e-graph's hot paths — hashcons lookups, congruence repair, compiled
e-matching — compare operators constantly.  Operators are strings (and the
occasional numeric literal), so every comparison used to pay for string
hashing/equality inside a frozen-dataclass ``ENode``.  A :class:`SymbolTable`
interns each distinct operator into a dense integer id once, at the e-graph
boundary; everything inside the ``egraph`` package then works on flat tuples
``(op_id, *arg_ids)`` whose hashing and equality are pure integer work.

Interning follows plain ``dict`` key semantics, which is exactly what the old
``ENode`` equality did: values that compare equal (``1``, ``1.0``, ``True``)
share one id, and the first-seen spelling is what :meth:`SymbolTable.op`
decodes back.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

Operator = Union[str, int, float]


class SymbolTable:
    """A bidirectional operator <-> dense-integer-id interner."""

    __slots__ = ("_ids", "_ops")

    def __init__(self) -> None:
        self._ids: Dict[Operator, int] = {}
        self._ops: List[Operator] = []

    def __len__(self) -> int:
        return len(self._ops)

    def __contains__(self, op: Operator) -> bool:
        return op in self._ids

    def intern(self, op: Operator) -> int:
        """The id for ``op``, allocating a fresh one on first sight."""
        op_id = self._ids.get(op)
        if op_id is None:
            op_id = len(self._ops)
            self._ids[op] = op_id
            self._ops.append(op)
        return op_id

    def get(self, op: Operator) -> Optional[int]:
        """The id for ``op`` if it was ever interned, else None.

        A None result is a useful fast negative: an operator the e-graph has
        never seen cannot appear in any e-node, so pattern compilation can
        prune whole programs without touching a single class.
        """
        return self._ids.get(op)

    def op(self, op_id: int) -> Operator:
        """Decode an id back to its (first-seen) operator."""
        return self._ops[op_id]

    def ops(self) -> Tuple[Operator, ...]:
        """Every interned operator, in allocation order."""
        return tuple(self._ops)
