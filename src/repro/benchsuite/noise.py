"""Simulation of mesh-decompiler noise.

30% of the paper's benchmark inputs come from running a mesh decompiler
(ReIncarnate / InverseCSG) over STL files; those flat CSGs carry
floating-point round-off from the geometric computations involved.  Since the
decompilers themselves are not available offline, this module simulates their
effect: it perturbs every affine vector of a clean flat CSG by a bounded,
deterministic pseudo-random amount, exercising exactly the epsilon-tolerant
code path of the arithmetic solvers.
"""

from __future__ import annotations

import hashlib
import struct

from repro.csg.ops import AFFINE_OPS
from repro.lang.term import Term


def _deterministic_unit(seed: int, *salt: float) -> float:
    """A deterministic pseudo-random value in [-1, 1) derived from the inputs."""
    payload = struct.pack("<q" + "d" * len(salt), seed, *salt)
    digest = hashlib.sha256(payload).digest()
    (raw,) = struct.unpack("<Q", digest[:8])
    return (raw / 2 ** 64) * 2.0 - 1.0


def add_decompiler_noise(
    term: Term, *, magnitude: float = 5e-4, seed: int = 0
) -> Term:
    """Perturb every affine-vector literal by at most ``magnitude``.

    The default magnitude (5e-4) sits inside the paper's epsilon of 1e-3, so
    a correct solver still recovers the clean closed forms; larger magnitudes
    are used by the noise-sweep benchmark to find where inference breaks.
    The perturbation is a pure function of (seed, position, value), so the
    same call always produces the same noisy model.
    """
    counter = [0]

    def perturb(node: Term) -> Term:
        if node.op in AFFINE_OPS and len(node.children) == 4:
            new_children = []
            for child in node.children[:3]:
                counter[0] += 1
                if child.is_number:
                    wobble = _deterministic_unit(seed, float(counter[0]), float(child.value))
                    new_children.append(Term.num(float(child.value) + wobble * magnitude))
                else:
                    new_children.append(child)
            new_children.append(node.children[3])
            return Term(node.op, tuple(new_children))
        return node

    return term.map_bottom_up(perturb)


def noise_floor(term: Term) -> float:
    """The largest distance of any affine literal from its nearest integer.

    A crude measure of how noisy a (possibly decompiled) model is; clean
    hand-written models typically report 0.
    """
    worst = 0.0
    for node in term.subterms():
        if node.op in AFFINE_OPS and len(node.children) == 4:
            for child in node.children[:3]:
                if child.is_number:
                    value = float(child.value)
                    worst = max(worst, abs(value - round(value)))
    return worst
