"""The running examples from the paper's figures, as flat CSG builders.

These are the small models used throughout the paper to explain the
algorithm; each builder returns the *flat* CSG that Szalinski takes as input,
and the corresponding bench (one per figure) checks that synthesis recovers
the structure the figure shows.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.csg.build import (
    cube,
    cylinder,
    diff,
    hexagon,
    rotate,
    scale,
    sphere,
    translate,
    union,
    union_all,
    unit,
)
from repro.lang.term import Term


def fig2_translated_cubes(count: int = 5, spacing: float = 2.0) -> Term:
    """Fig. 2: ``count`` unit cubes translated along x by multiples of ``spacing``."""
    return union_all(
        [translate(spacing * (i + 1), 0.0, 0.0, unit()) for i in range(count)]
    )


def fig10_nested_affine(count: int = 3) -> Term:
    """Fig. 10: cubes under nested Scale/Rotate/Translate with linear parameters."""
    parts = []
    for i in range(count):
        parts.append(
            translate(
                2.0 * i + 2.0,
                2.0 * i + 4.0,
                2.0 * i + 6.0,
                rotate(
                    15.0 * i + 30.0,
                    0.0,
                    0.0,
                    scale(2.0 * i + 1.0, 2.0 * i + 3.0, 2.0 * i + 5.0, unit()),
                ),
            )
        )
    return union_all(parts)


def fig14_grid(rows: int = 2, columns: int = 2, pitch: float = 24.0) -> Term:
    """Fig. 14: a regular grid of unit cubes centred on the origin."""
    offset = pitch / 2.0
    parts = []
    for row in range(rows):
        for column in range(columns):
            parts.append(
                translate(
                    pitch * row - offset, pitch * column - offset, 0.0, unit()
                )
            )
    return union_all(parts)


def fig16_noisy_hexagons() -> Term:
    """Fig. 16: the decompiled (noisy) union of three scaled hexagonal prisms.

    The vectors carry the floating-point noise the mesh decompiler introduced;
    only the first two hexagons lie on a clean linear progression, which is
    why the paper's output keeps the third literal.
    """
    return union(
        translate(9.5, 1.5, 0.25, scale(1.0, 0.866, 0.5, rotate(0.0, 0.0, 0.0, hexagon()))),
        union(
            translate(
                6.0,
                1.4999996667,
                0.25,
                scale(1.6, 1.386, 0.5, rotate(0.0, 0.0, 0.0, hexagon())),
            ),
            translate(
                2.0,
                1.4999994660,
                0.25,
                scale(2.0, 1.732, 0.5, rotate(0.0, 0.0, 0.0, hexagon())),
            ),
        ),
    )


def fig17_dice_six(pip_radius: float = 0.75) -> Term:
    """Fig. 17: the six-pip face of a die — a 2x3 grid of scaled spheres."""
    parts = []
    for y in (2.0, -2.0):
        for z in (2.0, 0.0, -2.0):
            parts.append(
                translate(-5.0, y, z, scale(pip_radius, pip_radius, pip_radius, sphere()))
            )
    return union_all(parts)


def fig18_hexcell_plate(rows: int = 2, columns: int = 2) -> Term:
    """Figs. 18/19: a plate with a grid of hexagonal cells removed.

    The cell centres admit both a doubly-nested-loop description and a
    trigonometric one (they lie on a circle), which is the paper's example of
    solution diversity.
    """
    cells = []
    for row in range(rows):
        for column in range(columns):
            cells.append(
                translate(15.0 - 10.0 * row, 5.0 + 10.0 * column, 0.0, unit())
            )
    plate = scale(20.0, 20.0, 3.0, unit())
    return diff(plate, union_all(cells))


def gear_model(
    teeth: int = 60,
    *,
    tooth_size: Sequence[float] = (8.0, 4.0, 50.0),
    pitch_radius: float = 125.0,
) -> Term:
    """Fig. 1/3: a spur gear — a cylindrical base with ``teeth`` rotated teeth.

    The flat trace places each tooth by translating it to the pitch radius and
    rotating it by its angular position, exactly as the Thingiverse model's
    unrolled OpenSCAD does.
    """
    tooth = scale(tooth_size[0], tooth_size[1], tooth_size[2], unit())
    placed = [
        rotate(0.0, 0.0, (360.0 / teeth) * (i + 1), translate(pitch_radius, 0.0, 0.0, tooth))
        for i in range(teeth)
    ]
    hub = union(
        scale(80.0, 80.0, 100.0, cylinder()),
        scale(120.0, 120.0, 50.0, cylinder()),
    )
    shaft = translate(0.0, 0.0, -1.0, scale(25.0, 25.0, 102.0, cylinder()))
    base = diff(hub, shaft)
    return diff(base, union_all(placed))


def circular_pattern(
    count: int,
    radius: float,
    child: Term,
    *,
    center: Sequence[float] = (0.0, 0.0, 0.0),
    z: float = 0.0,
) -> Term:
    """A flat union of ``count`` copies of ``child`` arranged on a circle.

    The positions are computed trigonometric­ally (so the flat vectors look
    like decompiler output with sin/cos values), which exercises the
    trigonometric solver.
    """
    parts: List[Term] = []
    for i in range(count):
        angle = 2.0 * math.pi * i / count
        parts.append(
            translate(
                center[0] + radius * math.cos(angle),
                center[1] + radius * math.sin(angle),
                z,
                child,
            )
        )
    return union_all(parts)


def linear_array(
    count: int,
    step: Sequence[float],
    child: Term,
    *,
    start: Sequence[float] = (0.0, 0.0, 0.0),
) -> Term:
    """A flat union of ``count`` copies of ``child`` spaced by ``step``."""
    parts = [
        translate(
            start[0] + step[0] * i,
            start[1] + step[1] * i,
            start[2] + step[2] * i,
            child,
        )
        for i in range(count)
    ]
    return union_all(parts)


def grid_array(
    rows: int,
    columns: int,
    pitch: Sequence[float],
    child: Term,
    *,
    start: Sequence[float] = (0.0, 0.0, 0.0),
) -> Term:
    """A flat union of copies of ``child`` on a rows x columns grid."""
    parts = []
    for row in range(rows):
        for column in range(columns):
            parts.append(
                translate(
                    start[0] + pitch[0] * row,
                    start[1] + pitch[1] * column,
                    start[2],
                    child,
                )
            )
    return union_all(parts)
