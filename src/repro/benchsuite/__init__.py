"""The benchmark suite: the paper's 16 Thingiverse models and figure examples.

The original evaluation downloads 16 models from Thingiverse (Table 1); those
exact files are not redistributable, so this package re-creates each model
programmatically with the same structural profile the paper reports — the
same kind and amount of repetition (e.g. 60 rotated gear teeth, a 2x20 grid
of pin covers, models with no repetitive structure at all), comparable node
counts, and the same provenance split: "T" models are written as OpenSCAD
sources (with loops) and flattened by :mod:`repro.scad`, "I" models are built
directly as flat CSG, as the authors did.

:mod:`repro.benchsuite.table1` runs Szalinski over the whole suite and
reproduces Table 1; :mod:`repro.benchsuite.models` contains the running
examples from the paper's figures.
"""

from repro.benchsuite.models import (
    fig2_translated_cubes,
    fig10_nested_affine,
    fig14_grid,
    fig16_noisy_hexagons,
    fig17_dice_six,
    fig18_hexcell_plate,
    gear_model,
)
from repro.benchsuite.suite import Benchmark, BENCHMARKS, get_benchmark, benchmark_names
from repro.benchsuite.table1 import Table1Row, run_benchmark, run_table1, format_table

__all__ = [
    "fig2_translated_cubes",
    "fig10_nested_affine",
    "fig14_grid",
    "fig16_noisy_hexagons",
    "fig17_dice_six",
    "fig18_hexcell_plate",
    "gear_model",
    "Benchmark",
    "BENCHMARKS",
    "get_benchmark",
    "benchmark_names",
    "Table1Row",
    "run_benchmark",
    "run_table1",
    "format_table",
]
