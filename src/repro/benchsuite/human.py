"""Human-written reference programs (paper Section 6.2).

The paper compares Szalinski's output against the human-written OpenSCAD
designs the benchmarks came from: for every model whose human-written version
contained loops, Szalinski inferred the same loop, and for the dice it found a
loop the human author had written out flat.  This module provides structured
LambdaCAD reference programs for a representative subset of the suite so that
comparison can be reproduced: each reference unrolls to the benchmark's flat
input (up to reordering), and its loop structure is what we expect synthesis
to match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.benchsuite.models import gear_model
from repro.cad.build import (
    fold,
    fold_union,
    fun,
    int_list,
    mapi,
    nil,
    repeat,
    rotate_expr,
    translate_expr,
)
from repro.csg.build import cube, diff, hexagon, scale, translate, union, union_all, cylinder, rotate, unit
from repro.cad.build import add, div, mul
from repro.lang.term import Term


@dataclass(frozen=True)
class HumanReference:
    """A human-written structured program paired with its flat equivalent."""

    name: str
    structured: Term          # LambdaCAD with the loops a person would write
    flat: Term                # the loop-free trace of the same design
    loop_bounds: tuple        # the loop bounds a person used (empty = no loop)


def _gear_reference() -> HumanReference:
    """The gear as its author writes it: one loop over 60 teeth."""
    tooth = scale(8.0, 4.0, 50.0, unit())
    body = mapi(
        fun(("i", "c"), rotate_expr(0, 0, mul(6.0, add(Term("i"), 1)), translate(125.0, 0.0, 0.0, Term("c")))),
        repeat(tooth, 60),
    )
    hub = union(
        scale(80.0, 80.0, 100.0, cylinder()),
        scale(120.0, 120.0, 50.0, cylinder()),
    )
    shaft = translate(0.0, 0.0, -1.0, scale(25.0, 25.0, 102.0, cylinder()))
    structured = diff(diff(hub, shaft), fold_union(body))
    return HumanReference(
        name="gear", structured=structured, flat=gear_model(60), loop_bounds=(60,)
    )


def _tape_store_reference() -> HumanReference:
    """Ten identical slots subtracted from a block: a single loop of 10."""
    slot = translate(8.0, 3.0, 4.0, scale(16.0, 48.0, 70.0, cube()))
    slot_core = translate(16.0, 27.0, 39.0, scale(16.0, 48.0, 70.0, cube()))
    slots_structured = mapi(
        fun(("i", "c"), translate_expr(mul(21.0, Term("i")), 0.0, 0.0, Term("c"))),
        repeat(slot_core, 10),
    )
    base = translate(110.0, 30.0, 35.0, scale(220.0, 60.0, 70.0, cube()))
    structured = diff(base, fold_union(slots_structured))
    flat_slots = [
        translate(21.0 * i, 0.0, 0.0, slot_core) for i in range(10)
    ]
    flat = diff(base, union_all(flat_slots))
    return HumanReference(
        name="tape-store", structured=structured, flat=flat, loop_bounds=(10,)
    )


def _hexcell_reference() -> HumanReference:
    """The hex-cell plate as a 2x2 nested loop (the Fig. 18 shape)."""
    cell = scale(4.0, 4.0, 4.0, hexagon())
    # A human writes two nested for-loops; the Fig. 14/17 Fold-of-Fun shape
    # expresses exactly that and unrolls to the 2x2 pattern of cells.
    cells_structured = fold(
        fun(
            ("i",),
            fold(
                fun(
                    ("j",),
                    translate_expr(
                        add(5.0, mul(10.0, Term("i"))),
                        add(5.0, mul(10.0, Term("j"))),
                        0.0,
                        cell,
                    ),
                ),
                nil(),
                int_list(range(2)),
            ),
        ),
        nil(),
        int_list(range(2)),
    )
    flat_cells = [
        translate(5.0 + 10.0 * row, 5.0 + 10.0 * column, 0.0, cell)
        for row in range(2)
        for column in range(2)
    ]
    plate = scale(20.0, 20.0, 3.0, cube())
    structured = diff(plate, fold_union(cells_structured))
    flat = diff(plate, union_all(flat_cells))
    return HumanReference(
        name="hc-bits", structured=structured, flat=flat, loop_bounds=(2, 2)
    )


def _dice_reference() -> HumanReference:
    """The dice's six face as the human wrote it: fully flat (no loop)."""
    pip = scale(0.75, 0.75, 0.75, Term("Sphere"))
    flat = union_all(
        [
            translate(-5.0, y, z, pip)
            for y in (2.0, -2.0)
            for z in (2.0, 0.0, -2.0)
        ]
    )
    return HumanReference(name="dice-six", structured=flat, flat=flat, loop_bounds=())


_REFERENCES: Dict[str, Callable[[], HumanReference]] = {
    "gear": _gear_reference,
    "tape-store": _tape_store_reference,
    "hc-bits": _hexcell_reference,
    "dice-six": _dice_reference,
}


def human_reference(name: str) -> HumanReference:
    """Look up a human-written reference program by name."""
    try:
        return _REFERENCES[name]()
    except KeyError as exc:
        raise KeyError(
            f"no human reference for {name!r}; known: {', '.join(sorted(_REFERENCES))}"
        ) from exc


def reference_names() -> List[str]:
    return sorted(_REFERENCES)
