"""Definitions of the 16 Table 1 benchmarks.

Every benchmark carries the metadata Table 1 reports about it: its Thingiverse
item id, whether the flat input came from a Thingiverse OpenSCAD design
("T", flattened by our OpenSCAD frontend) or was implemented directly as flat
CSG ("I"), whether Szalinski is expected to expose repetitive structure, the
expected loop nesting, and — for the one model that needs it — which cost
function exposes the structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.benchsuite import models
from repro.benchsuite.noise import add_decompiler_noise
from repro.benchsuite.scad_sources import SOURCES
from repro.csg.build import cube, diff, external, hexagon, scale, translate, union, union_all
from repro.lang.term import Term
from repro.scad.flatten import flatten_source


@dataclass(frozen=True)
class Benchmark:
    """One Table 1 benchmark model."""

    name: str                     # short name, e.g. "gear"
    thing_id: str                 # Thingiverse item number from the paper
    source: str                   # "T" (Thingiverse OpenSCAD) or "I" (implemented flat)
    build: Callable[[], Term]     # produces the flat CSG input
    expects_structure: bool       # does the paper report loops for this model?
    expected_nesting: int = 0     # 0 = none, 1 = single loop, 2 = doubly nested
    expected_kinds: Tuple[str, ...] = ()   # subset of {"d1", "d2", "theta"}
    cost_function: str = "ast-size"        # cost function used in Table 1's row
    notes: str = ""

    def label(self) -> str:
        return f"{self.thing_id}:{self.name}"


# ---------------------------------------------------------------------------
# "I" models built directly as flat CSG
# ---------------------------------------------------------------------------

def _build_hc_bits() -> Term:
    """2921167:hc-bits — a plate with a 2x2 pattern of hexagonal cells.

    The cell centres form both a grid and a circle, so the suite expects both
    a nested-loop and a trigonometric description (solution diversity).
    """
    cells = []
    for row in range(2):
        for column in range(2):
            cells.append(
                translate(5.0 + 10.0 * row, 5.0 + 10.0 * column, 0.0,
                          scale(4.0, 4.0, 4.0, hexagon()))
            )
    plate = scale(20.0, 20.0, 3.0, cube())
    return diff(plate, union_all(cells))


def _build_soldering() -> Term:
    """1725308:soldering — a soldering jig; the Mirror feature becomes External."""
    arm = union(external(), scale(6.0, 3.0, 2.0, cube()))
    arms = [translate(8.0 * (i + 1), 0.0, 2.0, arm) for i in range(5)]
    base = scale(48.0, 10.0, 2.0, cube())
    return union(base, union_all(arms))


def _build_sander() -> Term:
    """3044766:sander — a sanding block; a Hull subexpression becomes External."""
    pad = union(external(), scale(9.0, 18.0, 3.0, cube()))
    pads = [translate(10.0 * i, 0.0, 3.0, pad) for i in range(6)]
    return union_all(pads)


def _build_gear() -> Term:
    """3362402:gear — the 60-tooth spur gear from Fig. 1."""
    return models.gear_model(teeth=60)


def _build_sd_rack() -> Term:
    """64847:sd-rack — a model with no repetitive structure to recover.

    Twenty primitives with unrelated sizes and positions (taken from a fixed
    irregular sequence so the model is deterministic but admits no closed
    form under the paper's function families).
    """
    offsets = [
        (3.0, 17.0, 2.0), (11.0, 5.0, 9.0), (23.0, 29.0, 1.0), (31.0, 2.0, 13.0),
        (47.0, 19.0, 6.0), (5.0, 43.0, 21.0), (59.0, 7.0, 3.0), (13.0, 37.0, 17.0),
        (67.0, 23.0, 11.0), (29.0, 53.0, 5.0), (71.0, 13.0, 19.0), (41.0, 61.0, 7.0),
        (83.0, 31.0, 23.0), (53.0, 73.0, 15.0), (89.0, 43.0, 27.0), (61.0, 79.0, 25.0),
        (97.0, 59.0, 33.0), (73.0, 83.0, 29.0), (101.0, 67.0, 37.0), (79.0, 97.0, 35.0),
    ]
    sizes = [
        (4.0, 7.0, 2.0), (9.0, 3.0, 5.0), (2.0, 11.0, 6.0), (8.0, 5.0, 3.0),
        (12.0, 2.0, 7.0), (3.0, 13.0, 4.0), (7.0, 9.0, 11.0), (5.0, 6.0, 13.0),
        (11.0, 4.0, 8.0), (6.0, 12.0, 9.0), (13.0, 8.0, 2.0), (4.0, 10.0, 12.0),
        (10.0, 3.0, 14.0), (2.0, 14.0, 6.0), (14.0, 7.0, 5.0), (9.0, 11.0, 3.0),
        (5.0, 15.0, 10.0), (15.0, 6.0, 8.0), (8.0, 13.0, 12.0), (12.0, 9.0, 15.0),
    ]
    parts = [
        translate(o[0], o[1], o[2], scale(s[0], s[1], s[2], cube()))
        for o, s in zip(offsets, sizes)
    ]
    return union_all(parts)


def _build_wardrobe() -> Term:
    """510849:wardrobe — structure is only exposed by the reward-loops cost.

    Two runs of three small shelves whose positions follow second-degree
    polynomials: with only three repetitions and a verbose quadratic closed
    form, the structured program is *larger* than the flat one, so the
    default size cost keeps the flat program and only reward-loops surfaces
    the loops (Table 1 rows ``wardrobe`` and ``wardrobe@``).
    """

    def quadratic(i: float, a: float, b: float, c: float) -> float:
        return a * i * i + b * i + c

    left_shelves = [
        translate(quadratic(i, 3.0, 5.0, 7.0), quadratic(i, 2.0, 1.0, 4.0), 0.0, cube())
        for i in range(3)
    ]
    right_shelves = [
        translate(quadratic(i, 4.0, 2.0, 60.0), quadratic(i, 1.0, 6.0, 9.0), 30.0, cube())
        for i in range(3)
    ]
    frame = union(
        translate(0.0, 0.0, -5.0, scale(120.0, 4.0, 90.0, cube())),
        union(
            translate(0.0, 56.0, -5.0, scale(120.0, 4.0, 90.0, cube())),
            union(
                translate(-2.0, 0.0, -5.0, scale(4.0, 60.0, 90.0, cube())),
                union(
                    translate(118.0, 0.0, -5.0, scale(4.0, 60.0, 90.0, cube())),
                    union(
                        translate(0.0, 0.0, 85.0, scale(120.0, 60.0, 4.0, cube())),
                        union(
                            translate(30.0, 20.0, -5.0, scale(2.0, 2.0, 90.0, cube())),
                            union(
                                translate(60.0, 40.0, -5.0, scale(2.0, 2.0, 90.0, cube())),
                                union(
                                    translate(90.0, 10.0, -5.0, scale(2.0, 2.0, 90.0, cube())),
                                    translate(15.0, 30.0, -5.0, scale(2.0, 2.0, 90.0, cube())),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )
    return union(frame, union(union_all(left_shelves), union_all(right_shelves)))


def _noisy(builder: Callable[[], Term], magnitude: float = 4e-4, seed: int = 7) -> Callable[[], Term]:
    """Wrap a builder with simulated decompiler noise (for the "I" models)."""

    def build() -> Term:
        return add_decompiler_noise(builder(), magnitude=magnitude, seed=seed)

    return build


def _from_scad(key: str) -> Callable[[], Term]:
    def build() -> Term:
        return flatten_source(SOURCES[key])

    return build


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

BENCHMARKS: List[Benchmark] = [
    Benchmark(
        name="cnc-end-mill", thing_id="3244600", source="T",
        build=_from_scad("cnc-end-mill"),
        expects_structure=True, expected_nesting=2, expected_kinds=("d1",),
        notes="holder block with a 4x4 grid of bores; Hull removed upstream",
    ),
    Benchmark(
        name="nintendo-slot", thing_id="3432939", source="T",
        build=_from_scad("nintendo-slot"),
        expects_structure=True, expected_nesting=1, expected_kinds=("d1",),
        notes="storage unit with 11 identical angled slots",
    ),
    Benchmark(
        name="card-org", thing_id="3171605", source="T",
        build=_from_scad("card-org"),
        expects_structure=True, expected_nesting=1, expected_kinds=("d1",),
        notes="card organizer with 8 slots",
    ),
    Benchmark(
        name="sander", thing_id="3044766", source="T",
        build=_build_sander,
        expects_structure=True, expected_nesting=1, expected_kinds=("d1",),
        notes="Hull subexpression replaced by External, as in the paper",
    ),
    Benchmark(
        name="rasp-pie", thing_id="3097951", source="T",
        build=_from_scad("rasp-pie"),
        expects_structure=True, expected_nesting=2, expected_kinds=("d1",),
        notes="GPIO cover with a 2x20 grid of pin sockets",
    ),
    Benchmark(
        name="box-tray", thing_id="3148599", source="T",
        build=_from_scad("box-tray"),
        expects_structure=True, expected_nesting=2, expected_kinds=("d1",),
        notes="sorting tray with a 3x5 grid of compartments",
    ),
    Benchmark(
        name="med-slide", thing_id="3331008", source="T",
        build=_from_scad("med-slide"),
        expects_structure=True, expected_nesting=1, expected_kinds=("d1",),
        notes="pill sorter with 7 pockets on a tube base",
    ),
    Benchmark(
        name="hc-bits", thing_id="2921167", source="I",
        build=_noisy(_build_hc_bits),
        expects_structure=True, expected_nesting=1, expected_kinds=("d1",),
        notes="hex-cell generator; admits both loop and trigonometric forms",
    ),
    Benchmark(
        name="dice", thing_id="3094201", source="T",
        build=_from_scad("dice"),
        expects_structure=True, expected_nesting=2, expected_kinds=("d1",),
        notes="die; the nine-pip face is a 3x3 grid",
    ),
    Benchmark(
        name="tape-store", thing_id="3072857", source="T",
        build=_from_scad("tape-store"),
        expects_structure=True, expected_nesting=1, expected_kinds=("d1",),
        notes="dispenser with 10 identical slots",
    ),
    Benchmark(
        name="soldering", thing_id="1725308", source="I",
        build=_build_soldering,
        expects_structure=True, expected_nesting=1, expected_kinds=("d1",),
        notes="Mirror replaced by External, as in the paper",
    ),
    Benchmark(
        name="gear", thing_id="3362402", source="I",
        build=_build_gear,
        expects_structure=True, expected_nesting=1, expected_kinds=("d1",),
        notes="60-tooth spur gear (Fig. 1)",
    ),
    Benchmark(
        name="relay-box", thing_id="3452260", source="T",
        build=_from_scad("relay-box"),
        expects_structure=False, expected_nesting=1, expected_kinds=("d1",),
        notes=(
            "enclosure with two clip posts; the paper reports the two-element "
            "loop at rank 4, in this reproduction it falls just below the "
            "top-5 cut-off (see EXPERIMENTS.md)"
        ),
    ),
    Benchmark(
        name="sd-rack", thing_id="64847", source="I",
        build=_build_sd_rack,
        expects_structure=False,
        notes="no repetitive structure; output equals input",
    ),
    Benchmark(
        name="compose", thing_id="3333935", source="T",
        build=_from_scad("compose"),
        expects_structure=False,
        notes="no repetitive structure; output equals input",
    ),
    Benchmark(
        name="wardrobe", thing_id="510849", source="I",
        build=_build_wardrobe,
        expects_structure=False, expected_nesting=1, expected_kinds=("d2",),
        notes="structure only exposed with the reward-loops cost function",
    ),
]

_BY_NAME: Dict[str, Benchmark] = {b.name: b for b in BENCHMARKS}


def benchmark_names() -> List[str]:
    """The benchmark short names, in Table 1 order."""
    return [b.name for b in BENCHMARKS]


def get_benchmark(name: str) -> Benchmark:
    """Look up a benchmark by short name (e.g. ``"gear"``)."""
    try:
        return _BY_NAME[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(benchmark_names())}"
        ) from exc
