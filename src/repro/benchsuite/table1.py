"""The Table 1 harness.

Runs Szalinski over every benchmark and reports the same columns as the
paper's Table 1: input/output AST node counts (#i-ns / #o-ns), primitive
counts (#i-p / #o-p), AST depths (#i-d / #o-d), the loop structure (n-l), the
function class (f), the synthesis time, and the rank of the structured
program among the top-5 — plus the headline aggregates (average size
reduction and the fraction of models whose structure was exposed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.benchsuite.suite import BENCHMARKS, Benchmark
from repro.core.config import SynthesisConfig
from repro.core.pipeline import SynthesisResult, synthesize
from repro.csg.metrics import measure


@dataclass
class Table1Row:
    """One row of the reproduced Table 1."""

    name: str
    source: str
    input_nodes: int
    output_nodes: int
    input_primitives: int
    output_primitives: int
    input_depth: int
    output_depth: int
    loops: str
    functions: str
    seconds: float
    rank: Optional[int]
    exposes_structure: bool
    expected_structure: bool

    @property
    def size_reduction(self) -> float:
        if self.input_nodes == 0:
            return 0.0
        return 1.0 - self.output_nodes / self.input_nodes

    @property
    def matches_expectation(self) -> bool:
        return self.exposes_structure == self.expected_structure


def run_benchmark(
    benchmark: Benchmark, config: Optional[SynthesisConfig] = None
) -> Table1Row:
    """Run one benchmark and produce its Table 1 row."""
    config = config or SynthesisConfig(cost_function=benchmark.cost_function)
    flat = benchmark.build()
    input_metrics = measure(flat)
    start = time.perf_counter()
    result: SynthesisResult = synthesize(flat, config)
    elapsed = time.perf_counter() - start
    output_metrics = result.output_metrics()
    return Table1Row(
        name=benchmark.label(),
        source=benchmark.source,
        input_nodes=input_metrics.nodes,
        output_nodes=output_metrics.nodes,
        input_primitives=input_metrics.primitives,
        output_primitives=output_metrics.primitives,
        input_depth=input_metrics.depth,
        output_depth=output_metrics.depth,
        loops=result.loop_summary(),
        functions=result.function_summary(),
        seconds=elapsed,
        rank=result.structured_rank(),
        exposes_structure=result.exposes_structure(),
        expected_structure=benchmark.expects_structure,
    )


def run_table1(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    config: Optional[SynthesisConfig] = None,
) -> List[Table1Row]:
    """Run the whole suite (or a subset) and return the rows in order."""
    rows = []
    for benchmark in benchmarks or BENCHMARKS:
        row_config = config or SynthesisConfig(cost_function=benchmark.cost_function)
        rows.append(run_benchmark(benchmark, row_config))
    return rows


def average_size_reduction(rows: Sequence[Table1Row]) -> float:
    """The paper's headline aggregate: mean fractional node-count reduction."""
    if not rows:
        return 0.0
    return sum(row.size_reduction for row in rows) / len(rows)


def structure_exposure_rate(rows: Sequence[Table1Row]) -> float:
    """Fraction of models for which loops/functions were exposed."""
    if not rows:
        return 0.0
    return sum(1 for row in rows if row.exposes_structure) / len(rows)


def format_table(rows: Sequence[Table1Row]) -> str:
    """Render the rows as an aligned text table (like the paper's Table 1)."""
    header = (
        f"{'Name':<24}{'#i-ns':>7}{'#o-ns':>7}{'#i-p':>6}{'#o-p':>6}"
        f"{'#i-d':>6}{'#o-d':>6}  {'n-l':<12}{'f':<8}{'t(s)':>8}{'r':>4}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<24}{row.input_nodes:>7}{row.output_nodes:>7}"
            f"{row.input_primitives:>6}{row.output_primitives:>6}"
            f"{row.input_depth:>6}{row.output_depth:>6}  "
            f"{row.loops:<12}{row.functions:<8}{row.seconds:>8.2f}"
            f"{(row.rank if row.rank is not None else '-'):>4}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"average size reduction: {average_size_reduction(rows) * 100.0:.1f}%   "
        f"structure exposed: {structure_exposure_rate(rows) * 100.0:.0f}% of models"
    )
    return "\n".join(lines)
