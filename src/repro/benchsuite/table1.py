"""The Table 1 harness.

Runs Szalinski over every benchmark and reports the same columns as the
paper's Table 1: input/output AST node counts (#i-ns / #o-ns), primitive
counts (#i-p / #o-p), AST depths (#i-d / #o-d), the loop structure (n-l), the
function class (f), the synthesis time, and the rank of the structured
program among the top-5 — plus the headline aggregates (average size
reduction and the fraction of models whose structure was exposed).

Two drivers share the row construction: the original serial
:func:`run_table1`, and the service-backed :func:`run_table1_batch`, which
routes the suite through :class:`~repro.service.service.SynthesisService`
for process parallelism (``worker_count``), content-addressed caching
(``cache``), and per-model failure isolation — a model that crashes becomes
a failure line in the summary instead of aborting the run.  Both drivers
produce identical row content for identical inputs (only the measured
seconds differ); ``tests/test_batch_differential.py`` pins this.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.benchsuite.suite import BENCHMARKS, Benchmark
from repro.core.config import SynthesisConfig
from repro.core.pipeline import SynthesisResult, synthesize
from repro.lang.term import Term
from repro.service.cache import ResultCache
from repro.service.job import JobResult, JobStatus, SynthesisJob
from repro.service.service import BatchReport, SynthesisService


@dataclass
class Table1Row:
    """One row of the reproduced Table 1."""

    name: str
    source: str
    input_nodes: int
    output_nodes: int
    input_primitives: int
    output_primitives: int
    input_depth: int
    output_depth: int
    loops: str
    functions: str
    seconds: float
    rank: Optional[int]
    exposes_structure: bool
    expected_structure: bool

    @property
    def size_reduction(self) -> float:
        if self.input_nodes == 0:
            return 0.0
        return 1.0 - self.output_nodes / self.input_nodes

    @property
    def matches_expectation(self) -> bool:
        return self.exposes_structure == self.expected_structure

    def to_dict(self) -> dict:
        """JSON-able snapshot (what ``--report`` files embed)."""
        return {
            "name": self.name,
            "source": self.source,
            "input_nodes": self.input_nodes,
            "output_nodes": self.output_nodes,
            "input_primitives": self.input_primitives,
            "output_primitives": self.output_primitives,
            "input_depth": self.input_depth,
            "output_depth": self.output_depth,
            "loops": self.loops,
            "functions": self.functions,
            "seconds": self.seconds,
            "rank": self.rank,
            "exposes_structure": self.exposes_structure,
            "expected_structure": self.expected_structure,
            "size_reduction": self.size_reduction,
        }


def row_from_result(
    benchmark: Benchmark, result: SynthesisResult, seconds: float
) -> Table1Row:
    """Build a benchmark's Table 1 row from a finished synthesis result.

    Shared by the serial and service-backed drivers (and by the cached path:
    the canonical serialization round-trips terms exactly, so a result read
    back from the cache produces an identical row).
    """
    input_metrics = result.input_metrics()
    output_metrics = result.output_metrics()
    return Table1Row(
        name=benchmark.label(),
        source=benchmark.source,
        input_nodes=input_metrics.nodes,
        output_nodes=output_metrics.nodes,
        input_primitives=input_metrics.primitives,
        output_primitives=output_metrics.primitives,
        input_depth=input_metrics.depth,
        output_depth=output_metrics.depth,
        loops=result.loop_summary(),
        functions=result.function_summary(),
        seconds=seconds,
        rank=result.structured_rank(),
        exposes_structure=result.exposes_structure(),
        expected_structure=benchmark.expects_structure,
    )


def run_benchmark(
    benchmark: Benchmark, config: Optional[SynthesisConfig] = None
) -> Table1Row:
    """Run one benchmark serially and produce its Table 1 row."""
    config = config or SynthesisConfig(cost_function=benchmark.cost_function)
    flat = benchmark.build()
    start = time.perf_counter()
    result: SynthesisResult = synthesize(flat, config)
    elapsed = time.perf_counter() - start
    return row_from_result(benchmark, result, elapsed)


def run_table1(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    config: Optional[SynthesisConfig] = None,
) -> List[Table1Row]:
    """Run the whole suite (or a subset) serially and return the rows in order."""
    rows = []
    for benchmark in benchmarks or BENCHMARKS:
        row_config = config or SynthesisConfig(cost_function=benchmark.cost_function)
        rows.append(run_benchmark(benchmark, row_config))
    return rows


# ---------------------------------------------------------------------------
# Service-backed driver (parallel workers, result cache, failure isolation)
# ---------------------------------------------------------------------------


def benchmark_jobs(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    config: Optional[SynthesisConfig] = None,
    timeout: Optional[float] = None,
    mutate: Optional[Callable[[Term], Term]] = None,
) -> Tuple[List[SynthesisJob], List[JobResult]]:
    """Build service jobs for a benchsuite selection.

    Returns ``(jobs, build_failures)``: a benchmark whose *builder* raises
    (before any synthesis happens) becomes a pre-failed :class:`JobResult`
    instead of aborting job creation for the rest of the selection.

    ``mutate`` rewrites each built term before it becomes a job — the hook
    the semantic-cache CI check uses to run the suite over semantically
    equal respellings (see :mod:`repro.benchsuite.variants`).
    """
    jobs: List[SynthesisJob] = []
    failures: List[JobResult] = []
    for benchmark in benchmarks or BENCHMARKS:
        job_config = config or SynthesisConfig(cost_function=benchmark.cost_function)
        try:
            flat = benchmark.build()
            if mutate is not None:
                flat = mutate(flat)
        except Exception:
            failures.append(
                JobResult(
                    job_id=f"build:{benchmark.name}",
                    name=benchmark.name,
                    status=JobStatus.FAILED,
                    error=traceback.format_exc(),
                )
            )
            continue
        jobs.append(
            SynthesisJob(name=benchmark.name, term=flat, config=job_config, timeout=timeout)
        )
    return jobs, failures


@dataclass
class Table1Report:
    """A service-backed Table 1 run: rows for the successes, failures apart."""

    rows: List[Table1Row]
    failures: List[JobResult] = field(default_factory=list)
    batch: Optional[BatchReport] = None
    #: Summed wall-clock seconds the successful models spent in their final
    #: extraction phase (see ``SynthesisResult.extract_seconds``); cached
    #: results contribute the seconds their original run measured.
    extract_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        """JSON-able report (the CLI's ``--report`` payload)."""
        return {
            "rows": [row.to_dict() for row in self.rows],
            "failures": [failure.to_dict() for failure in self.failures],
            "average_size_reduction": average_size_reduction(self.rows),
            "structure_exposure_rate": structure_exposure_rate(self.rows),
            "extract_seconds": self.extract_seconds,
            "batch": self.batch.to_dict() if self.batch is not None else None,
        }


def run_table1_batch(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    config: Optional[SynthesisConfig] = None,
    *,
    worker_count: int = 0,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    on_event=None,
    persistent: bool = False,
    mutate: Optional[Callable[[Term], Term]] = None,
) -> Table1Report:
    """Run the suite through the batch service.

    ``worker_count=0`` executes in-process (still with per-model error
    capture); ``worker_count >= 1`` fans models out across that many worker
    processes — with ``persistent=True`` the processes stay alive across
    jobs within the batch (amortized startup, crash isolation preserved).
    With a ``cache``, warm re-runs of unchanged models are served
    without synthesizing.  Rows come back in benchmark order and carry the
    same content as :func:`run_table1`'s (timing aside); models that failed
    or timed out are reported in ``failures`` instead of as rows.
    """
    benchmarks = list(benchmarks or BENCHMARKS)
    jobs, failures = benchmark_jobs(benchmarks, config, timeout=timeout, mutate=mutate)
    service = SynthesisService(
        worker_count=worker_count, cache=cache, on_event=on_event, persistent=persistent
    )
    batch = service.run_batch(jobs)

    by_name = {benchmark.name: benchmark for benchmark in benchmarks}
    rows: List[Table1Row] = []
    extract_seconds = 0.0
    for job_result in batch.results:
        if job_result.ok:
            rows.append(
                row_from_result(by_name[job_result.name], job_result.result, job_result.seconds)
            )
            extract_seconds += job_result.result.extract_seconds
        else:
            failures.append(job_result)
    return Table1Report(
        rows=rows, failures=failures, batch=batch, extract_seconds=extract_seconds
    )


def average_size_reduction(rows: Sequence[Table1Row]) -> float:
    """The paper's headline aggregate: mean fractional node-count reduction."""
    if not rows:
        return 0.0
    return sum(row.size_reduction for row in rows) / len(rows)


def structure_exposure_rate(rows: Sequence[Table1Row]) -> float:
    """Fraction of models for which loops/functions were exposed."""
    if not rows:
        return 0.0
    return sum(1 for row in rows if row.exposes_structure) / len(rows)


def format_table(
    rows: Sequence[Table1Row], failures: Sequence[JobResult] = ()
) -> str:
    """Render the rows as an aligned text table (like the paper's Table 1).

    ``failures`` (from a service-backed run) are appended as one line each
    after the aggregates, so a crashed model is visible without drowning the
    table in tracebacks.
    """
    header = (
        f"{'Name':<24}{'#i-ns':>7}{'#o-ns':>7}{'#i-p':>6}{'#o-p':>6}"
        f"{'#i-d':>6}{'#o-d':>6}  {'n-l':<12}{'f':<8}{'t(s)':>8}{'r':>4}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<24}{row.input_nodes:>7}{row.output_nodes:>7}"
            f"{row.input_primitives:>6}{row.output_primitives:>6}"
            f"{row.input_depth:>6}{row.output_depth:>6}  "
            f"{row.loops:<12}{row.functions:<8}{row.seconds:>8.2f}"
            f"{(row.rank if row.rank is not None else '-'):>4}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"average size reduction: {average_size_reduction(rows) * 100.0:.1f}%   "
        f"structure exposed: {structure_exposure_rate(rows) * 100.0:.0f}% of models"
    )
    for failure in failures:
        lines.append(
            f"FAILED {failure.name} [{failure.status.value}]: {failure.error_summary()}"
        )
    return "\n".join(lines)
