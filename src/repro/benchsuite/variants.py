"""Semantically equal respellings of input terms.

:func:`semantic_variant` rewrites a term into a *different spelling of the
same design*: every integral numeric literal flips between its int and
float spellings (``1`` ↔ ``1.0``), every commutative boolean's operands are
swapped (``(Union a b)`` → ``(Union b a)``), and every ``Fun`` binder's
parameters are renamed (``x`` → ``x_r``, with references updated).  Each of
these is exactly a spelling the :mod:`repro.lang.normal` passes identify,
so the variant has a different exact cache key but the *same* semantic key
as the original.

That is the property the semantic-cache CI check exercises: a warm
``table1 --semantic-variants`` run over a cache populated by the unmutated
suite must hit on every model — at the semantic level, never the exact one
— and reproduce the cold run's rows byte for byte.

The mutation is deterministic (no randomness), so repeated runs produce the
same variant and the check is reproducible.
"""

from __future__ import annotations

from typing import Dict

from repro.lang.normal import COMMUTATIVE_OPS
from repro.lang.term import Term

#: Suffix appended to every ``Fun`` parameter name.  Appending the same
#: suffix to *all* binders keeps the renaming injective on each scope chain
#: (two in-scope names never collapse to one), so no variable capture can
#: occur even with shadowing.
_RENAME_SUFFIX = "_r"


def semantic_variant(term: Term) -> Term:
    """A semantically equal, syntactically different spelling of ``term``.

    For terms with nothing to respell (no numerals, no commutative
    booleans, no binders — e.g. a bare primitive) the result may equal the
    input; every benchsuite model has at least one mutation point.
    """
    return _variant(term, {})


def _variant(term: Term, env: Dict[str, str]) -> Term:
    if term.is_number:
        value = term.value
        if isinstance(value, int):
            return Term(float(value))
        if value.is_integer() and abs(value) < 1e16:
            return Term(int(value))
        return term
    if term.is_leaf:
        return term
    op = term.op
    if op == "Var" and len(term.children) == 1:
        ref = term.children[0]
        if ref.is_leaf and isinstance(ref.op, str) and ref.op in env:
            return Term("Var", (Term(env[ref.op]),))
        return term
    if op == "Fun" and len(term.children) >= 2:
        *params, body = term.children
        scope = dict(env)
        renamed = []
        for param in params:
            if param.is_leaf and isinstance(param.op, str):
                scope[param.op] = param.op + _RENAME_SUFFIX
                renamed.append(Term(scope[param.op]))
            else:
                renamed.append(_variant(param, env))
        return Term("Fun", (*renamed, _variant(body, scope)))
    children = tuple(_variant(child, env) for child in term.children)
    if op in COMMUTATIVE_OPS and len(children) == 2:
        children = (children[1], children[0])
    return Term(op, children)
