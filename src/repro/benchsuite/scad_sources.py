"""OpenSCAD sources for the "T" benchmarks.

In the paper, 70% of the benchmark models came from Thingiverse as OpenSCAD
designs (most already containing loops); the evaluation flattens them into
loop-free CSG before running Szalinski.  The original files are not
redistributable, so each source below is a re-creation with the same
structural profile reported in Table 1 (what repeats, how many times, and in
how many nested dimensions).  They are flattened by
:func:`repro.scad.flatten_source`, which is exactly the role of the paper's
OpenSCAD-to-CSG translator.
"""

CNC_END_MILL = """
// 3244600:cnc-end-mill -- a holder block with a 4x4 grid of tool bores.
base_w = 120; base_d = 120; base_h = 40;
bore_r = 8; bore_depth = 36;
difference() {
    cube([base_w, base_d, base_h]);
    for (row = [0 : 3])
        for (col = [0 : 3])
            translate([15 + row * 30, 15 + col * 30, 6])
                cylinder(h = bore_depth, r = bore_r);
}
"""

NINTENDO_SLOT = """
// 3432939:nintendo-slot -- a cartridge storage unit with 11 angled slots.
module slot() {
    union() {
        cube([4, 40, 40]);
        translate([0, 0, 40]) rotate([0, 45, 0]) cube([4, 40, 6]);
        translate([0, 36, 0]) cube([4, 4, 46]);
    }
}
difference() {
    cube([100, 48, 52]);
    for (i = [0 : 10])
        translate([6 + i * 8.5, 4, 4]) slot();
}
"""

CARD_ORG = """
// 3171605:card-org -- a card organizer with 8 parallel slots.
difference() {
    cube([90, 60, 30]);
    for (i = [0 : 7])
        translate([6 + i * 10.5, 5, 4]) cube([6, 50, 30]);
}
"""

RASP_PIE = """
// 3097951:rasp-pie -- a GPIO pin cover: 2 columns x 20 rows of pin sockets.
difference() {
    cube([12, 55, 8]);
    for (col = [0 : 1])
        for (row = [0 : 19])
            translate([2.5 + col * 5, 2.2 + row * 2.6, 2])
                cube([2.2, 2.2, 8]);
}
"""

BOX_TRAY = """
// 3148599:box-tray -- a sorting tray with a 3x5 grid of compartments.
difference() {
    cube([160, 100, 30]);
    for (row = [0 : 2])
        for (col = [0 : 4])
            translate([6 + row * 52, 6 + col * 19, 4])
                cube([46, 15, 30]);
}
"""

MED_SLIDE = """
// 3331008:med-slide -- a pill sorter sliding into a tube: 7 slots on a base.
module pocket() {
    union() {
        cube([16, 20, 14]);
        translate([2, 2, -2]) cube([12, 16, 4]);
    }
}
difference() {
    union() {
        cylinder(h = 150, r = 18);
        translate([-10, -22, 0]) cube([20, 8, 150]);
        translate([-10, 14, 0]) cube([20, 8, 150]);
    }
    for (i = [0 : 6])
        translate([-8, -10, 8 + i * 20]) pocket();
}
"""

DICE = """
// 3094201:dice -- a die; the dominant repeated structure is a 3x3 pip grid.
module pip() { sphere(r = 1.6); }
difference() {
    cube([20, 20, 20], center = true);
    // single pip on one face
    translate([10, 0, 0]) pip();
    // two-pip face
    translate([0, 10, 4]) pip();
    translate([0, 10, -4]) pip();
    // three-pip face (diagonal, irregular spacing on purpose)
    translate([0, -10, 0]) pip();
    translate([5, -10, 6]) pip();
    translate([-5, -10, -6]) pip();
    // the "nine" face laid out as a full 3x3 grid of pips
    for (row = [0 : 2])
        for (col = [0 : 2])
            translate([-10, -5 + row * 5, -5 + col * 5]) pip();
}
"""

TAPE_STORE = """
// 3072857:tape-store -- a dispenser body with 10 identical tape slots.
difference() {
    cube([220, 60, 70]);
    for (i = [0 : 9])
        translate([8 + i * 21, 6, 8]) cube([16, 48, 70]);
}
"""

RELAY_BOX = """
// 3452260:relay-box -- a small enclosure with two identical clip posts.
union() {
    difference() {
        cube([50, 30, 20]);
        translate([3, 3, 3]) cube([44, 24, 20]);
    }
    for (i = [0 : 1])
        translate([10 + i * 26, 12, 20]) cube([4, 6, 8]);
}
"""

COMPOSE = """
// 3333935:compose -- a one-off bracket with no repetitive structure.
union() {
    cube([60, 20, 6]);
    translate([0, 0, 6]) cube([6, 20, 34]);
    translate([54, 0, 6]) cube([6, 20, 14]);
    translate([22, 3, 6]) cylinder(h = 12, r = 5);
    translate([40, 14, 6]) sphere(r = 4);
    translate([6, 8, 6]) cube([10, 4, 22]);
}
"""

#: Mapping used by the suite definition.
SOURCES = {
    "cnc-end-mill": CNC_END_MILL,
    "nintendo-slot": NINTENDO_SLOT,
    "card-org": CARD_ORG,
    "rasp-pie": RASP_PIE,
    "box-tray": BOX_TRAY,
    "med-slide": MED_SLIDE,
    "dice": DICE,
    "tape-store": TAPE_STORE,
    "relay-box": RELAY_BOX,
    "compose": COMPOSE,
}
