"""Affine transformation matrices.

The paper treats affine transformations in their ``Mx + b`` form only
internally; designers see 3-vector arguments to ``Scale``, ``Rotate``, and
``Translate``.  This module provides that internal form: 4x4 homogeneous
matrices, the standard constructors, composition, inversion, and point
application.  It is used by the geometric evaluator (point membership, mesh
tessellation) and by tests that check the semantics-preservation of the
rewrite rules numerically.

Rotations follow the OpenSCAD convention the paper's benchmarks use: angles
are in degrees and ``Rotate (ax, ay, az)`` applies the X rotation first, then
Y, then Z (i.e. ``Rz * Ry * Rx``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.geometry.vec import Vec3


def _identity_rows() -> Tuple[Tuple[float, ...], ...]:
    return (
        (1.0, 0.0, 0.0, 0.0),
        (0.0, 1.0, 0.0, 0.0),
        (0.0, 0.0, 1.0, 0.0),
        (0.0, 0.0, 0.0, 1.0),
    )


@dataclass(frozen=True)
class AffineMatrix:
    """A 4x4 homogeneous transformation matrix (row-major tuple of rows)."""

    rows: Tuple[Tuple[float, ...], ...] = _identity_rows()

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def identity() -> "AffineMatrix":
        return AffineMatrix()

    @staticmethod
    def translation(offset: Vec3) -> "AffineMatrix":
        return AffineMatrix(
            (
                (1.0, 0.0, 0.0, offset.x),
                (0.0, 1.0, 0.0, offset.y),
                (0.0, 0.0, 1.0, offset.z),
                (0.0, 0.0, 0.0, 1.0),
            )
        )

    @staticmethod
    def scaling(factors: Vec3) -> "AffineMatrix":
        return AffineMatrix(
            (
                (factors.x, 0.0, 0.0, 0.0),
                (0.0, factors.y, 0.0, 0.0),
                (0.0, 0.0, factors.z, 0.0),
                (0.0, 0.0, 0.0, 1.0),
            )
        )

    @staticmethod
    def rotation_x(degrees: float) -> "AffineMatrix":
        radians = math.radians(degrees)
        c, s = math.cos(radians), math.sin(radians)
        return AffineMatrix(
            (
                (1.0, 0.0, 0.0, 0.0),
                (0.0, c, -s, 0.0),
                (0.0, s, c, 0.0),
                (0.0, 0.0, 0.0, 1.0),
            )
        )

    @staticmethod
    def rotation_y(degrees: float) -> "AffineMatrix":
        radians = math.radians(degrees)
        c, s = math.cos(radians), math.sin(radians)
        return AffineMatrix(
            (
                (c, 0.0, s, 0.0),
                (0.0, 1.0, 0.0, 0.0),
                (-s, 0.0, c, 0.0),
                (0.0, 0.0, 0.0, 1.0),
            )
        )

    @staticmethod
    def rotation_z(degrees: float) -> "AffineMatrix":
        radians = math.radians(degrees)
        c, s = math.cos(radians), math.sin(radians)
        return AffineMatrix(
            (
                (c, -s, 0.0, 0.0),
                (s, c, 0.0, 0.0),
                (0.0, 0.0, 1.0, 0.0),
                (0.0, 0.0, 0.0, 1.0),
            )
        )

    @staticmethod
    def rotation(angles: Vec3) -> "AffineMatrix":
        """Euler rotation in degrees, OpenSCAD order: ``Rz @ Ry @ Rx``."""
        return (
            AffineMatrix.rotation_z(angles.z)
            @ AffineMatrix.rotation_y(angles.y)
            @ AffineMatrix.rotation_x(angles.x)
        )

    # -- operations ------------------------------------------------------------

    def __matmul__(self, other: "AffineMatrix") -> "AffineMatrix":
        rows = []
        for i in range(4):
            row = []
            for j in range(4):
                row.append(
                    sum(self.rows[i][k] * other.rows[k][j] for k in range(4))
                )
            rows.append(tuple(row))
        return AffineMatrix(tuple(rows))

    def apply(self, point: Vec3) -> Vec3:
        """Transform a point (homogeneous coordinate 1)."""
        x, y, z = point.x, point.y, point.z
        coords = []
        for i in range(3):
            r = self.rows[i]
            coords.append(r[0] * x + r[1] * y + r[2] * z + r[3])
        return Vec3(coords[0], coords[1], coords[2])

    def apply_vector(self, vector: Vec3) -> Vec3:
        """Transform a direction (homogeneous coordinate 0: no translation)."""
        x, y, z = vector.x, vector.y, vector.z
        coords = []
        for i in range(3):
            r = self.rows[i]
            coords.append(r[0] * x + r[1] * y + r[2] * z)
        return Vec3(coords[0], coords[1], coords[2])

    def determinant3(self) -> float:
        """Determinant of the upper-left 3x3 block (volume scaling factor)."""
        (a, b, c, _), (d, e, f, _), (g, h, i, _), _ = self.rows
        return a * (e * i - f * h) - b * (d * i - f * g) + c * (d * h - e * g)

    def inverse(self) -> "AffineMatrix":
        """Invert the affine transform (requires a non-singular linear part)."""
        det = self.determinant3()
        if abs(det) < 1e-15:
            raise ValueError("affine matrix is singular and cannot be inverted")
        (a, b, c, tx), (d, e, f, ty), (g, h, i, tz), _ = self.rows
        # Inverse of the 3x3 linear block via the adjugate.
        inv = (
            ((e * i - f * h) / det, (c * h - b * i) / det, (b * f - c * e) / det),
            ((f * g - d * i) / det, (a * i - c * g) / det, (c * d - a * f) / det),
            ((d * h - e * g) / det, (b * g - a * h) / det, (a * e - b * d) / det),
        )
        new_t = tuple(
            -(inv[r][0] * tx + inv[r][1] * ty + inv[r][2] * tz) for r in range(3)
        )
        rows = tuple(
            tuple(inv[r]) + (new_t[r],) for r in range(3)
        ) + ((0.0, 0.0, 0.0, 1.0),)
        return AffineMatrix(rows)

    def close_to(self, other: "AffineMatrix", tolerance: float = 1e-9) -> bool:
        """Element-wise comparison within ``tolerance``."""
        for row_a, row_b in zip(self.rows, other.rows):
            for a, b in zip(row_a, row_b):
                if abs(a - b) > tolerance:
                    return False
        return True

    def as_nested_list(self) -> Sequence[Sequence[float]]:
        return [list(row) for row in self.rows]
