"""Point sampling of CSG solids.

Validation compares two solids by sampling: a regular grid over the joint
bounding box gives interior occupancy sets, and primitive-surface sampling
(filtered through the boolean structure) approximates the boundary.  Both
samplers are deterministic so that tests and benchmarks are reproducible.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.geometry.membership import CsgSolid, compile_csg
from repro.geometry.tessellate import tessellate_csg
from repro.geometry.vec import Vec3
from repro.lang.term import Term


def sample_grid(
    lo: Vec3, hi: Vec3, resolution: int = 16
) -> List[Vec3]:
    """A regular ``resolution^3`` grid of points spanning the box [lo, hi]."""
    if resolution < 1:
        raise ValueError("resolution must be at least 1")
    points: List[Vec3] = []
    for ix in range(resolution):
        for iy in range(resolution):
            for iz in range(resolution):
                fx = (ix + 0.5) / resolution
                fy = (iy + 0.5) / resolution
                fz = (iz + 0.5) / resolution
                points.append(
                    Vec3(
                        lo.x + fx * (hi.x - lo.x),
                        lo.y + fy * (hi.y - lo.y),
                        lo.z + fz * (hi.z - lo.z),
                    )
                )
    return points


def joint_bounding_box(a: CsgSolid, b: CsgSolid, padding: float = 0.05) -> Tuple[Vec3, Vec3]:
    """The padded union of two solids' bounding boxes."""
    lo = Vec3(
        min(a.bound_min.x, b.bound_min.x),
        min(a.bound_min.y, b.bound_min.y),
        min(a.bound_min.z, b.bound_min.z),
    )
    hi = Vec3(
        max(a.bound_max.x, b.bound_max.x),
        max(a.bound_max.y, b.bound_max.y),
        max(a.bound_max.z, b.bound_max.z),
    )
    extent = hi - lo
    pad = Vec3(
        max(extent.x * padding, 1e-6),
        max(extent.y * padding, 1e-6),
        max(extent.z * padding, 1e-6),
    )
    return lo - pad, hi + pad


def occupancy_points(term: Term, grid: List[Vec3]) -> List[Vec3]:
    """The subset of ``grid`` points contained in the CSG solid of ``term``."""
    solid = compile_csg(term)
    return [p for p in grid if solid.contains(p)]


def sample_csg_surface(term: Term, *, points_per_unit_area: float = 0.05, segments: int = 16) -> List[Vec3]:
    """Sample points from the (approximate) surface of a CSG solid.

    Primitive surfaces are sampled after tessellation; points that end up
    strictly inside the final solid (e.g. a face swallowed by a union) are
    kept — the resulting cloud over-approximates the boundary but is
    identical for geometrically identical programs, which is what the
    Hausdorff validation needs.
    """
    mesh = tessellate_csg(term, segments=segments)
    return mesh.sample_surface(points_per_unit_area=points_per_unit_area)
