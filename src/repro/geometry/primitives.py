"""Canonical solid primitives.

The paper assumes primitives are canonicalized: unit size, centred at the
origin, principal axes parallel to x/y/z (Section 2).  We adopt the same
convention:

* ``Unit`` / ``Cube`` — axis-aligned unit cube centred at the origin,
* ``Cylinder``        — radius 1, height 1, axis along z, centred,
* ``Sphere``          — radius 1, centred,
* ``Hexagon``         — hexagonal prism, circumradius 1, height 1, centred,
* ``Empty``           — the empty solid.

Every primitive exposes two views used elsewhere in the reproduction: an
exact point-membership predicate (for CSG evaluation and validation) and a
triangle tessellation (for STL export and mesh-decompiler simulation).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from repro.geometry.mesh import Mesh, Triangle
from repro.geometry.vec import Vec3

#: Names accepted for the unit cube; the paper uses both spellings.
CUBE_NAMES = ("Unit", "Cube")

#: All primitive operator names recognized by the geometry kernel.
PRIMITIVE_NAMES = ("Empty", "Unit", "Cube", "Cylinder", "Sphere", "Hexagon")


# ---------------------------------------------------------------------------
# Point membership
# ---------------------------------------------------------------------------

def _contains_cube(p: Vec3) -> bool:
    return abs(p.x) <= 0.5 and abs(p.y) <= 0.5 and abs(p.z) <= 0.5


def _contains_cylinder(p: Vec3) -> bool:
    return p.x * p.x + p.y * p.y <= 1.0 and abs(p.z) <= 0.5


def _contains_sphere(p: Vec3) -> bool:
    return p.x * p.x + p.y * p.y + p.z * p.z <= 1.0


def _contains_hexagon(p: Vec3) -> bool:
    """Regular hexagonal prism with circumradius 1, flat sides facing +-x."""
    if abs(p.z) > 0.5:
        return False
    x, y = abs(p.x), abs(p.y)
    apothem = math.sqrt(3.0) / 2.0
    # Hexagon with vertices on the y axis at distance 1; edges at 60 degrees.
    return x <= apothem and (apothem * y + 0.5 * x) <= apothem


def _contains_empty(_p: Vec3) -> bool:
    return False


PRIMITIVE_MEMBERSHIP: Dict[str, Callable[[Vec3], bool]] = {
    "Empty": _contains_empty,
    "Unit": _contains_cube,
    "Cube": _contains_cube,
    "Cylinder": _contains_cylinder,
    "Sphere": _contains_sphere,
    "Hexagon": _contains_hexagon,
}


# ---------------------------------------------------------------------------
# Tessellation
# ---------------------------------------------------------------------------

def tessellate_cube() -> Mesh:
    """Unit cube centred at the origin (12 triangles)."""
    h = 0.5
    corners = {
        (sx, sy, sz): Vec3(sx * h, sy * h, sz * h)
        for sx in (-1, 1)
        for sy in (-1, 1)
        for sz in (-1, 1)
    }
    mesh = Mesh.empty()
    # Each face as a quad with outward-facing winding.
    faces = [
        [(-1, -1, -1), (-1, 1, -1), (1, 1, -1), (1, -1, -1)],   # bottom (z = -h)
        [(-1, -1, 1), (1, -1, 1), (1, 1, 1), (-1, 1, 1)],       # top (z = +h)
        [(-1, -1, -1), (1, -1, -1), (1, -1, 1), (-1, -1, 1)],   # front (y = -h)
        [(-1, 1, -1), (-1, 1, 1), (1, 1, 1), (1, 1, -1)],       # back (y = +h)
        [(-1, -1, -1), (-1, -1, 1), (-1, 1, 1), (-1, 1, -1)],   # left (x = -h)
        [(1, -1, -1), (1, 1, -1), (1, 1, 1), (1, -1, 1)],       # right (x = +h)
    ]
    for quad in faces:
        a, b, c, d = (corners[k] for k in quad)
        mesh.add_quad(a, b, c, d)
    return mesh


def _tessellate_prism(profile: List[Vec3]) -> Mesh:
    """Extrude a convex 2D profile (in the z=0 plane) from z=-0.5 to z=+0.5."""
    mesh = Mesh.empty()
    bottom = [Vec3(p.x, p.y, -0.5) for p in profile]
    top = [Vec3(p.x, p.y, 0.5) for p in profile]
    n = len(profile)
    center_bottom = Vec3(0.0, 0.0, -0.5)
    center_top = Vec3(0.0, 0.0, 0.5)
    for i in range(n):
        j = (i + 1) % n
        # side quad
        mesh.add_quad(bottom[i], bottom[j], top[j], top[i])
        # caps as fans
        mesh.triangles.append(Triangle(center_bottom, bottom[j], bottom[i]))
        mesh.triangles.append(Triangle(center_top, top[i], top[j]))
    return mesh


def tessellate_cylinder(segments: int = 32) -> Mesh:
    profile = [
        Vec3(math.cos(2.0 * math.pi * i / segments), math.sin(2.0 * math.pi * i / segments), 0.0)
        for i in range(segments)
    ]
    return _tessellate_prism(profile)


def tessellate_hexagon() -> Mesh:
    profile = [
        Vec3(math.cos(math.pi / 2 + 2.0 * math.pi * i / 6), math.sin(math.pi / 2 + 2.0 * math.pi * i / 6), 0.0)
        for i in range(6)
    ]
    return _tessellate_prism(profile)


def tessellate_sphere(slices: int = 16, stacks: int = 12) -> Mesh:
    """Unit sphere as a latitude/longitude grid."""
    mesh = Mesh.empty()

    def point(stack: int, slice_: int) -> Vec3:
        phi = math.pi * stack / stacks          # 0 .. pi from the north pole
        theta = 2.0 * math.pi * slice_ / slices
        return Vec3(
            math.sin(phi) * math.cos(theta),
            math.sin(phi) * math.sin(theta),
            math.cos(phi),
        )

    for stack in range(stacks):
        for slice_ in range(slices):
            p00 = point(stack, slice_)
            p01 = point(stack, slice_ + 1)
            p10 = point(stack + 1, slice_)
            p11 = point(stack + 1, slice_ + 1)
            if stack != 0:
                mesh.triangles.append(Triangle(p00, p10, p01))
            if stack != stacks - 1:
                mesh.triangles.append(Triangle(p01, p10, p11))
    return mesh


PRIMITIVE_TESSELLATORS: Dict[str, Callable[[], Mesh]] = {
    "Empty": Mesh.empty,
    "Unit": tessellate_cube,
    "Cube": tessellate_cube,
    "Cylinder": tessellate_cylinder,
    "Sphere": tessellate_sphere,
    "Hexagon": tessellate_hexagon,
}


def is_primitive(name: object) -> bool:
    """True when ``name`` denotes a solid primitive known to the kernel."""
    return isinstance(name, str) and name in PRIMITIVE_MEMBERSHIP
