"""3D vectors.

CSG affine transformations are specified as 3-vectors (the ``(x, y, z)``
arguments of ``Translate``, ``Scale``, ``Rotate``), so a tiny dedicated
vector type keeps the rest of the code readable without dragging numpy
arrays through term manipulation code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple


@dataclass(frozen=True)
class Vec3:
    """An immutable 3D vector with float components."""

    x: float
    y: float
    z: float

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def zero() -> "Vec3":
        return Vec3(0.0, 0.0, 0.0)

    @staticmethod
    def ones() -> "Vec3":
        return Vec3(1.0, 1.0, 1.0)

    @staticmethod
    def of(values: Sequence[float]) -> "Vec3":
        """Build a vector from any length-3 sequence."""
        if len(values) != 3:
            raise ValueError(f"expected 3 components, got {len(values)}")
        return Vec3(float(values[0]), float(values[1]), float(values[2]))

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    def __mul__(self, scalar: float) -> "Vec3":
        return Vec3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec3":
        return Vec3(self.x / scalar, self.y / scalar, self.z / scalar)

    def hadamard(self, other: "Vec3") -> "Vec3":
        """Component-wise product (used by ``Scale``)."""
        return Vec3(self.x * other.x, self.y * other.y, self.z * other.z)

    def dot(self, other: "Vec3") -> float:
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def norm(self) -> float:
        return math.sqrt(self.dot(self))

    def distance(self, other: "Vec3") -> float:
        return (self - other).norm()

    def normalized(self) -> "Vec3":
        n = self.norm()
        if n == 0.0:
            raise ValueError("cannot normalize the zero vector")
        return self / n

    # -- comparisons -----------------------------------------------------------

    def close_to(self, other: "Vec3", tolerance: float = 1e-9) -> bool:
        """True when every component differs by at most ``tolerance``."""
        return (
            abs(self.x - other.x) <= tolerance
            and abs(self.y - other.y) <= tolerance
            and abs(self.z - other.z) <= tolerance
        )

    # -- conversions -----------------------------------------------------------

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.x, self.y, self.z)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.z

    def __getitem__(self, index: int) -> float:
        return (self.x, self.y, self.z)[index]

    def __str__(self) -> str:
        return f"({self.x}, {self.y}, {self.z})"
