"""Sampled Hausdorff distance between point sets.

Section 7 of the paper notes that a rigorous way to validate a synthesized
program is to compare it against the input via Hausdorff distance.  We
implement the directed and symmetric Hausdorff distances over finite point
samples, with an optional numpy-accelerated path for larger clouds.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.geometry.vec import Vec3


def _as_array(points: Sequence[Vec3]) -> np.ndarray:
    return np.array([[p.x, p.y, p.z] for p in points], dtype=float)


def directed_hausdorff(from_points: Sequence[Vec3], to_points: Sequence[Vec3]) -> float:
    """max over ``from_points`` of the distance to the nearest ``to_points``.

    Returns ``inf`` when ``to_points`` is empty but ``from_points`` is not,
    and 0.0 when ``from_points`` is empty (there is nothing unmatched).
    """
    if not from_points:
        return 0.0
    if not to_points:
        return float("inf")
    a = _as_array(from_points)
    b = _as_array(to_points)
    worst = 0.0
    # Chunk the outer loop to bound memory on big clouds.
    chunk = 2048
    for start in range(0, len(a), chunk):
        block = a[start : start + chunk]
        # pairwise squared distances block x b
        d2 = (
            np.sum(block * block, axis=1)[:, None]
            + np.sum(b * b, axis=1)[None, :]
            - 2.0 * block @ b.T
        )
        np.maximum(d2, 0.0, out=d2)
        nearest = np.sqrt(d2.min(axis=1))
        worst = max(worst, float(nearest.max()))
    return worst


def hausdorff_distance(points_a: Sequence[Vec3], points_b: Sequence[Vec3]) -> float:
    """Symmetric Hausdorff distance between two sampled point sets."""
    return max(
        directed_hausdorff(points_a, points_b),
        directed_hausdorff(points_b, points_a),
    )


def chamfer_distance(points_a: Sequence[Vec3], points_b: Sequence[Vec3]) -> float:
    """Mean nearest-neighbour distance (a smoother companion metric).

    Less sensitive to single outliers than Hausdorff; useful for judging how
    much decompiler noise a model carries.
    """
    if not points_a or not points_b:
        return 0.0 if not points_a and not points_b else float("inf")
    a = _as_array(points_a)
    b = _as_array(points_b)

    def mean_nearest(x: np.ndarray, y: np.ndarray) -> float:
        total = 0.0
        chunk = 2048
        for start in range(0, len(x), chunk):
            block = x[start : start + chunk]
            d2 = (
                np.sum(block * block, axis=1)[:, None]
                + np.sum(y * y, axis=1)[None, :]
                - 2.0 * block @ y.T
            )
            np.maximum(d2, 0.0, out=d2)
            total += float(np.sqrt(d2.min(axis=1)).sum())
        return total / len(x)

    return (mean_nearest(a, b) + mean_nearest(b, a)) / 2.0
