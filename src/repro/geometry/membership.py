"""Point-membership classification for CSG terms.

The cleanest executable semantics of a CSG term is its characteristic
function: given a point in R^3, is the point inside the solid?  Boolean
operators are exactly the set operations on these characteristic functions,
and affine transformations act by pulling points back through the inverse
transform.  This module compiles a CSG :class:`~repro.lang.term.Term` into
such a predicate; the verification layer uses it to compare the input flat
CSG against the unrolled synthesized program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.geometry.mat import AffineMatrix
from repro.geometry.primitives import PRIMITIVE_MEMBERSHIP
from repro.geometry.vec import Vec3
from repro.lang.term import Term


class GeometryError(ValueError):
    """Raised when a term cannot be interpreted geometrically."""


def _vector_from_args(term: Term) -> Vec3:
    values: List[float] = []
    for child in term.children[:3]:
        if not child.is_number:
            raise GeometryError(
                f"{term.op} expects numeric vector arguments, got {child.op!r}"
            )
        values.append(float(child.value))
    return Vec3.of(values)


def _affine_matrix(term: Term) -> AffineMatrix:
    vector = _vector_from_args(term)
    if term.op == "Translate":
        return AffineMatrix.translation(vector)
    if term.op == "Scale":
        return AffineMatrix.scaling(vector)
    if term.op == "Rotate":
        return AffineMatrix.rotation(vector)
    raise GeometryError(f"not an affine operator: {term.op!r}")


@dataclass
class CsgSolid:
    """A compiled CSG solid: a membership predicate plus a loose bound."""

    contains: Callable[[Vec3], bool]
    bound_min: Vec3
    bound_max: Vec3

    def bounding_box(self):
        return (self.bound_min, self.bound_max)


def _combine_bounds(kind: str, left: CsgSolid, right: CsgSolid):
    if kind == "Union":
        lo = Vec3(
            min(left.bound_min.x, right.bound_min.x),
            min(left.bound_min.y, right.bound_min.y),
            min(left.bound_min.z, right.bound_min.z),
        )
        hi = Vec3(
            max(left.bound_max.x, right.bound_max.x),
            max(left.bound_max.y, right.bound_max.y),
            max(left.bound_max.z, right.bound_max.z),
        )
        return lo, hi
    if kind == "Inter":
        lo = Vec3(
            max(left.bound_min.x, right.bound_min.x),
            max(left.bound_min.y, right.bound_min.y),
            max(left.bound_min.z, right.bound_min.z),
        )
        hi = Vec3(
            min(left.bound_max.x, right.bound_max.x),
            min(left.bound_max.y, right.bound_max.y),
            min(left.bound_max.z, right.bound_max.z),
        )
        return lo, hi
    # Diff: bounded by the left operand.
    return left.bound_min, left.bound_max


def _transform_bounds(matrix: AffineMatrix, lo: Vec3, hi: Vec3):
    """Transform an AABB and re-box it (conservative)."""
    corners = [
        Vec3(x, y, z)
        for x in (lo.x, hi.x)
        for y in (lo.y, hi.y)
        for z in (lo.z, hi.z)
    ]
    moved = [matrix.apply(c) for c in corners]
    xs = [p.x for p in moved]
    ys = [p.y for p in moved]
    zs = [p.z for p in moved]
    return Vec3(min(xs), min(ys), min(zs)), Vec3(max(xs), max(ys), max(zs))


def compile_csg(term: Term) -> CsgSolid:
    """Compile a CSG term into a :class:`CsgSolid`.

    Affine nodes are handled by precomposing the *inverse* transform onto the
    child's membership test; boolean nodes combine child predicates.
    Unsupported operators (e.g. ``External`` placeholders for Hull/Mirror)
    are treated as empty solids so validation can still proceed on the
    supported portion, mirroring the paper's handling of ``External``.
    """
    op = term.op
    if isinstance(op, str) and op in PRIMITIVE_MEMBERSHIP:
        predicate = PRIMITIVE_MEMBERSHIP[op]
        if op == "Empty":
            return CsgSolid(predicate, Vec3.zero(), Vec3.zero())
        return CsgSolid(predicate, Vec3(-1.0, -1.0, -1.0), Vec3(1.0, 1.0, 1.0))

    if op in ("Translate", "Scale", "Rotate"):
        child = compile_csg(term.children[3])
        matrix = _affine_matrix(term)
        inverse = matrix.inverse()
        child_contains = child.contains

        def contains(point: Vec3, _inv=inverse, _child=child_contains) -> bool:
            return _child(_inv.apply(point))

        lo, hi = _transform_bounds(matrix, child.bound_min, child.bound_max)
        return CsgSolid(contains, lo, hi)

    if op in ("Union", "Diff", "Inter"):
        left = compile_csg(term.children[0])
        right = compile_csg(term.children[1])
        if op == "Union":
            def contains(point: Vec3, _l=left.contains, _r=right.contains) -> bool:
                return _l(point) or _r(point)
        elif op == "Inter":
            def contains(point: Vec3, _l=left.contains, _r=right.contains) -> bool:
                return _l(point) and _r(point)
        else:
            def contains(point: Vec3, _l=left.contains, _r=right.contains) -> bool:
                return _l(point) and not _r(point)
        lo, hi = _combine_bounds(op, left, right)
        return CsgSolid(contains, lo, hi)

    if op == "External":
        # Placeholder for unsupported features (Hull, Mirror); geometrically
        # treated as empty so the rest of the model can still be compared.
        return CsgSolid(lambda _p: False, Vec3.zero(), Vec3.zero())

    raise GeometryError(f"cannot interpret operator {op!r} as CSG geometry")


def csg_contains(term: Term, point: Vec3) -> bool:
    """Convenience wrapper: does the CSG solid denoted by ``term`` contain ``point``?"""
    return compile_csg(term).contains(point)
