"""STL (stereolithography) mesh I/O.

STL is the interchange format the paper's pipeline starts from: model-sharing
sites distribute ready-to-print STL meshes, which mesh decompilers turn into
flat CSG.  We support both the ASCII dialect (the format shown in the paper's
Figure 1) and the binary dialect, in both directions, so the examples can
round-trip gear meshes and the benchmark suite can simulate decompiler
inputs.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import List, Union

from repro.geometry.mesh import Mesh, Triangle
from repro.geometry.vec import Vec3

PathLike = Union[str, Path]


class StlError(ValueError):
    """Raised when an STL file cannot be parsed."""


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------

def write_stl_ascii(mesh: Mesh, path: PathLike, *, solid_name: str = "repro_model") -> None:
    """Write an ASCII STL file in the layout shown in the paper's Figure 1."""
    lines: List[str] = [f"solid {solid_name}"]
    for triangle in mesh:
        n = triangle.normal()
        lines.append(f"  facet normal {n.x:g} {n.y:g} {n.z:g}")
        lines.append("    outer loop")
        for vertex in triangle.vertices():
            lines.append(f"      vertex {vertex.x:g} {vertex.y:g} {vertex.z:g}")
        lines.append("    endloop")
        lines.append("  endfacet")
    lines.append(f"endsolid {solid_name}")
    Path(path).write_text("\n".join(lines) + "\n")


def write_stl_binary(mesh: Mesh, path: PathLike, *, header: str = "repro binary stl") -> None:
    """Write a binary STL file (80-byte header, uint32 count, 50-byte facets)."""
    with open(path, "wb") as handle:
        handle.write(header.encode("ascii", errors="replace")[:80].ljust(80, b"\0"))
        handle.write(struct.pack("<I", len(mesh)))
        for triangle in mesh:
            n = triangle.normal()
            values = [n.x, n.y, n.z]
            for vertex in triangle.vertices():
                values.extend([vertex.x, vertex.y, vertex.z])
            handle.write(struct.pack("<12f", *values))
            handle.write(struct.pack("<H", 0))


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------

def read_stl(path: PathLike) -> Mesh:
    """Read an STL file, auto-detecting the ASCII vs. binary dialect."""
    raw = Path(path).read_bytes()
    if _looks_ascii(raw):
        return _read_ascii(raw.decode("utf-8", errors="replace"))
    return _read_binary(raw)


def _looks_ascii(raw: bytes) -> bool:
    head = raw[:512].lstrip()
    if not head.startswith(b"solid"):
        return False
    # Binary files may still start with "solid"; real ASCII files contain the
    # keyword "facet" somewhere early.
    return b"facet" in raw[:4096] or len(raw) < 84


def _read_ascii(text: str) -> Mesh:
    vertices: List[Vec3] = []
    triangles: List[Triangle] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        words = line.split()
        if not words:
            continue
        if words[0] == "vertex":
            if len(words) != 4:
                raise StlError(f"malformed vertex on line {line_number}")
            try:
                vertices.append(Vec3(float(words[1]), float(words[2]), float(words[3])))
            except ValueError as exc:
                raise StlError(f"bad vertex coordinates on line {line_number}") from exc
        elif words[0] == "endfacet":
            if len(vertices) != 3:
                raise StlError(
                    f"facet ending on line {line_number} has {len(vertices)} vertices"
                )
            triangles.append(Triangle(*vertices))
            vertices = []
    if vertices:
        raise StlError("unterminated facet at end of file")
    return Mesh(triangles)


def _read_binary(raw: bytes) -> Mesh:
    if len(raw) < 84:
        raise StlError("binary STL too short to contain a header")
    (count,) = struct.unpack_from("<I", raw, 80)
    expected = 84 + count * 50
    if len(raw) < expected:
        raise StlError(
            f"binary STL truncated: header declares {count} facets "
            f"({expected} bytes) but file has {len(raw)} bytes"
        )
    triangles: List[Triangle] = []
    offset = 84
    for _ in range(count):
        values = struct.unpack_from("<12f", raw, offset)
        a = Vec3(values[3], values[4], values[5])
        b = Vec3(values[6], values[7], values[8])
        c = Vec3(values[9], values[10], values[11])
        triangles.append(Triangle(a, b, c))
        offset += 50
    return Mesh(triangles)
