"""Geometry kernel used for validation and for simulating mesh inputs.

The paper's verification step (Section 7) renders both the input flat CSG and
the unrolled synthesized program and compares them; it also suggests a more
rigorous Hausdorff-distance comparison.  This package provides everything
needed for that: 3D vectors and affine matrices, primitive tessellation to
triangle meshes, ASCII and binary STL I/O, point-membership classification of
CSG solids, point sampling, and a sampled (directed and symmetric) Hausdorff
distance.
"""

from repro.geometry.vec import Vec3
from repro.geometry.mat import AffineMatrix
from repro.geometry.mesh import Triangle, Mesh
from repro.geometry.stl import write_stl_ascii, write_stl_binary, read_stl
from repro.geometry.tessellate import tessellate_csg
from repro.geometry.membership import csg_contains, CsgSolid
from repro.geometry.sampling import sample_csg_surface, sample_grid
from repro.geometry.hausdorff import hausdorff_distance, directed_hausdorff

__all__ = [
    "Vec3",
    "AffineMatrix",
    "Triangle",
    "Mesh",
    "write_stl_ascii",
    "write_stl_binary",
    "read_stl",
    "tessellate_csg",
    "csg_contains",
    "CsgSolid",
    "sample_csg_surface",
    "sample_grid",
    "hausdorff_distance",
    "directed_hausdorff",
]
