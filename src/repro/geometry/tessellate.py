"""Tessellation of CSG terms to triangle meshes.

This is the "compile a CAD program to a mesh" direction of the computational
fabrication workflow described in the paper's introduction, and is what lets
the reproduction write out STL files.  Union is exact triangle-soup merging;
``Diff`` and ``Inter`` produce a conservative soup that includes both
operands' boundaries (sufficient for visualization and for simulating the
shape of mesh-decompiler inputs, and flagged as approximate — exact boolean
surface extraction is not needed anywhere in the paper's pipeline, whose
rigorous comparison path goes through point membership instead).
"""

from __future__ import annotations

from repro.geometry.membership import GeometryError, _affine_matrix
from repro.geometry.mesh import Mesh
from repro.geometry.primitives import PRIMITIVE_TESSELLATORS
from repro.lang.term import Term


def tessellate_csg(term: Term, *, segments: int = 32) -> Mesh:
    """Tessellate a flat CSG term to a triangle mesh."""
    op = term.op
    if isinstance(op, str) and op in PRIMITIVE_TESSELLATORS:
        if op == "Cylinder":
            from repro.geometry.primitives import tessellate_cylinder

            return tessellate_cylinder(segments)
        return PRIMITIVE_TESSELLATORS[op]()

    if op in ("Translate", "Scale", "Rotate"):
        child = tessellate_csg(term.children[3], segments=segments)
        return child.transformed(_affine_matrix(term))

    if op in ("Union", "Diff", "Inter"):
        left = tessellate_csg(term.children[0], segments=segments)
        right = tessellate_csg(term.children[1], segments=segments)
        return left.merged(right)

    if op == "External":
        return Mesh.empty()

    raise GeometryError(f"cannot tessellate operator {op!r}")
