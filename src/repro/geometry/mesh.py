"""Triangle meshes.

Triangle meshes (STL) are both the *origin* of the paper's flat CSG inputs
(meshes are decompiled to CSG by prior work) and the *target* of its
verification step (render both programs, compare).  We keep meshes as a flat
list of triangles, which is exactly what STL stores, and provide the handful
of operations the reproduction needs: transformation, merging, bounding
boxes, surface area, and point sampling hooks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.geometry.mat import AffineMatrix
from repro.geometry.vec import Vec3


@dataclass(frozen=True)
class Triangle:
    """A single oriented triangle."""

    a: Vec3
    b: Vec3
    c: Vec3

    def normal(self) -> Vec3:
        """Unit normal (right-hand rule); zero-area triangles get a zero normal."""
        n = (self.b - self.a).cross(self.c - self.a)
        length = n.norm()
        if length == 0.0:
            return Vec3.zero()
        return n / length

    def area(self) -> float:
        return (self.b - self.a).cross(self.c - self.a).norm() / 2.0

    def centroid(self) -> Vec3:
        return (self.a + self.b + self.c) / 3.0

    def transformed(self, matrix: AffineMatrix) -> "Triangle":
        return Triangle(matrix.apply(self.a), matrix.apply(self.b), matrix.apply(self.c))

    def vertices(self) -> Tuple[Vec3, Vec3, Vec3]:
        return (self.a, self.b, self.c)

    def sample_points(self, count: int) -> List[Vec3]:
        """Deterministically sample ``count`` points on the triangle.

        Uses a low-discrepancy barycentric lattice so validation is
        reproducible without a random seed.
        """
        points: List[Vec3] = []
        if count <= 0:
            return points
        golden = 0.6180339887498949
        for i in range(count):
            u = (i * golden) % 1.0
            v = ((i + 1) * golden * golden) % 1.0
            if u + v > 1.0:
                u, v = 1.0 - u, 1.0 - v
            w = 1.0 - u - v
            points.append(self.a * w + self.b * u + self.c * v)
        return points


@dataclass
class Mesh:
    """A triangle soup with convenience constructors and queries."""

    triangles: List[Triangle] = field(default_factory=list)

    # -- construction ----------------------------------------------------------

    @staticmethod
    def empty() -> "Mesh":
        return Mesh([])

    @staticmethod
    def from_triangles(triangles: Iterable[Triangle]) -> "Mesh":
        return Mesh(list(triangles))

    def merged(self, other: "Mesh") -> "Mesh":
        return Mesh(self.triangles + other.triangles)

    def transformed(self, matrix: AffineMatrix) -> "Mesh":
        return Mesh([t.transformed(matrix) for t in self.triangles])

    def add_quad(self, a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> None:
        """Add a planar quad as two triangles (a, b, c, d counter-clockwise)."""
        self.triangles.append(Triangle(a, b, c))
        self.triangles.append(Triangle(a, c, d))

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.triangles)

    def __iter__(self) -> Iterator[Triangle]:
        return iter(self.triangles)

    def is_empty(self) -> bool:
        return not self.triangles

    def surface_area(self) -> float:
        return sum(t.area() for t in self.triangles)

    def vertices(self) -> List[Vec3]:
        verts: List[Vec3] = []
        for t in self.triangles:
            verts.extend(t.vertices())
        return verts

    def bounding_box(self) -> Tuple[Vec3, Vec3]:
        """Axis-aligned bounding box as (min corner, max corner)."""
        if not self.triangles:
            return (Vec3.zero(), Vec3.zero())
        xs, ys, zs = [], [], []
        for v in self.vertices():
            xs.append(v.x)
            ys.append(v.y)
            zs.append(v.z)
        return (Vec3(min(xs), min(ys), min(zs)), Vec3(max(xs), max(ys), max(zs)))

    def sample_surface(self, points_per_unit_area: float = 1.0, min_per_triangle: int = 1) -> List[Vec3]:
        """Sample points across the whole surface, proportional to area."""
        samples: List[Vec3] = []
        for t in self.triangles:
            count = max(min_per_triangle, int(math.ceil(t.area() * points_per_unit_area)))
            samples.extend(t.sample_points(count))
        return samples
