"""Nested-loop inference (paper Section 5).

Function inference handles singly-indexed repetition; this component looks
for doubly- and triply-nested loops over the *outermost* affine layer of a
folded list.  It follows the paper's two-step search:

* **regular loops** — the list length ``n`` is m-factorized (m = 2, 3, trivial
  factors removed); each factorization yields m-index-sets (the Cartesian
  product of the per-dimension ranges, Fig. 13); the list elements are paired
  with those index tuples and the multilinear solver is asked for a closed
  form of every vector component.  On success a nested ``Fold`` of ``Fun``\\ s
  over explicit index lists is built (the Fig. 14 / Fig. 17 output shape) and
  merged into the list's e-class.
* **irregular loops** — when no regular factorization fits, elements are
  regrouped by a shared coordinate of the outer vector; groups that admit a
  closed form become inner loops and the groups are concatenated.

Both shapes evaluate (via the map-concatenate convention of the LambdaCAD
evaluator) to a list equal, up to reordering, to the original — which is
semantics-preserving under the commutative fold operators they appear in.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.cad.build import concat, cons_list, fold, fun, int_list, mapi, nil, repeat
from repro.core.config import SynthesisConfig
from repro.core.determinize import Determinizer
from repro.core.function_inference import InferenceRecord
from repro.core.lists import ListReadError, find_fold_matches, read_list_elements
from repro.core.listmanip import group_by_component, sort_elements
from repro.csg.ops import affine_chain, is_affine
from repro.egraph.egraph import EGraph
from repro.lang.term import Term
from repro.solvers.closed_form import FunctionSolver
from repro.solvers.multilinear import fit_multilinear


# ---------------------------------------------------------------------------
# m-factorization and m-index-sets (paper Fig. 13)
# ---------------------------------------------------------------------------

def m_factorizations(n: int, m: int) -> List[Tuple[int, ...]]:
    """All ways to write ``n`` as an ordered product of ``m`` non-trivial factors.

    Trivial factors (1 and ``n`` itself in any position) are removed, as in
    the paper: they do not lead to interesting nested loops.
    """
    if m < 1 or n < 2:
        return []
    if m == 1:
        return [(n,)]
    results: List[Tuple[int, ...]] = []
    for first in range(2, n // 2 + 1):
        if n % first != 0:
            continue
        for rest in m_factorizations(n // first, m - 1):
            candidate = (first,) + rest
            if all(factor >= 2 for factor in candidate):
                results.append(candidate)
    # Deduplicate while keeping order (unique_perms in the paper).
    unique: List[Tuple[int, ...]] = []
    for candidate in results:
        if candidate not in unique:
            unique.append(candidate)
    return unique


def m_index_set(dimensions: Sequence[int]) -> List[Tuple[int, ...]]:
    """The Cartesian-product index tuples for the given loop bounds.

    For dimensions ``(2, 2)`` this returns ``[(0,0), (0,1), (1,0), (1,1)]`` —
    i.e. the two paper index sets ``[0;0;1;1]`` and ``[0;1;0;1]`` read
    column-wise.
    """
    ranges = [range(d) for d in dimensions]
    return [tuple(t) for t in itertools.product(*ranges)]


# ---------------------------------------------------------------------------
# Loop inference proper
# ---------------------------------------------------------------------------

@dataclass
class LoopInference:
    """Searches folded lists for nested-loop structure."""

    egraph: EGraph
    config: SynthesisConfig
    records: List[InferenceRecord] = field(default_factory=list)

    #: Index variable names per nesting level.
    _INDEX_NAMES = ("i", "j", "k")

    def run(self) -> int:
        """Infer nested loops for all folds; returns the number of successes.

        Folds are processed longest first.  A fold is skipped only when a
        superset fold was already solved by a *regular* nested loop (the
        sub-list is then just a slice of that loop); irregular successes do
        not suppress sub-folds, because a sub-list may still admit the more
        useful regular factorization (the dice's 3x3 pip grid inside a larger
        irregular face list is the canonical example).  Every attempt here is
        cheap — a few least-squares fits — so there is no quadratic blow-up.
        """
        determinizer = Determinizer(self.egraph)
        work = []
        for _fold_class, function_class, _acc, list_class in find_fold_matches(self.egraph):
            if not self._commutative_function(function_class):
                continue
            try:
                element_classes = read_list_elements(self.egraph, list_class)
            except ListReadError:
                continue
            if len(element_classes) < 4:
                continue
            work.append((list_class, element_classes))
        work.sort(key=lambda item: -len(item[1]))

        successes = 0
        regular_covered: List[frozenset] = []
        for list_class, element_classes in work:
            element_set = frozenset(element_classes)
            if any(element_set <= done for done in regular_covered):
                continue
            built = None
            regular = False
            for determinized in determinizer.determinize_all(element_classes, max_variants=3):
                elements = sort_elements(determinized.elements)
                built = self._infer_regular(elements)
                regular = built is not None
                if built is None:
                    built = self._infer_irregular(elements)
                if built is not None:
                    break
            if built is None:
                continue
            term, record = built
            new_id = self.egraph.add_term(term)
            self.egraph.merge(list_class, new_id)
            record.list_class = self.egraph.find(list_class)
            self.records.append(record)
            if regular:
                regular_covered.append(element_set)
            successes += 1
        return successes

    # -- shared helpers ---------------------------------------------------------------

    def _commutative_function(self, function_class: int) -> bool:
        for enode in self.egraph.nodes(function_class):
            if enode.is_leaf and enode.op in ("Union", "Inter"):
                return True
        return False

    def _outer_layers(
        self, elements: Sequence[Term]
    ) -> Optional[Tuple[str, List[Tuple[float, float, float]], Term, List[Tuple[str, Tuple[float, float, float]]]]]:
        """The outermost *varying* affine layer of a uniform element list.

        Returns ``(op, vectors, remainder, constant_wrappers)`` where
        ``constant_wrappers`` are leading affine layers that are identical
        across every element (e.g. an identical ``Scale`` the determinizer
        happened to put outermost); they are re-applied around the loop body.
        The layer below the varying one must be identical across elements,
        otherwise a single loop body cannot reproduce the list.
        """
        if not elements or not all(is_affine(e) for e in elements):
            return None

        def layer_of(element: Term, depth: int) -> Optional[Term]:
            current = element
            for _ in range(depth):
                if not is_affine(current):
                    return None
                current = current.children[3]
            return current

        constant_wrappers: List[Tuple[str, Tuple[float, float, float]]] = []
        depth = 0
        while True:
            heads = [layer_of(e, depth) for e in elements]
            if any(h is None or not is_affine(h) for h in heads):
                return None
            op = heads[0].op
            if any(h.op != op for h in heads):
                return None
            vectors = [affine_chain(h)[0][0][1] for h in heads]
            first_vector = vectors[0]
            constant_tolerance = max(self.config.epsilon, 1e-9)
            if all(
                all(abs(v[k] - first_vector[k]) <= constant_tolerance for k in range(3))
                for v in vectors
            ):
                # A constant layer: peel it off and look one level deeper.
                constant_wrappers.append((str(op), first_vector))
                depth += 1
                if depth > 6:
                    return None
                continue
            remainders = [h.children[3] for h in heads]
            first = remainders[0]
            if any(r != first for r in remainders):
                return None
            return str(op), vectors, first, constant_wrappers

    # -- regular nested loops -----------------------------------------------------------

    def _infer_regular(
        self, elements: Sequence[Term]
    ) -> Optional[Tuple[Term, InferenceRecord]]:
        outer = self._outer_layers(elements)
        if outer is None:
            return None
        op, vectors, remainder, wrappers = outer
        count = len(elements)
        max_nesting = min(self.config.max_loop_nesting, 3)

        for nesting in range(2, max_nesting + 1):
            for dimensions in m_factorizations(count, nesting):
                index_tuples = m_index_set(dimensions)
                forms = []
                feasible = True
                for component in range(3):
                    values = [v[component] for v in vectors]
                    form = fit_multilinear(index_tuples, values, self.config.epsilon)
                    if form is None:
                        feasible = False
                        break
                    forms.append(form)
                if not feasible:
                    continue
                term = self._build_nested_fold(op, forms, remainder, dimensions, wrappers)
                record = InferenceRecord(
                    kind="nested-loop",
                    loop_bounds=tuple(dimensions),
                    function_kinds=tuple(f.kind for f in forms),
                    list_class=-1,
                    nesting=len(dimensions),
                )
                return term, record
        return None

    @staticmethod
    def _wrap_constant_layers(body: Term, wrappers: Sequence[Tuple[str, Tuple[float, float, float]]]) -> Term:
        """Re-apply peeled constant affine layers around a loop body."""
        for op, vector in reversed(list(wrappers)):
            body = Term(
                op,
                (Term.num(vector[0]), Term.num(vector[1]), Term.num(vector[2]), body),
            )
        return body

    def _build_nested_fold(
        self,
        op: str,
        forms: Sequence,
        remainder: Term,
        dimensions: Sequence[int],
        wrappers: Sequence[Tuple[str, Tuple[float, float, float]]] = (),
    ) -> Term:
        """The Fig. 14 output shape: nested Folds of Funs over index lists."""
        index_vars = [Term(self._INDEX_NAMES[level]) for level in range(len(dimensions))]
        x, y, z = (form.to_term(index_vars) for form in forms)
        body: Term = Term(op, (x, y, z, remainder))
        body = self._wrap_constant_layers(body, wrappers)
        # Innermost level first: Fold (Fun k -> body, Nil, [0..d-1]).
        for level in range(len(dimensions) - 1, -1, -1):
            body = fold(
                fun((self._INDEX_NAMES[level],), body),
                nil(),
                int_list(range(dimensions[level])),
            )
        return body

    # -- irregular loops ------------------------------------------------------------------

    def _infer_irregular(
        self, elements: Sequence[Term]
    ) -> Optional[Tuple[Term, InferenceRecord]]:
        outer = self._outer_layers(elements)
        if outer is None:
            return None
        op, vectors, remainder, wrappers = outer
        solver = FunctionSolver(self.config.solver_config())

        for grouping_component in range(3):
            groups = _group_vectors_by_component(
                vectors, grouping_component, epsilon=max(self.config.epsilon, 1e-6)
            )
            if len(groups) < 2 or all(len(members) < 2 for _v, members in groups):
                continue
            sizes = {len(members) for _value, members in groups}
            if len(sizes) == 1:
                # A regular grid — the regular path either handled it or the
                # data truly has no multilinear form; grouping will not help.
                continue
            parts: List[Term] = []
            kinds: List[str] = []
            usable = True
            for _value, members in groups:
                if len(members) < 2:
                    parts.append(cons_list([elements[index] for _v, index in members]))
                    continue
                member_vectors = [vector for vector, _index in members]
                function = solver.solve(member_vectors, is_rotation=(op == "Rotate"))
                if function is None:
                    usable = False
                    break
                x, y, z = function.to_terms(Term("j"))
                body = Term(op, (x, y, z, Term("c")))
                body = self._wrap_constant_layers(body, wrappers)
                parts.append(mapi(fun(("j", "c"), body), repeat(remainder, len(members))))
                kinds.append(function.dominant_kind())
            if not usable or not kinds:
                continue
            combined = parts[0]
            for part in parts[1:]:
                combined = concat(combined, part)
            record = InferenceRecord(
                kind="irregular-loop",
                loop_bounds=tuple(len(members) for _v, members in groups),
                function_kinds=tuple(kinds),
                list_class=-1,
                nesting=2,
            )
            return combined, record
        return None


def _group_vectors_by_component(vectors, component: int, *, epsilon: float):
    """Group (vector, element-index) pairs by one coordinate of the vector.

    Mirrors :func:`repro.core.listmanip.group_by_component` but operates on
    the varying-layer vectors loop inference extracted (the elements' literal
    outermost layer may be a peeled constant wrapper).  Returns
    ``[(value, [(vector, index), ...]), ...]`` sorted by the shared value.
    """
    groups = []
    for index, vector in enumerate(vectors):
        value = vector[component]
        placed = False
        for key, members in groups:
            if abs(key - value) <= epsilon:
                members.append((vector, index))
                placed = True
                break
        if not placed:
            groups.append((value, [(vector, index)]))
    groups.sort(key=lambda pair: pair[0])
    return groups
