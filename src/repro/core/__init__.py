"""The Szalinski core: rewrites + arithmetic inference over an e-graph.

This package implements the paper's contribution (Sections 3–5 and the
algorithm of Fig. 5): the database of semantics-preserving syntactic
rewrites, list determinization and manipulation, closed-form function
inference, nested-loop inference, cost functions, and top-k extraction —
composed by :func:`~repro.core.pipeline.synthesize`.
"""

from repro.core.config import SynthesisConfig
from repro.core.cost import COST_FUNCTIONS, ast_size_cost_fn, reward_loops_cost_fn
from repro.core.rules import all_rules, default_rules, rules_by_category
from repro.core.pipeline import synthesize, SynthesisResult, CandidateProgram

__all__ = [
    "SynthesisConfig",
    "COST_FUNCTIONS",
    "ast_size_cost_fn",
    "reward_loops_cost_fn",
    "all_rules",
    "default_rules",
    "rules_by_category",
    "synthesize",
    "SynthesisResult",
    "CandidateProgram",
]
