"""Cost functions used during extraction (paper Sections 5.1 and 6.1).

The default cost is the number of AST nodes.  The ``reward-loops`` variant
discounts the loop combinators so that programs which expose structure win
even when the structured form is slightly larger in raw node count — this is
what lets the wardrobe benchmark expose its loops (Table 1, row
``510849:wardrobe@``).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.egraph.extract import ast_size_cost

#: Loop combinators discounted by the reward-loops cost function.
_LOOP_OPS = ("Mapi", "Map", "Fold")

#: Multiplicative discount applied to the subtree under a loop combinator.
#: A loop body is written once but describes many repetitions, so charging it
#: at a quarter of its size makes programs that expose structure win even
#: when their closed forms are verbose (the wardrobe case in Table 1).
_LOOP_BODY_DISCOUNT = 0.25


#: Default cost: one unit per AST node.  This *is* the engine-level
#: :func:`repro.egraph.extract.ast_size_cost` (same function object), so an
#: incremental :class:`~repro.egraph.extract.CostAnalysis` registered under
#: either name is recognized by every extractor — the determinizer's
#: ast-size extractions reuse the analysis the runner maintained.
ast_size_cost_fn = ast_size_cost


def reward_loops_cost_fn(op: object, child_costs: Sequence[float]) -> float:
    """Alternative cost that rewards programs containing loop combinators.

    Genuine loops charge their children at a discount; every other node costs
    the same as under :func:`ast_size_cost_fn`, so programs without loops are
    ranked identically by both functions.  A ``Fold`` only counts as a loop
    when its combining function is an abstraction (``Fun``), which is
    detectable here by its cost: a bare ``Union``/``Inter`` function is a
    single node (cost 1), so ``Fold (Union, Empty, <literal list>)`` — which
    merely re-associates the input — receives no discount.
    """
    if op in ("Mapi", "Map"):
        return 1.0 + _LOOP_BODY_DISCOUNT * sum(child_costs)
    if op == "Fold" and len(child_costs) == 3 and child_costs[0] > 1.5:
        return 1.0 + _LOOP_BODY_DISCOUNT * sum(child_costs)
    return 1.0 + sum(child_costs)


#: Registry keyed by the names used in the paper / the CLI.
COST_FUNCTIONS: Dict[str, Callable[[object, Sequence[float]], float]] = {
    "ast-size": ast_size_cost_fn,
    "reward-loops": reward_loops_cost_fn,
}


def get_cost_function(name: str) -> Callable[[object, Sequence[float]], float]:
    """Look up a cost function by name, raising a helpful error otherwise."""
    try:
        return COST_FUNCTIONS[name]
    except KeyError as exc:
        known = ", ".join(sorted(COST_FUNCTIONS))
        raise KeyError(f"unknown cost function {name!r}; known: {known}") from exc
