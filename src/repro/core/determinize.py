"""List determinization (paper Section 4.2, Fig. 5 line 5).

After rewriting, each element of a folded list lives in an e-class with many
equivalent variants — the affine reordering rules alone can create
exponentially many orderings of a nested transformation chain.  The function
solvers need one *concrete* affine-transformed CAD per element, and the
chains must be *uniform* across elements (same transformation types, in the
same order) or the layer-by-layer vector extraction is meaningless.

The determinizer implements the paper's heuristic: pick a representative for
the first element, record its chain signature (the sequence of affine
operators from the outside in), and then force every other element to a
variant with the same signature, searching its e-class for one.  Elements
whose class has no variant with that signature cause the whole signature to
be abandoned and the next candidate signature to be tried.

The affine-chain vocabulary, the per-term signature, and the
longest-first candidate ordering all come from the shared semantic
normalization layer (:mod:`repro.lang.normal`) — the same definitions the
cache's semantic fingerprints are built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.egraph.egraph import EGraph, ENode
from repro.egraph.extract import Extractor, ast_size_cost
from repro.lang.normal import AFFINE_OPS, affine_signature, signature_sort_key
from repro.lang.term import Term


@dataclass
class DeterminizedList:
    """A concrete, uniform view of a folded list."""

    #: One concrete term per element, all sharing the same affine signature.
    elements: List[Term]
    #: The shared affine signature, outermost first (possibly empty).
    signature: Tuple[str, ...]
    #: E-class ids the elements came from (parallel to ``elements``).
    element_classes: List[int]

    def __len__(self) -> int:
        return len(self.elements)


class Determinizer:
    """Chooses consistent concrete variants for list elements."""

    def __init__(self, egraph: EGraph, max_signature_depth: int = 4):
        self.egraph = egraph
        self.max_signature_depth = max_signature_depth
        self._extractor = Extractor(egraph, ast_size_cost)

    # -- public ------------------------------------------------------------------

    def determinize(self, element_classes: Sequence[int]) -> Optional[DeterminizedList]:
        """Produce a uniform concrete element list, or ``None`` if impossible."""
        variants = self.determinize_all(element_classes, max_variants=1)
        return variants[0] if variants else None

    def determinize_all(
        self, element_classes: Sequence[int], max_variants: int = 4
    ) -> List[DeterminizedList]:
        """Produce up to ``max_variants`` uniform concrete views of the list.

        Different affine orderings expose different vectors to the solvers —
        only the ordering matching the design's latent structure yields
        closed forms (e.g. Fig. 10's Translate/Rotate/Scale chain), so the
        arithmetic components try each returned variant in turn.
        """
        element_classes = [self.egraph.find(c) for c in element_classes]
        if not element_classes:
            return []

        variants: List[DeterminizedList] = []
        for signature in self._candidate_signatures(element_classes[0]):
            if len(variants) >= max_variants:
                break
            elements = self._materialize_all(element_classes, signature)
            if elements is not None:
                variants.append(
                    DeterminizedList(
                        elements=elements,
                        signature=signature,
                        element_classes=list(element_classes),
                    )
                )
        return variants

    # -- candidate signatures -----------------------------------------------------

    def _candidate_signatures(self, class_id: int) -> List[Tuple[str, ...]]:
        """Affine signatures available for the first element, longest first.

        Longer signatures are preferred because they expose more layers to
        the function solver (a chain ``Translate . Rotate . Scale`` gives
        three solvable layers; its collapsed variants give fewer).
        """
        signatures = set()
        self._collect_signatures(class_id, (), signatures, set())
        ordered = sorted(signatures, key=signature_sort_key)
        return ordered or [()]

    def _collect_signatures(
        self,
        class_id: int,
        prefix: Tuple[str, ...],
        accumulator: set,
        visiting: set,
    ) -> None:
        class_id = self.egraph.find(class_id)
        if len(prefix) >= self.max_signature_depth:
            accumulator.add(prefix)
            return
        key = (class_id, prefix)
        if key in visiting:
            return
        visiting.add(key)
        accumulator.add(prefix)
        for enode in self.egraph.nodes(class_id):
            if enode.op in AFFINE_OPS and len(enode.args) == 4:
                self._collect_signatures(
                    enode.args[3], prefix + (str(enode.op),), accumulator, visiting
                )

    # -- materialization ------------------------------------------------------------

    def _materialize_all(
        self, element_classes: Sequence[int], signature: Tuple[str, ...]
    ) -> Optional[List[Term]]:
        elements = []
        for class_id in element_classes:
            term = self._materialize(class_id, signature)
            if term is None:
                return None
            elements.append(term)
        return elements

    def _materialize(self, class_id: int, signature: Tuple[str, ...]) -> Optional[Term]:
        """Extract a concrete term from ``class_id`` whose affine chain starts
        with exactly the operators of ``signature``."""
        class_id = self.egraph.find(class_id)
        if not signature:
            try:
                term = self._extractor.extract(class_id)
            except Exception:
                return None
            # Reject terms that still start with an affine operator when an
            # empty signature was requested only if no alternative exists —
            # uniformity matters more than minimality, so accept what we got.
            return term
        head = signature[0]
        for enode in self.egraph.nodes(class_id):
            if enode.op != head or len(enode.args) != 4:
                continue
            vector_terms = []
            ok = True
            for arg in enode.args[:3]:
                try:
                    vector_terms.append(self._extractor.extract(arg))
                except Exception:
                    ok = False
                    break
            if not ok:
                continue
            child = self._materialize(enode.args[3], signature[1:])
            if child is None:
                continue
            return Term(head, tuple(vector_terms) + (child,))
        return None


def chain_uniform(elements: Sequence[Term]) -> bool:
    """True when all elements share the same affine-operator signature."""
    return len({affine_signature(element) for element in elements}) <= 1
