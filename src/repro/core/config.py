"""Configuration of the synthesis pipeline.

All of the paper's knobs live here: the noise tolerance epsilon (0.001 by
default, Section 4.1), the number of returned programs k (5 in the
evaluation), the cost function name, and the resource limits that play the
role of the algorithm's ``fuel`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Tuple

from repro.egraph.runner import BackoffConfig
from repro.lang.canon import payload_fingerprint
from repro.solvers.closed_form import SolverConfig

#: The engine's scheduler defaults; mirrored here so SynthesisConfig and
#: Runner cannot drift apart.
_DEFAULT_BACKOFF = BackoffConfig()


@dataclass(frozen=True)
class SynthesisConfig:
    """Knobs for :func:`repro.core.pipeline.synthesize`."""

    #: Tolerance used by the arithmetic solvers on every observation.
    epsilon: float = 1e-3

    #: How many candidate programs to return (the paper uses top-5).
    top_k: int = 5

    #: Cost function name: ``"ast-size"`` (default) or ``"reward-loops"``.
    cost_function: str = "ast-size"

    #: Iterations of the *outer* loop of Fig. 5.  One iteration was enough
    #: for every model in the paper's evaluation.
    main_iterations: int = 1

    #: Limits of the inner equality-saturation runner ("fuel").  A dozen
    #: iterations saturate the affine rules; the incremental fold rules keep
    #: firing longer on long chains, but the big-step chain-fold rule already
    #: exposes the fully folded view in the first iteration, so further
    #: iterations only add redundant partially-folded variants.
    rewrite_iterations: int = 12
    max_enodes: int = 200_000
    max_seconds: float = 60.0

    #: Backoff-scheduler knobs of the two-phase runner: a rule producing more
    #: than ``rule_match_limit`` matches in one search phase is banned for
    #: ``rule_ban_length`` iterations, and both double on every re-offence.
    #: The default threshold is high enough that the paper's benchmark suite
    #: never triggers a ban; lower it to tame expansive rule sets.
    rule_match_limit: int = _DEFAULT_BACKOFF.match_limit
    rule_ban_length: int = _DEFAULT_BACKOFF.ban_length

    #: Use the compiled-trie incremental e-matcher in the saturation runner
    #: (only classes dirtied since the previous iteration are re-searched).
    #: Match semantics are identical to the naive sweep — the differential
    #: suite in ``tests/test_search_differential.py`` locks this down — so
    #: the knob exists for ablation/debugging, not correctness.
    incremental_search: bool = True

    #: Skip apply-phase re-application of matches that already executed
    #: under an identical canonical fingerprint (the runner's applied-match
    #: ledger).  Skipped matches are exactly the ones whose re-application
    #: would merge a class with itself, so results are identical either way
    #: (``tests/test_apply_dedup.py`` pins the parity) — an
    #: ablation/debugging knob like ``incremental_search``.
    apply_dedup: bool = True

    #: Maintain the extraction :class:`~repro.egraph.extract.CostAnalysis`
    #: incrementally during saturation (registered on the e-graph by the
    #: runner), so post-saturation single-best extraction — including every
    #: determinizer query inside the arithmetic components — reads
    #: ready-made best costs instead of recomputing a fixpoint.  Extracted
    #: terms are identical either way (``tests/test_extract_kbest.py`` pins
    #: the parity), so this is an ablation/debugging knob like
    #: ``incremental_search``.
    incremental_extraction: bool = True

    #: Search-worker processes per saturation run (0 = serial).  The runner
    #: fans the compiled trie search out over a shared-memory snapshot of
    #: the flat e-graph (:mod:`repro.egraph.parallel`); match sets are
    #: byte-identical to the serial path (``tests/test_parallel_search.py``
    #: pins the parity), so this is a pure throughput knob.  Callers running
    #: multiple concurrent jobs clamp it with
    #: :func:`repro.egraph.parallel.clamp_search_workers` so
    #: ``jobs × search_workers`` never exceeds the machine's cores.
    search_workers: int = 0

    #: Rule categories to enable (see :func:`repro.core.rules.rules_by_category`).
    rule_categories: Tuple[str, ...] = (
        "affine-lifting",
        "affine-collapsing",
        "affine-reordering",
        "folds",
        "boolean",
    )

    #: Whether to run the arithmetic components at all (useful for ablations).
    enable_function_inference: bool = True
    enable_loop_inference: bool = True
    enable_list_sorting: bool = True

    #: Maximum nesting depth attempted by loop inference (the paper supports
    #: up to three nested loops; two is what real designs need).
    max_loop_nesting: int = 3

    def solver_config(self) -> SolverConfig:
        """The arithmetic-solver configuration implied by this config."""
        return SolverConfig(epsilon=self.epsilon)

    def with_cost_function(self, name: str) -> "SynthesisConfig":
        """A copy of this config using a different cost function."""
        return replace(self, cost_function=name)

    # -- serialization (worker protocol + result cache) ------------------------

    def to_dict(self) -> Dict[str, object]:
        """All knobs as a JSON-able dict (tuples become lists)."""
        out: Dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            out[spec.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SynthesisConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are rejected loudly (a cache written by a newer version
        must not be silently reinterpreted); missing keys take the defaults.
        """
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SynthesisConfig fields: {sorted(unknown)}")
        kwargs = dict(data)
        if "rule_categories" in kwargs:
            kwargs["rule_categories"] = tuple(kwargs["rule_categories"])
        return cls(**kwargs)

    def semantic_dict(self) -> Dict[str, object]:
        """The fields that can change *what* is synthesized (cache identity).

        ``incremental_search``, ``incremental_extraction``, ``apply_dedup``,
        and ``search_workers`` are excluded: they only change how e-matching
        / best-cost bookkeeping / match re-application is scheduled (or on
        how many cores the search runs), and the differential suites pin
        their results as identical to the post-hoc computations — so all
        settings may share cache entries.  Extraction knobs that *do*
        change the output (``top_k``, ``cost_function``) stay in.
        """
        out = self.to_dict()
        out.pop("incremental_search")
        out.pop("incremental_extraction")
        out.pop("apply_dedup")
        out.pop("search_workers")
        return out

    def fingerprint(self) -> str:
        """Stable content-address of the semantically relevant fields."""
        return payload_fingerprint(self.semantic_dict())
