"""The database of semantics-preserving syntactic rewrites (paper Section 3.2).

The rules fall into the paper's four categories plus the boolean-operator
properties:

* **affine-lifting** — ``T(c) op T(c') { T(c op c')`` for every boolean
  operator and affine transformation (Fig. 8a);
* **affine-reordering** — commuting differently-typed nested affine
  transformations, recomputing their vectors (Fig. 8b);
* **affine-collapsing** — fusing same-typed nested affine transformations
  (Fig. 8c);
* **folds** — introducing ``Fold`` over ``Cons`` lists for chains of a binary
  operator (Fig. 8d);
* **boolean** — unit / idempotence properties of the set operators; the
  expansive associativity/commutativity variants live in their own category
  (``boolean-expansive``) because they grow the e-graph quickly and are not
  needed for the benchmark suite.

Rules whose right-hand sides require arithmetic on the matched vectors
(reordering, collapsing) are :class:`~repro.egraph.rewrite.DynamicRewrite`\\ s
whose appliers read numeric literals out of the matched e-classes and insert
freshly computed ones.  All of them were checked against the matrix semantics
in :mod:`repro.geometry.mat` (see ``tests/test_rules_semantics.py``), which is
the role the computer algebra system plays in the paper.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

from repro.egraph.egraph import EGraph, ENode
from repro.egraph.rewrite import BaseRewrite, DynamicRewrite, Rewrite, dynamic_rewrite, rewrite
from repro.egraph.pattern import Substitution

# ---------------------------------------------------------------------------
# Helpers for dynamic rules
# ---------------------------------------------------------------------------


def numeric_value(egraph: EGraph, class_id: int) -> Optional[float]:
    """The numeric literal represented by an e-class, if there is one."""
    for enode in egraph.nodes(class_id):
        if isinstance(enode.op, (int, float)) and not isinstance(enode.op, bool):
            return float(enode.op)
    return None


def _values(egraph: EGraph, substitution: Substitution, names: Sequence[str]) -> Optional[List[float]]:
    values: List[float] = []
    for name in names:
        value = numeric_value(egraph, substitution[name])
        if value is None:
            return None
        values.append(value)
    return values


def _add_number(egraph: EGraph, value: float) -> int:
    # Round to a fixed decimal grid before inserting: different derivations of
    # the same quantity (e.g. a/s + b/s vs (a+b)/s) otherwise differ by an ULP
    # and would breed an unbounded family of nearly-equal e-classes, blowing
    # up the e-graph.  Nine decimals is far below the solver tolerance.
    value = round(value, 9)
    if value == int(value):
        value = float(int(value))
    return egraph.add_enode(ENode(value))


def _add_affine(egraph: EGraph, op: str, vector: Sequence[float], child: int) -> int:
    args = tuple(_add_number(egraph, v) for v in vector) + (egraph.find(child),)
    return egraph.add_enode(ENode(op, args))


def _numbers_guard(names: Sequence[str]) -> Callable[[EGraph, int, Substitution], bool]:
    """A guard requiring every named hole to be a numeric literal."""

    def guard(egraph: EGraph, _class_id: int, substitution: Substitution) -> bool:
        return _values(egraph, substitution, names) is not None

    return guard


# ---------------------------------------------------------------------------
# Affine lifting (Fig. 8a):  T(c) op T(c')  {  T(c op c')
# ---------------------------------------------------------------------------


def _lifting_rules() -> List[BaseRewrite]:
    rules: List[BaseRewrite] = []
    for boolean in ("Union", "Diff", "Inter"):
        for affine in ("Translate", "Scale", "Rotate"):
            name = f"lift-{affine.lower()}-{boolean.lower()}"
            lhs = (
                f"({boolean} ({affine} ?x ?y ?z ?a) ({affine} ?x ?y ?z ?b))"
            )
            rhs = f"({affine} ?x ?y ?z ({boolean} ?a ?b))"
            rules.append(rewrite(name, lhs, rhs))
    return rules


# ---------------------------------------------------------------------------
# Affine reordering (Fig. 8b)
# ---------------------------------------------------------------------------


def _rotation_matrix_z(theta: float):
    radians = math.radians(theta)
    c, s = math.cos(radians), math.sin(radians)
    return lambda x, y, z: (x * c - y * s, x * s + y * c, z)


def _rotation_matrix_y(theta: float):
    radians = math.radians(theta)
    c, s = math.cos(radians), math.sin(radians)
    return lambda x, y, z: (x * c + z * s, y, -x * s + z * c)


def _rotation_matrix_x(theta: float):
    radians = math.radians(theta)
    c, s = math.cos(radians), math.sin(radians)
    return lambda x, y, z: (x, y * c - z * s, y * s + z * c)


_AXIS_ROTATIONS = {
    "z": ("0 0 ?t", _rotation_matrix_z),
    "y": ("0 ?t 0", _rotation_matrix_y),
    "x": ("?t 0 0", _rotation_matrix_x),
}


def _reordering_rules() -> List[BaseRewrite]:
    rules: List[BaseRewrite] = []

    # Uniform scale commutes with any rotation (purely syntactic).
    rules.append(
        rewrite(
            "reorder-uniform-scale-rotate",
            "(Scale ?s ?s ?s (Rotate ?a ?b ?g ?c))",
            "(Rotate ?a ?b ?g (Scale ?s ?s ?s ?c))",
        )
    )

    # The dynamic affine rules below are ``pure``: their appliers read only
    # the numeric *values* of the bound literal classes, which sound merges
    # never change — so once applied, a match can be skipped by the runner's
    # apply-phase dedup ledger (see repro.egraph.rewrite.DynamicRewrite).

    # Scale over Translate: scale(s, translate(v, c)) = translate(s*v, scale(s, c)).
    def scale_translate(egraph: EGraph, _class_id: int, sub: Substitution) -> Optional[int]:
        values = _values(egraph, sub, ["sx", "sy", "sz", "tx", "ty", "tz"])
        if values is None:
            return None
        sx, sy, sz, tx, ty, tz = values
        inner = _add_affine(egraph, "Scale", (sx, sy, sz), sub["c"])
        return _add_affine(egraph, "Translate", (sx * tx, sy * ty, sz * tz), inner)

    rules.append(
        dynamic_rewrite(
            "reorder-scale-translate",
            "(Scale ?sx ?sy ?sz (Translate ?tx ?ty ?tz ?c))",
            scale_translate,
            pure=True,
        )
    )

    # Translate over Scale: translate(v, scale(s, c)) = scale(s, translate(v/s, c)).
    def translate_scale(egraph: EGraph, _class_id: int, sub: Substitution) -> Optional[int]:
        values = _values(egraph, sub, ["tx", "ty", "tz", "sx", "sy", "sz"])
        if values is None:
            return None
        tx, ty, tz, sx, sy, sz = values
        if sx == 0.0 or sy == 0.0 or sz == 0.0:
            return None
        inner = _add_affine(egraph, "Translate", (tx / sx, ty / sy, tz / sz), sub["c"])
        return _add_affine(egraph, "Scale", (sx, sy, sz), inner)

    rules.append(
        dynamic_rewrite(
            "reorder-translate-scale",
            "(Translate ?tx ?ty ?tz (Scale ?sx ?sy ?sz ?c))",
            translate_scale,
            pure=True,
        )
    )

    # Axis-aligned Rotate over Translate and Translate over Rotate.
    for axis, (angle_pattern, matrix_factory) in _AXIS_ROTATIONS.items():

        def rotate_translate(
            egraph: EGraph,
            _class_id: int,
            sub: Substitution,
            factory=matrix_factory,
            axis=axis,
        ) -> Optional[int]:
            values = _values(egraph, sub, ["t", "tx", "ty", "tz"])
            if values is None:
                return None
            theta, tx, ty, tz = values
            rotated = factory(theta)(tx, ty, tz)
            angle_vector = {
                "z": (0.0, 0.0, theta),
                "y": (0.0, theta, 0.0),
                "x": (theta, 0.0, 0.0),
            }[axis]
            inner = _add_affine(egraph, "Rotate", angle_vector, sub["c"])
            return _add_affine(egraph, "Translate", rotated, inner)

        rules.append(
            dynamic_rewrite(
                f"reorder-rotate{axis}-translate",
                f"(Rotate {angle_pattern} (Translate ?tx ?ty ?tz ?c))",
                rotate_translate,
                pure=True,
            )
        )

        def translate_rotate(
            egraph: EGraph,
            _class_id: int,
            sub: Substitution,
            factory=matrix_factory,
            axis=axis,
        ) -> Optional[int]:
            values = _values(egraph, sub, ["tx", "ty", "tz", "t"])
            if values is None:
                return None
            tx, ty, tz, theta = values
            # translate(v) . rotate(theta) = rotate(theta) . translate(R(-theta) v)
            unrotated = factory(-theta)(tx, ty, tz)
            angle_vector = {
                "z": (0.0, 0.0, theta),
                "y": (0.0, theta, 0.0),
                "x": (theta, 0.0, 0.0),
            }[axis]
            inner = _add_affine(egraph, "Translate", unrotated, sub["c"])
            return _add_affine(egraph, "Rotate", angle_vector, inner)

        rules.append(
            dynamic_rewrite(
                f"reorder-translate-rotate{axis}",
                f"(Translate ?tx ?ty ?tz (Rotate {angle_pattern} ?c))",
                translate_rotate,
                pure=True,
            )
        )

    return rules


# ---------------------------------------------------------------------------
# Affine collapsing (Fig. 8c)
# ---------------------------------------------------------------------------


def _collapsing_rules() -> List[BaseRewrite]:
    rules: List[BaseRewrite] = []

    def collapse_translate(egraph: EGraph, _class_id: int, sub: Substitution) -> Optional[int]:
        values = _values(egraph, sub, ["x2", "y2", "z2", "x1", "y1", "z1"])
        if values is None:
            return None
        x2, y2, z2, x1, y1, z1 = values
        return _add_affine(egraph, "Translate", (x1 + x2, y1 + y2, z1 + z2), sub["c"])

    rules.append(
        dynamic_rewrite(
            "collapse-translate",
            "(Translate ?x2 ?y2 ?z2 (Translate ?x1 ?y1 ?z1 ?c))",
            collapse_translate,
            pure=True,
        )
    )

    def collapse_scale(egraph: EGraph, _class_id: int, sub: Substitution) -> Optional[int]:
        values = _values(egraph, sub, ["x2", "y2", "z2", "x1", "y1", "z1"])
        if values is None:
            return None
        x2, y2, z2, x1, y1, z1 = values
        return _add_affine(egraph, "Scale", (x1 * x2, y1 * y2, z1 * z2), sub["c"])

    rules.append(
        dynamic_rewrite(
            "collapse-scale",
            "(Scale ?x2 ?y2 ?z2 (Scale ?x1 ?y1 ?z1 ?c))",
            collapse_scale,
            pure=True,
        )
    )

    for axis, (angle_pattern, _factory) in _AXIS_ROTATIONS.items():
        outer_pattern = angle_pattern.replace("?t", "?t2")
        inner_pattern = angle_pattern.replace("?t", "?t1")

        def collapse_rotate(
            egraph: EGraph, _class_id: int, sub: Substitution, axis=axis
        ) -> Optional[int]:
            values = _values(egraph, sub, ["t2", "t1"])
            if values is None:
                return None
            total = values[0] + values[1]
            angle_vector = {
                "z": (0.0, 0.0, total),
                "y": (0.0, total, 0.0),
                "x": (total, 0.0, 0.0),
            }[axis]
            return _add_affine(egraph, "Rotate", angle_vector, sub["c"])

        rules.append(
            dynamic_rewrite(
                f"collapse-rotate-{axis}",
                f"(Rotate {outer_pattern} (Rotate {inner_pattern} ?c))",
                collapse_rotate,
                pure=True,
            )
        )

    return rules


# ---------------------------------------------------------------------------
# Fold introduction (Fig. 8d)
# ---------------------------------------------------------------------------


def _fold_rules() -> List[BaseRewrite]:
    rules: List[BaseRewrite] = []
    for boolean in ("Union", "Inter"):
        lower = boolean.lower()
        rules.append(
            rewrite(
                f"fold-intro-{lower}",
                f"({boolean} ?x ?y)",
                f"(Fold {boolean} Empty (Cons ?x (Cons ?y Nil)))",
            )
        )
        rules.append(
            rewrite(
                f"fold-cons-{lower}",
                f"({boolean} ?x (Fold {boolean} ?acc ?zs))",
                f"(Fold {boolean} ?acc (Cons ?x ?zs))",
            )
        )
        rules.append(
            rewrite(
                f"fold-snoc-{lower}",
                f"({boolean} (Fold {boolean} ?acc ?zs) ?x)",
                f"(Fold {boolean} ?acc (Concat ?zs (Cons ?x Nil)))",
            )
        )
        rules.append(_chain_fold_rule(boolean))
    return rules


def _walk_chain(egraph: EGraph, first: int, rest: int, boolean: str) -> List[int]:
    """The element classes of the right-nested ``boolean`` chain at a match.

    Follows, from ``rest`` downward, the first ``(boolean _ _)`` e-node of
    each class, accumulating left operands until a class without one (the
    final element), a cycle, or the length cap.  This walk is the *only*
    e-graph state the chain-fold applier reads beyond the match itself, so
    its result doubles as the rule's dedup content key.
    """
    elements: List[int] = [egraph.find(first)]
    current = egraph.find(rest)
    visited = {current}
    while True:
        next_pair = None
        for enode in egraph.nodes(current):
            if enode.op == boolean and len(enode.args) == 2:
                next_pair = (egraph.find(enode.args[0]), egraph.find(enode.args[1]))
                break
        if next_pair is None:
            break
        elements.append(next_pair[0])
        current = next_pair[1]
        if current in visited or len(elements) > 10_000:
            break
        visited.add(current)
    elements.append(current)
    return elements


def _chain_fold_rule(boolean: str) -> DynamicRewrite:
    """Fold an entire right-nested chain of a binary operator in one firing.

    The small-step rules above fold a chain one element per saturation
    iteration; a 60-tooth gear would therefore need 60 iterations.  This
    big-step rule is derivable from them (it is the composition of one
    fold-intro with repeated fold-cons firings) and exists purely so the
    engine reaches the fully folded view within a couple of iterations.

    The rule is impure — the walk enumerates whatever chain e-nodes
    currently exist — but its ``content_key`` (the walked element list)
    captures everything the applier reads, so the runner's ledger can skip
    the per-epoch rescan of chains whose class contents are unchanged.
    """

    def applier(egraph: EGraph, _class_id: int, sub: Substitution) -> Optional[int]:
        elements = _walk_chain(egraph, sub["x"], sub["y"], boolean)
        if len(elements) < 3:
            return None  # the small-step rules cover pairs
        spine = egraph.add_enode(ENode("Nil"))
        for element in reversed(elements):
            spine = egraph.add_enode(ENode("Cons", (element, spine)))
        function = egraph.add_enode(ENode(boolean))
        accumulator = egraph.add_enode(ENode("Empty"))
        return egraph.add_enode(ENode("Fold", (function, accumulator, spine)))

    def content_key(egraph: EGraph, _class_id: int, sub: Substitution) -> tuple:
        return tuple(_walk_chain(egraph, sub["x"], sub["y"], boolean))

    return dynamic_rewrite(
        f"fold-chain-{boolean.lower()}",
        f"({boolean} ?x ?y)",
        applier,
        content_key=content_key,
    )


# ---------------------------------------------------------------------------
# Boolean-operator properties
# ---------------------------------------------------------------------------


def _boolean_rules() -> List[BaseRewrite]:
    return [
        rewrite("union-empty-right", "(Union ?x Empty)", "?x"),
        rewrite("union-empty-left", "(Union Empty ?x)", "?x"),
        rewrite("diff-empty-right", "(Diff ?x Empty)", "?x"),
        rewrite("diff-empty-left", "(Diff Empty ?x)", "Empty"),
        rewrite("union-idempotent", "(Union ?x ?x)", "?x"),
        rewrite("inter-idempotent", "(Inter ?x ?x)", "?x"),
    ]


def _boolean_expansive_rules() -> List[BaseRewrite]:
    return [
        rewrite(
            "union-assoc",
            "(Union (Union ?a ?b) ?c)",
            "(Union ?a (Union ?b ?c))",
        ),
        rewrite("union-comm", "(Union ?a ?b)", "(Union ?b ?a)"),
        rewrite("inter-comm", "(Inter ?a ?b)", "(Inter ?b ?a)"),
        rewrite(
            "inter-assoc",
            "(Inter (Inter ?a ?b) ?c)",
            "(Inter ?a (Inter ?b ?c))",
        ),
    ]


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def rules_by_category() -> Dict[str, List[BaseRewrite]]:
    """All rewrite rules grouped by category."""
    return {
        "affine-lifting": _lifting_rules(),
        "affine-reordering": _reordering_rules(),
        "affine-collapsing": _collapsing_rules(),
        "folds": _fold_rules(),
        "boolean": _boolean_rules(),
        "boolean-expansive": _boolean_expansive_rules(),
    }


def default_rules(categories: Optional[Sequence[str]] = None) -> List[BaseRewrite]:
    """The rule set used by the synthesis pipeline.

    ``categories`` defaults to every category except ``boolean-expansive``.
    """
    by_category = rules_by_category()
    if categories is None:
        categories = [c for c in by_category if c != "boolean-expansive"]
    rules: List[BaseRewrite] = []
    for category in categories:
        if category not in by_category:
            raise KeyError(f"unknown rule category {category!r}")
        rules.extend(by_category[category])
    return rules


def all_rules() -> List[BaseRewrite]:
    """Every rule in the database, including the expansive boolean rules."""
    rules: List[BaseRewrite] = []
    for category_rules in rules_by_category().values():
        rules.extend(category_rules)
    return rules
