"""The main Szalinski synthesis loop (paper Fig. 5).

``synthesize`` takes a flat CSG term and returns the top-k equivalent
LambdaCAD programs:

1. build an e-graph from the input AST;
2. until the fuel runs out (one outer iteration by default, as in the paper):
   a. apply the syntactic rewrites to saturation (uninterpreted component),
   b. determinize folded lists, reorder them, and run the arithmetic
      components — closed-form function inference and nested-loop
      inference — which merge ``Mapi``/``Fold``-based e-nodes back into the
      e-graph;
3. extract the top-k programs under the configured cost function.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cad.ops import uses_loops
from repro.core.config import SynthesisConfig
from repro.core.cost import get_cost_function
from repro.core.function_inference import FunctionInference, InferenceRecord
from repro.core.loop_inference import LoopInference
from repro.core.rules import default_rules
from repro.csg.metrics import TermMetrics, measure
from repro.egraph.egraph import EGraph
from repro.egraph.extract import CostAnalysis, TopKExtractor, ast_size_cost
from repro.egraph.pattern import CompiledRuleSet
from repro.egraph.runner import BackoffConfig, Runner, RunnerLimits, RunReport
from repro.lang.canon import canonical_term_text, term_from_canonical
from repro.lang.term import Term
from repro.obs.trace import NULL_TRACER


@dataclass(frozen=True)
class CandidateProgram:
    """One extracted program with its rank (1-based) and cost."""

    rank: int
    cost: float
    term: Term

    @property
    def has_loops(self) -> bool:
        """True when the program exposes structure via Fold/Map/Mapi/Repeat."""
        return uses_loops(self.term)

    def to_dict(self) -> dict:
        """JSON-able snapshot; the term is stored as canonical s-expression text."""
        return {"rank": self.rank, "cost": self.cost, "term": canonical_term_text(self.term)}

    @staticmethod
    def from_dict(data: dict) -> "CandidateProgram":
        """Rebuild a candidate from :meth:`to_dict` output."""
        return CandidateProgram(
            rank=data["rank"], cost=data["cost"], term=term_from_canonical(data["term"])
        )


@dataclass
class SynthesisResult:
    """Everything the pipeline produced for one input model."""

    input_term: Term
    candidates: List[CandidateProgram]
    inference_records: List[InferenceRecord] = field(default_factory=list)
    run_reports: List[RunReport] = field(default_factory=list)
    seconds: float = 0.0
    #: Wall-clock seconds of the final extraction phase alone (top-k over
    #: the saturated e-graph); part of ``seconds``.
    extract_seconds: float = 0.0
    config: Optional[SynthesisConfig] = None

    # -- accessors -----------------------------------------------------------------

    @property
    def best(self) -> CandidateProgram:
        """The lowest-cost candidate."""
        return self.candidates[0]

    def best_structured(self) -> Optional[CandidateProgram]:
        """The highest-ranked candidate that exposes loops, if any."""
        for candidate in self.candidates:
            if candidate.has_loops:
                return candidate
        return None

    def structured_rank(self) -> Optional[int]:
        """Rank (1-based) of the first structured candidate (Table 1 column r)."""
        structured = self.best_structured()
        return None if structured is None else structured.rank

    def output_term(self) -> Term:
        """The program reported in Table 1: the structured one when it exists."""
        structured = self.best_structured()
        return (structured or self.best).term

    # -- metrics -------------------------------------------------------------------

    def input_metrics(self) -> TermMetrics:
        return measure(self.input_term)

    def output_metrics(self) -> TermMetrics:
        return measure(self.output_term())

    def size_reduction(self) -> float:
        """Fractional node-count reduction of the output vs the input."""
        return self.output_metrics().size_reduction_vs(self.input_metrics())

    def exposes_structure(self) -> bool:
        """True when any top-k candidate contains loops."""
        return self.best_structured() is not None

    def loop_summary(self) -> str:
        """The Table 1 ``n-l`` column: loop nests of the reported output program."""
        from repro.core.analysis import find_loops

        loops = find_loops(self.output_term())
        if not loops:
            return "-"
        best = max(loops, key=lambda loop: (loop.nesting, max(loop.bounds)))
        return best.label()

    def function_summary(self) -> str:
        """The Table 1 ``f`` column: function classes used by the output program."""
        from repro.core.analysis import function_kinds

        kinds = function_kinds(self.output_term())
        return ", ".join(kinds) or "-"

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-able snapshot of the whole result.

        Terms are stored as canonical s-expression text (exact float
        round-trip), so ``from_dict(to_dict())`` reproduces every metric,
        summary, and candidate this result can report.  This is the format
        the batch service's workers ship across process boundaries and the
        content-addressed disk cache persists.
        """
        return {
            "input_term": canonical_term_text(self.input_term),
            "candidates": [candidate.to_dict() for candidate in self.candidates],
            "inference_records": [record.to_dict() for record in self.inference_records],
            "run_reports": [report.to_dict() for report in self.run_reports],
            "seconds": self.seconds,
            "extract_seconds": self.extract_seconds,
            "config": self.config.to_dict() if self.config is not None else None,
        }

    @staticmethod
    def from_dict(data: dict) -> "SynthesisResult":
        """Rebuild a result from :meth:`to_dict` output."""
        from repro.core.config import SynthesisConfig

        config = data.get("config")
        return SynthesisResult(
            input_term=term_from_canonical(data["input_term"]),
            candidates=[CandidateProgram.from_dict(c) for c in data["candidates"]],
            inference_records=[
                InferenceRecord.from_dict(r) for r in data.get("inference_records", [])
            ],
            run_reports=[RunReport.from_dict(r) for r in data.get("run_reports", [])],
            seconds=data.get("seconds", 0.0),
            extract_seconds=data.get("extract_seconds", 0.0),
            config=SynthesisConfig.from_dict(config) if config is not None else None,
        )


def synthesize(
    csg: Term,
    config: Optional[SynthesisConfig] = None,
    *,
    rules: Optional[Sequence] = None,
    tracer=None,
) -> SynthesisResult:
    """Run Szalinski on a flat CSG term and return the top-k LambdaCAD programs.

    ``rules`` overrides the rewrite-rule set (used by ablation benchmarks);
    by default the rule categories named in the config are used.
    ``tracer`` (a :class:`repro.obs.trace.Tracer`) records per-phase spans:
    ``saturate`` and ``determinize`` per outer iteration (each ``saturate``
    containing per-iteration ``search``/``apply``/``rebuild`` children via
    the runner), then ``extract``.  The caller owns the enclosing root span
    (the worker wraps everything in a ``job`` span); when ``tracer`` is
    omitted the shared null tracer makes every span a no-op.
    """
    config = config or SynthesisConfig()
    tracer = NULL_TRACER if tracer is None else tracer
    start = time.perf_counter()

    with tracer.span("setup") as setup_span:
        egraph = EGraph()
        root = egraph.add_term(csg)

        rule_set = (
            list(rules) if rules is not None else default_rules(list(config.rule_categories))
        )
        limits = RunnerLimits(
            max_iterations=config.rewrite_iterations,
            max_enodes=config.max_enodes,
            max_seconds=config.max_seconds,
        )
        backoff = BackoffConfig(
            match_limit=config.rule_match_limit,
            ban_length=config.rule_ban_length,
        )
        # Compile the rule patterns into the shared discrimination trie once;
        # every saturation run of the outer loop reuses it.
        compiled = CompiledRuleSet(rule_set) if config.incremental_search else None
        # The incremental cost analysis rides along during saturation (the
        # runner registers it): single-best extraction — extract_any and every
        # determinizer query inside the arithmetic components — then reads
        # ready-made (best cost, witness) pairs instead of recomputing a
        # worklist fixpoint per extractor.
        analyses = [CostAnalysis(ast_size_cost)] if config.incremental_extraction else []
        if setup_span is not None:
            setup_span.update({"rules": len(rule_set), "enodes": egraph.total_enodes})

    inference_records: List[InferenceRecord] = []
    run_reports: List[RunReport] = []

    for outer in range(max(1, config.main_iterations)):
        runner = Runner(
            rule_set,
            limits,
            backoff=backoff,
            incremental=config.incremental_search,
            compiled=compiled,
            analyses=analyses,
            dedup=config.apply_dedup,
            tracer=tracer,
            search_workers=config.search_workers,
        )
        with tracer.span("saturate") as sat_span:
            run_report = runner.run(egraph)
            run_reports.append(run_report)
            if sat_span is not None:
                sat_span.update(
                    {
                        "outer_iteration": outer,
                        "iterations": len(run_report.iterations),
                        "stop_reason": run_report.stop_reason.value,
                        "enodes": egraph.total_enodes,
                        "classes": len(egraph),
                    }
                )

        with tracer.span("determinize") as det_span:
            records_before = len(inference_records)
            changed = False
            if config.enable_function_inference:
                function_inference = FunctionInference(egraph, config)
                if function_inference.run():
                    changed = True
                inference_records.extend(function_inference.records)
            if config.enable_loop_inference:
                loop_inference = LoopInference(egraph, config)
                if loop_inference.run():
                    changed = True
                inference_records.extend(loop_inference.records)
            egraph.rebuild()
            if det_span is not None:
                det_span.update(
                    {
                        "outer_iteration": outer,
                        "changed": changed,
                        "inference_records": len(inference_records) - records_before,
                    }
                )
        if not changed:
            break

    cost_function = get_cost_function(config.cost_function)
    extract_start = time.perf_counter()
    with tracer.span("extract") as ext_span:
        extractor = TopKExtractor(egraph, cost_function, k=config.top_k, roots=[root])

        # Combine two views of the root e-class: one candidate per distinct root
        # e-node (this is what gives the returned set its diversity — the lifted
        # flat variant, the folded/structured variant, and the original chain are
        # different root e-nodes) plus the globally cheapest terms, de-duplicated
        # and capped at top-k.
        per_enode = extractor.best_per_enode(root)
        global_top = extractor.extract_top_k(root)
        combined = []
        seen_terms = set()
        for entry in per_enode + global_top:
            if entry.term in seen_terms:
                continue
            seen_terms.add(entry.term)
            combined.append(entry)
        combined.sort(key=lambda entry: entry.cost)
        combined = combined[: config.top_k]
        candidates = [
            CandidateProgram(rank=index + 1, cost=entry.cost, term=entry.term)
            for index, entry in enumerate(combined)
        ]
        if ext_span is not None:
            ext_span.update(
                {
                    "top_k": config.top_k,
                    "candidates": len(candidates),
                    "best_cost": candidates[0].cost if candidates else 0.0,
                }
            )
    extract_seconds = time.perf_counter() - extract_start

    return SynthesisResult(
        input_term=csg,
        candidates=candidates,
        inference_records=inference_records,
        run_reports=run_reports,
        seconds=time.perf_counter() - start,
        extract_seconds=extract_seconds,
        config=config,
    )
