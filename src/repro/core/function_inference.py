"""Closed-form function inference over folded lists (paper Section 4).

For every ``Fold`` the rewrites introduced, this component:

1. reads and determinizes the list of affine-transformed CADs,
2. checks that the list is uniform (same affine signature per element, same
   core child — otherwise a ``Mapi`` would not be semantics-preserving),
3. extracts the per-layer vectors and asks the arithmetic solvers for a
   closed form of the index for every layer,
4. on success, adds ``Mapi``-based e-nodes equivalent to the list into the
   list's e-class (paper Fig. 9, "function inference" step).

Two equivalent shapes are inserted: a single ``Mapi`` whose body nests all
affine layers (the gear output of Fig. 4), and a chain of nested ``Mapi``\\ s
with one layer each (the Fig. 10 output).  Cost-based extraction picks
whichever reads best.  If the whole list admits no closed form, inference
falls back to the longest contiguous run that does (this is how the noisy
Fig. 16 model gets a loop over its first two hexagons while the third stays
literal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.cad.build import cons_list, concat, fun, mapi, repeat
from repro.core.config import SynthesisConfig
from repro.core.determinize import DeterminizedList, Determinizer
from repro.core.lists import ListReadError, find_fold_matches, read_list_elements
from repro.core.listmanip import sort_elements
from repro.csg.ops import BOOLEAN_OPS, affine_chain
from repro.egraph.egraph import EGraph
from repro.lang.term import Term
from repro.solvers.closed_form import FunctionSolver, VectorFunction


@dataclass
class InferenceRecord:
    """What one successful inference produced (feeds Table 1's n-l / f columns)."""

    kind: str  # "mapi", "mapi-partial", or "repeat"
    loop_bounds: Tuple[int, ...]
    function_kinds: Tuple[str, ...]
    list_class: int
    nesting: int = 1

    def to_dict(self) -> dict:
        """JSON-able snapshot (tuples become lists)."""
        return {
            "kind": self.kind,
            "loop_bounds": list(self.loop_bounds),
            "function_kinds": list(self.function_kinds),
            "list_class": self.list_class,
            "nesting": self.nesting,
        }

    @staticmethod
    def from_dict(data: dict) -> "InferenceRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return InferenceRecord(
            kind=data["kind"],
            loop_bounds=tuple(data["loop_bounds"]),
            function_kinds=tuple(data["function_kinds"]),
            list_class=data["list_class"],
            nesting=data.get("nesting", 1),
        )


@dataclass
class LayerSolution:
    """A solved affine layer: the operator and its closed-form vector function."""

    op: str
    function: VectorFunction


@dataclass
class FunctionInference:
    """Runs function inference over every fold currently in the e-graph."""

    egraph: EGraph
    config: SynthesisConfig
    records: List[InferenceRecord] = field(default_factory=list)

    def run(self) -> int:
        """Infer functions for all folds; returns the number of successes.

        Folds are processed longest-list first, and a fold whose elements are
        a subset of an already-solved fold's elements is skipped: the chains
        a flat trace produces contain every suffix of the full list as its
        own fold, and solving the suffixes adds nothing the full solution
        does not already expose.
        """
        solver = FunctionSolver(self.config.solver_config())
        determinizer = Determinizer(self.egraph)
        work = []
        for fold_class, function_class, _acc_class, list_class in find_fold_matches(self.egraph):
            if not self._foldable_function(function_class):
                continue
            try:
                element_classes = read_list_elements(self.egraph, list_class)
            except ListReadError:
                continue
            if len(element_classes) < 2:
                continue
            work.append((list_class, element_classes))
        work.sort(key=lambda item: -len(item[1]))

        successes = 0
        covered: List[frozenset] = []
        failed: List[frozenset] = []
        for list_class, element_classes in work:
            element_set = frozenset(element_classes)
            # Suffix folds of an already-solved longer chain add nothing and
            # are skipped — but only for long lists, where the quadratic
            # re-work would actually cost something.  Short sub-lists are
            # always attempted: a sub-group can have cleaner structure than
            # the (heuristically solved) enclosing list.
            if len(element_classes) > 8 and any(element_set <= done for done in covered):
                continue
            # When a superset already failed, its sub-lists will fail the
            # (cheap) full inference the same way; skip the more expensive
            # partial-run search for them to avoid quadratic re-work over the
            # many suffix folds a flat trace produces.
            allow_partial = not any(element_set <= bad for bad in failed)
            variants = determinizer.determinize_all(element_classes, max_variants=4)
            solved = False
            # Try every determinized variant: different affine orderings can
            # yield different (all correct) parameterizations, and the cost
            # function picks among them at extraction time.
            for determinized in variants:
                if self._infer_for_list(
                    list_class, determinized, solver, allow_partial=allow_partial
                ):
                    solved = True
            if solved:
                successes += 1
                covered.append(element_set)
            else:
                failed.append(element_set)
        return successes

    # -- helpers -------------------------------------------------------------------

    def _foldable_function(self, function_class: int) -> bool:
        """The fold's function must be a commutative boolean operator leaf.

        Reordering and ``Repeat``-based regrouping are only semantics
        preserving when the combining operator does not care about order.
        """
        for enode in self.egraph.nodes(function_class):
            if enode.is_leaf and enode.op in ("Union", "Inter"):
                return True
        return False

    def _infer_for_list(
        self,
        list_class: int,
        determinized: DeterminizedList,
        solver: FunctionSolver,
        *,
        allow_partial: bool = True,
    ) -> bool:
        elements = determinized.elements
        orders: List[Sequence[Term]] = [elements]
        if self.config.enable_list_sorting:
            sorted_order = sort_elements(elements)
            if list(sorted_order) != list(elements):
                orders.append(sorted_order)

        solved = False
        full_solved = False
        for order in orders:
            built = self._infer_full(order, solver)
            if built is not None:
                terms, record = built
                for term in terms:
                    self._merge_list_term(list_class, term)
                record.list_class = self.egraph.find(list_class)
                self.records.append(record)
                solved = True
                full_solved = True
                break

        if not allow_partial:
            return solved

        # Also look for solvable contiguous runs.  Even when the full list
        # admits a closed form, a run-based variant can be the better program
        # (the Fig. 16 noisy hexagons: an exact quadratic exists for all three
        # but the paper's preferred output loops over the first two only);
        # both variants go into the e-graph and extraction chooses.
        if not full_solved or len(determinized) <= 6:
            for order in orders:
                built = self._infer_partial(order, solver)
                if built is not None:
                    terms, record = built
                    for term in terms:
                        self._merge_list_term(list_class, term)
                    record.list_class = self.egraph.find(list_class)
                    self.records.append(record)
                    solved = True
                    break
        return solved

    def _merge_list_term(self, list_class: int, term: Term) -> None:
        new_id = self.egraph.add_term(term)
        self.egraph.merge(list_class, new_id)

    # -- full-list inference ----------------------------------------------------------

    def _infer_full(
        self, elements: Sequence[Term], solver: FunctionSolver
    ) -> Optional[Tuple[List[Term], InferenceRecord]]:
        decomposed = self._decompose(elements)
        if decomposed is None:
            return None
        layers, core = decomposed
        count = len(elements)

        if not layers:
            # No affine structure but all elements identical: a plain Repeat.
            return (
                [repeat(core, count)],
                InferenceRecord(
                    kind="repeat",
                    loop_bounds=(count,),
                    function_kinds=(),
                    list_class=-1,
                ),
            )

        solutions = self._solve_layers(layers, solver)
        if solutions is None:
            return None

        variants = [self._build_single_mapi(solutions, core, count)]
        record = InferenceRecord(
            kind="mapi",
            loop_bounds=(count,),
            function_kinds=tuple(s.function.dominant_kind() for s in solutions),
            list_class=-1,
        )
        nested = self._build_nested_mapis(solutions, core, count)
        if nested is not None and nested not in variants:
            variants.append(nested)
        return variants, record

    def _decompose(
        self, elements: Sequence[Term]
    ) -> Optional[Tuple[List[Tuple[str, List[Tuple[float, float, float]]]], Term]]:
        """Split uniform elements into per-layer vector lists and the shared core."""
        chains = []
        cores = []
        for element in elements:
            layers, core = affine_chain(element)
            chains.append(layers)
            cores.append(core)
        signature = tuple(op for op, _v in chains[0])
        for chain in chains:
            if tuple(op for op, _v in chain) != signature:
                return None
        first_core = cores[0]
        for core in cores:
            if core != first_core:
                return None
        layer_vectors: List[Tuple[str, List[Tuple[float, float, float]]]] = []
        for layer_index, op in enumerate(signature):
            vectors = [chain[layer_index][1] for chain in chains]
            layer_vectors.append((op, vectors))
        return layer_vectors, first_core

    def _solve_layers(
        self,
        layers: Sequence[Tuple[str, List[Tuple[float, float, float]]]],
        solver: FunctionSolver,
    ) -> Optional[List[LayerSolution]]:
        solutions: List[LayerSolution] = []
        for op, vectors in layers:
            function = solver.solve(vectors, is_rotation=(op == "Rotate"))
            if function is None:
                return None
            solutions.append(LayerSolution(op=op, function=function))
        return solutions

    def _build_single_mapi(
        self, solutions: Sequence[LayerSolution], core: Term, count: int
    ) -> Term:
        """One Mapi whose body nests every affine layer (Fig. 4 shape)."""
        index = Term("i")
        body: Term = Term("c")
        for solution in reversed(list(solutions)):
            x, y, z = solution.function.to_terms(index)
            body = Term(solution.op, (x, y, z, body))
        return mapi(fun(("i", "c"), body), repeat(core, count))

    def _build_nested_mapis(
        self, solutions: Sequence[LayerSolution], core: Term, count: int
    ) -> Optional[Term]:
        """Nested Mapis, one per affine layer (Fig. 10 shape)."""
        if len(solutions) < 2:
            return None
        index = Term("i")
        current: Term = repeat(core, count)
        for solution in reversed(list(solutions)):
            x, y, z = solution.function.to_terms(index)
            body = Term(solution.op, (x, y, z, Term("c")))
            current = mapi(fun(("i", "c"), body), current)
        return current

    # -- partial (contiguous-run) inference ----------------------------------------------

    def _promising_runs(self, elements: Sequence[Term]) -> List[Tuple[int, int]]:
        """Maximal contiguous runs whose outer affine vectors step uniformly.

        Runs are detected with a cheap constant-first-difference test on the
        outermost affine vector (a linear progression steps by the same
        amount between consecutive elements), so the expensive solvers are
        only invoked on a handful of candidate runs instead of every O(n^2)
        slice.  Elements whose step differs start a new run; runs of a single
        step (two elements) are still considered — any two points lie on a
        line, which is exactly how the noisy Fig. 16 model keeps its first
        two hexagons in a loop.
        """
        count = len(elements)
        vectors = []
        for element in elements:
            layers, _core = affine_chain(element)
            vectors.append(layers[0][1] if layers else None)

        def step(index: int):
            a, b = vectors[index], vectors[index + 1]
            if a is None or b is None:
                return None
            return tuple(b[k] - a[k] for k in range(3))

        def steps_equal(a, b) -> bool:
            if a is None or b is None:
                return False
            tolerance = max(self.config.epsilon * 4.0, 1e-6)
            return all(abs(x - y) <= tolerance for x, y in zip(a, b))

        runs: List[Tuple[int, int]] = []
        start = 0
        while start < count - 1:
            current_step = step(start)
            if current_step is None:
                start += 1
                continue
            end = start + 1
            while end < count - 1 and steps_equal(step(end), current_step):
                end += 1
            runs.append((start, end + 1))
            start = end
        # Longest candidates first; discard trivial or full-length runs.
        runs = [(s, e) for s, e in runs if 2 <= e - s < count]
        runs.sort(key=lambda pair: -(pair[1] - pair[0]))
        return runs[:8]

    def _infer_partial(
        self, elements: Sequence[Term], solver: FunctionSolver
    ) -> Optional[Tuple[List[Term], InferenceRecord]]:
        count = len(elements)
        best: Optional[Tuple[int, int, Term, InferenceRecord]] = None
        for start, end in self._promising_runs(elements):
            run = elements[start:end]
            built = self._infer_full(run, solver)
            if built is None:
                continue
            run_terms, record = built
            best = (start, end, run_terms[0], record)
            break
        if best is None:
            return None
        start, end, run_term, record = best
        parts: List[Term] = []
        if start > 0:
            parts.append(cons_list(elements[:start]))
        parts.append(run_term)
        if end < count:
            parts.append(cons_list(elements[end:]))
        combined = parts[0]
        for part in parts[1:]:
            combined = concat(combined, part)
        record.kind = "mapi-partial"
        return [combined], record
