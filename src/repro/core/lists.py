"""Reading and writing ``Cons``/``Nil`` lists inside the e-graph.

The fold-introduction rewrites leave list *spines* in the e-graph: e-classes
containing ``Cons`` e-nodes whose second argument is another list e-class.
The arithmetic components need to walk those spines (to get the element
e-classes in order), and to write new spines back (e.g. a sorted copy of a
list, or a ``Mapi`` expression equivalent to the whole list).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.egraph.egraph import EGraph, ENode
from repro.lang.term import Term


class ListReadError(ValueError):
    """Raised when an e-class does not contain a readable list spine."""


def read_list_elements(egraph: EGraph, list_class: int, *, max_length: int = 100_000) -> List[int]:
    """Walk the ``Cons`` spine of an e-class and return element e-class ids.

    When the class contains several spine variants (it usually does after
    rewriting — e.g. both ``Cons x (Cons y Nil)`` and ``Cons x zs`` shapes),
    the *longest* readable spine is returned, which corresponds to the most
    completely folded view of the repeated structure.  ``Concat`` nodes are
    flattened.  Cycles (a class reachable from itself through spines) abort
    that variant.
    """
    best = _read_variants(egraph, egraph.find(list_class), frozenset(), max_length)
    if best is None:
        raise ListReadError(f"e-class {list_class} does not contain a list spine")
    return best


def _read_variants(
    egraph: EGraph, list_class: int, visiting: frozenset, max_length: int
) -> Optional[List[int]]:
    list_class = egraph.find(list_class)
    if list_class in visiting:
        return None
    visiting = visiting | {list_class}
    best: Optional[List[int]] = None
    for enode in egraph.nodes(list_class):
        variant: Optional[List[int]] = None
        if enode.op == "Nil" and not enode.args:
            variant = []
        elif enode.op == "Cons" and len(enode.args) == 2:
            tail = _read_variants(egraph, enode.args[1], visiting, max_length)
            if tail is not None and len(tail) + 1 <= max_length:
                variant = [egraph.find(enode.args[0])] + tail
        elif enode.op == "Concat" and len(enode.args) == 2:
            left = _read_variants(egraph, enode.args[0], visiting, max_length)
            right = _read_variants(egraph, enode.args[1], visiting, max_length)
            if left is not None and right is not None:
                variant = left + right
        elif enode.op == "Repeat" and len(enode.args) == 2:
            count = _literal_int(egraph, enode.args[1])
            if count is not None and 0 <= count <= max_length:
                variant = [egraph.find(enode.args[0])] * count
        if variant is not None and (best is None or len(variant) > len(best)):
            best = variant
    return best


def _literal_int(egraph: EGraph, class_id: int) -> Optional[int]:
    for enode in egraph.nodes(class_id):
        if isinstance(enode.op, (int, float)) and not isinstance(enode.op, bool):
            value = float(enode.op)
            if value == int(value):
                return int(value)
    return None


def has_list_spine(egraph: EGraph, class_id: int) -> bool:
    """True when the e-class contains at least one readable list spine."""
    try:
        read_list_elements(egraph, class_id)
    except ListReadError:
        return False
    return True


def add_cons_spine(egraph: EGraph, element_ids: Sequence[int]) -> int:
    """Insert a ``Cons`` spine over existing element e-classes; returns its id."""
    spine = egraph.add_enode(ENode("Nil"))
    for element in reversed(list(element_ids)):
        spine = egraph.add_enode(ENode("Cons", (egraph.find(element), spine)))
    return spine


def add_term_list(egraph: EGraph, terms: Sequence[Term]) -> int:
    """Insert a ``Cons`` spine over freshly added terms; returns its id."""
    return add_cons_spine(egraph, [egraph.add_term(t) for t in terms])


def find_fold_matches(egraph: EGraph) -> List[Tuple[int, int, int, int]]:
    """All ``Fold`` e-nodes as (fold class, function class, accumulator class, list class)."""
    matches: List[Tuple[int, int, int, int]] = []
    seen = set()
    for eclass in list(egraph.classes()):
        class_id = egraph.find(eclass.id)
        for enode in eclass.nodes:
            if enode.op == "Fold" and len(enode.args) == 3:
                key = (class_id,) + tuple(egraph.find(a) for a in enode.args)
                if key not in seen:
                    seen.add(key)
                    matches.append(key)
    return matches
