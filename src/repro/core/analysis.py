"""Structural analysis of synthesized programs.

Table 1 describes each output program by its loop structure (``n-l``: number
and bounds of nested loops) and by the class of closed-form functions it uses
(``f``: degree-1, degree-2, or trigonometric).  Rather than trusting the
inference bookkeeping (which records every fold it touched, including
sub-lists that did not make it into the chosen program), these summaries are
recomputed from the extracted program itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.lang.term import Term


@dataclass(frozen=True)
class LoopDescriptor:
    """One loop nest found in a program: its nesting depth and bounds."""

    bounds: Tuple[int, ...]

    @property
    def nesting(self) -> int:
        return len(self.bounds)

    def label(self) -> str:
        """The Table 1 ``n-l`` notation, e.g. ``n1,60`` or ``n2,2,3``."""
        return f"n{self.nesting}," + ",".join(str(b) for b in self.bounds)


def _list_length(term: Term) -> Optional[int]:
    """Static length of a LambdaCAD list expression, when determinable."""
    if term.op == "Nil":
        return 0
    if term.op == "Cons" and len(term.children) == 2:
        tail = _list_length(term.children[1])
        return None if tail is None else tail + 1
    if term.op == "Repeat" and len(term.children) == 2:
        count = term.children[1]
        if count.is_number:
            return int(count.value)
        return None
    if term.op == "Concat" and len(term.children) == 2:
        left = _list_length(term.children[0])
        right = _list_length(term.children[1])
        if left is None or right is None:
            return None
        return left + right
    if term.op in ("Map", "Mapi") and len(term.children) == 2:
        return _list_length(term.children[1])
    if term.op == "Fold":
        # A Fold used as a list producer (map-concatenate convention).
        inner = _loop_list_bound(term)
        return inner
    return None


def _loop_list_bound(fold_term: Term) -> Optional[int]:
    """Length of the index list of a list-producing Fold, if static."""
    if fold_term.op != "Fold" or len(fold_term.children) != 3:
        return None
    return _list_length(fold_term.children[2])


def _is_loop_node(term: Term) -> bool:
    if term.op == "Mapi" or term.op == "Map":
        return True
    if term.op == "Fold" and len(term.children) == 3:
        function = term.children[0]
        # Folds over a boolean operator merely combine a list; folds over a
        # Fun are the nested-loop output shape and count as loops.
        return function.op == "Fun"
    return False


def _loop_bound(term: Term) -> Optional[int]:
    if term.op in ("Map", "Mapi"):
        return _list_length(term.children[1])
    if term.op == "Fold":
        return _list_length(term.children[2])
    return None


def find_loops(term: Term) -> List[LoopDescriptor]:
    """Find every outermost loop nest in a program.

    A nest is an outermost loop node together with the chain of loop nodes
    directly nested inside it (through its function body or its list
    argument); sibling nests are reported separately.
    """
    nests: List[LoopDescriptor] = []

    def chain_bounds(node: Term) -> Tuple[int, ...]:
        bounds: Tuple[int, ...] = ()
        bound = _loop_bound(node)
        if bound is not None:
            bounds = (bound,)
        # A Mapi whose list is itself a Map/Mapi (the Fig. 10 nested-Mapi
        # chain) iterates the *same* index space as the inner combinator — it
        # adds a transformation layer, not a loop dimension — so only the
        # innermost of such a chain contributes a bound.
        if node.op in ("Map", "Mapi") and len(node.children) == 2 and node.children[1].op in ("Map", "Mapi"):
            bounds = ()
        # Nested loops appear either inside the function body (Fold-of-Fun
        # nested loops) or as the list argument (nested Mapis).
        nested: List[Tuple[int, ...]] = []
        for child in node.children:
            nested.append(descend(child))
        best_nested = max(nested, key=len, default=())
        return bounds + best_nested

    def descend(node: Term) -> Tuple[int, ...]:
        if _is_loop_node(node):
            return chain_bounds(node)
        best: Tuple[int, ...] = ()
        for child in node.children:
            candidate = descend(child)
            if len(candidate) > len(best):
                best = candidate
        return best

    def walk(node: Term) -> None:
        if _is_loop_node(node):
            nests.append(LoopDescriptor(bounds=chain_bounds(node)))
            return
        for child in node.children:
            walk(child)

    walk(term)
    # Drop degenerate descriptors with no static bound information.
    return [n for n in nests if n.bounds]


def function_kinds(term: Term) -> List[str]:
    """The closed-form function classes used in a program's loop bodies.

    ``theta`` for trigonometric bodies, ``d2`` when an index is multiplied by
    itself, ``d1`` for other index arithmetic.
    """
    kinds: List[str] = []

    def body_kind(body: Term) -> Optional[str]:
        has_index = False
        has_trig = False
        has_square = False

        def scan(node: Term, under_mul_operands: Tuple[Term, ...] = ()) -> None:
            nonlocal has_index, has_trig, has_square
            if node.op in ("Sin", "Cos", "Arctan"):
                has_trig = True
            if node.op == "Mul" and len(node.children) == 2:
                left, right = node.children
                if left == right and _mentions_index(left):
                    has_square = True
            if node.is_leaf and isinstance(node.op, str) and node.op in ("i", "j", "k"):
                has_index = True
            for child in node.children:
                scan(child)

        scan(body)
        if not has_index and not has_trig:
            return None
        if has_trig:
            return "theta"
        if has_square:
            return "d2"
        return "d1"

    def _mentions_index(node: Term) -> bool:
        return any(
            sub.is_leaf and isinstance(sub.op, str) and sub.op in ("i", "j", "k")
            for sub in node.subterms()
        )

    for sub in term.subterms():
        if sub.op == "Fun" and len(sub.children) >= 2:
            kind = body_kind(sub.children[-1])
            if kind is not None and kind not in kinds:
                kinds.append(kind)
    return kinds
