"""List manipulation in the context of a Fold (paper Section 4.3, Fig. 11/12).

Once a list has been determinized, Szalinski may reorder it to help the
function solver find a closed form: lexicographic sorting by the affine
vectors, regrouping by the transformed child, and regrouping by a common
coordinate value.  Reordering is only applied under a ``Fold`` whose operator
is commutative (``Union``/``Inter``), where it is semantics-preserving.

Two layers are provided:

* pure-term helpers (:func:`sort_elements`, :func:`group_by_child`,
  :func:`group_by_component`) used by the inference components on the
  determinized working list;
* :func:`apply_list_manipulation`, which mirrors the paper's algorithm
  (Fig. 12) on the e-graph itself: it builds the reordered spine, wraps it in
  a new ``Fold`` e-node, and merges that node into the e-class of the
  original fold.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.csg.ops import affine_chain
from repro.egraph.egraph import EGraph, ENode
from repro.core.lists import add_term_list
from repro.lang.term import Term


def _sort_key(element: Term) -> Tuple:
    """Lexicographic key over the affine vectors of an element, outermost first."""
    layers, core = affine_chain(element)
    vectors = tuple(vector for _op, vector in layers)
    return (vectors, str(core.op))


def sort_elements(elements: Sequence[Term]) -> List[Term]:
    """Sort elements lexicographically by their affine-transformation vectors."""
    return sorted(elements, key=_sort_key)


def group_by_child(elements: Sequence[Term]) -> Dict[Term, List[Term]]:
    """Group elements by the core child under their affine chains."""
    groups: Dict[Term, List[Term]] = {}
    for element in elements:
        _layers, core = affine_chain(element)
        groups.setdefault(core, []).append(element)
    return groups


def group_by_component(
    elements: Sequence[Term], component: int, *, epsilon: float = 1e-6
) -> List[Tuple[float, List[Term]]]:
    """Group elements by one coordinate of their outermost affine vector.

    Elements without an affine chain are ignored.  Groups are returned sorted
    by the shared coordinate value; two values within ``epsilon`` of each
    other land in the same group (decompiler noise tolerance).
    """
    groups: List[Tuple[float, List[Term]]] = []
    for element in elements:
        layers, _core = affine_chain(element)
        if not layers:
            continue
        value = layers[0][1][component]
        placed = False
        for index, (key, members) in enumerate(groups):
            if abs(key - value) <= epsilon:
                members.append(element)
                placed = True
                break
        if not placed:
            groups.append((value, [element]))
    groups.sort(key=lambda pair: pair[0])
    return groups


def apply_list_manipulation(
    egraph: EGraph,
    fold_class: int,
    function_class: int,
    accumulator_class: int,
    sorted_elements: Sequence[Term],
) -> int:
    """Merge a ``Fold`` over the reordered list into the original fold's e-class.

    Implements the paper's ``manip`` (Fig. 12): make the spine for the sorted
    value, build a ``Fold`` e-node over it with the original function and
    accumulator classes, create its e-class, and merge with the original.
    Returns the id of the new spine's e-class.
    """
    spine_id = add_term_list(egraph, list(sorted_elements))
    new_fold = egraph.add_enode(
        ENode(
            "Fold",
            (egraph.find(function_class), egraph.find(accumulator_class), spine_id),
        )
    )
    egraph.merge(fold_class, new_fold)
    return spine_id
