"""Jobs, results, and events of the batch synthesis service.

A :class:`SynthesisJob` is one unit of work: a flat CSG term plus the
:class:`~repro.core.config.SynthesisConfig` to synthesize it under, with a
scheduling priority and an optional hard timeout.  Jobs are immutable and
their worker-facing :meth:`~SynthesisJob.payload` is plain JSON-able data
(the term travels as canonical s-expression text), so a job can cross a
process boundary regardless of how its input was produced — file, parsed
term, or benchsuite builder.

A :class:`JobResult` is what comes back: a status, the deserialized
:class:`~repro.core.pipeline.SynthesisResult` on success, or a captured
traceback on failure — one pathological model reports as a failed *job*,
never as a sunk *batch*.  :class:`JobEvent` is the structured progress
stream the service emits while a batch runs.
"""

from __future__ import annotations

import itertools
import traceback
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Optional

from repro.core.config import SynthesisConfig
from repro.core.pipeline import SynthesisResult
from repro.lang.canon import canonical_term_text
from repro.lang.term import Term


class JobStatus(Enum):
    """Lifecycle states a job can end (or sit) in."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    TIMEOUT = "timeout"


#: Process-local source of default job ids (unique within one batch driver).
_JOB_IDS = itertools.count(1)


@dataclass(frozen=True)
class SynthesisJob:
    """One synthesis request: input term + config + scheduling metadata."""

    name: str
    term: Term
    config: SynthesisConfig = field(default_factory=SynthesisConfig)
    #: Higher-priority jobs are dispatched first (ties run in submission order).
    priority: int = 0
    #: Hard per-job wall-clock limit in seconds.  Enforced by killing the
    #: worker process when running under a :class:`~repro.service.worker.WorkerPool`;
    #: the inline executor can only honor it cooperatively, by clamping the
    #: config's ``max_seconds`` fuel.
    timeout: Optional[float] = None
    #: When True the worker records a per-phase span trace of the job
    #: (``repro.obs``) and ships it back on :attr:`JobResult.trace`.
    #: Deliberately *not* part of the cache identity — a traced and an
    #: untraced run of the same job produce the same result.
    trace: bool = False
    job_id: str = ""

    def __post_init__(self):
        if not self.job_id:
            object.__setattr__(self, "job_id", f"job{next(_JOB_IDS)}:{self.name}")

    # -- construction ----------------------------------------------------------

    @staticmethod
    def from_file(
        path, config: Optional[SynthesisConfig] = None, **kwargs
    ) -> "SynthesisJob":
        """Build a job from a flat-CSG s-expression file.

        Parsing mirrors ``szalinski synth``: non-strict, so inputs containing
        ``External`` placeholders are accepted.
        """
        from repro.csg.parser import parse_csg

        path = Path(path)
        term = parse_csg(path.read_text(), strict=False)
        return SynthesisJob(
            name=kwargs.pop("name", path.stem),
            term=term,
            config=config or SynthesisConfig(),
            **kwargs,
        )

    # -- worker protocol -------------------------------------------------------

    def payload(self) -> dict:
        """The JSON-able description shipped to a worker process."""
        return {
            "job_id": self.job_id,
            "name": self.name,
            "term": canonical_term_text(self.term),
            "config": self.config.to_dict(),
            "timeout": self.timeout,
            "trace": self.trace,
        }


@dataclass
class JobResult:
    """The outcome of one job."""

    job_id: str
    name: str
    status: JobStatus
    result: Optional[SynthesisResult] = None
    #: Captured traceback (or a one-line reason for timeouts/crashes).
    error: Optional[str] = None
    #: Wall-clock seconds the job took end to end (0 for cache hits).
    seconds: float = 0.0
    #: True when the result was served from the content-addressed cache.
    cached: bool = False
    #: Which cache level served it: ``"exact"`` or ``"semantic"`` (None when
    #: not cached).
    cache_tier: Optional[str] = None
    #: The ``result.to_dict()`` form as it crossed the worker boundary, kept
    #: so the cache can store it without re-serializing (internal plumbing;
    #: may be None, in which case callers serialize ``result`` themselves).
    result_payload: Optional[dict] = None
    #: Exported span list (``repro.obs.trace.Tracer.export()``) when the job
    #: ran with tracing enabled.  Kept out of :meth:`to_dict` — wire frames
    #: and cached payloads stay compact; the service/daemon aggregate the
    #: spans into latency histograms and optionally stream them to a JSONL
    #: trace file instead.
    trace: Optional[list] = None

    @property
    def ok(self) -> bool:
        return self.status is JobStatus.SUCCEEDED

    def error_summary(self) -> str:
        """The last non-empty line of the error (the exception message)."""
        if not self.error:
            return ""
        lines = [line for line in self.error.strip().splitlines() if line.strip()]
        return lines[-1] if lines else ""

    def to_dict(self) -> dict:
        """Compact JSON-able snapshot (result reduced to headline numbers)."""
        out = {
            "job_id": self.job_id,
            "name": self.name,
            "status": self.status.value,
            "seconds": self.seconds,
            "cached": self.cached,
        }
        if self.cached and self.cache_tier is not None:
            out["cache_tier"] = self.cache_tier
        if self.error is not None:
            out["error"] = self.error_summary()
        if self.result is not None:
            out["result"] = {
                "candidates": len(self.result.candidates),
                "best_cost": self.result.best.cost if self.result.candidates else None,
                "exposes_structure": self.result.exposes_structure(),
                "size_reduction": self.result.size_reduction(),
            }
        return out

    @staticmethod
    def from_failure(job: "SynthesisJob", exc: BaseException) -> "JobResult":
        """A failed result capturing the current exception's traceback."""
        return JobResult(
            job_id=job.job_id,
            name=job.name,
            status=JobStatus.FAILED,
            error="".join(traceback.format_exception(type(exc), exc, exc.__traceback__)),
        )


@dataclass(frozen=True)
class JobEvent:
    """One structured progress event streamed back to the batch caller."""

    #: ``"start"``, ``"cache-hit"``, ``"done"``, ``"failed"``, or ``"timeout"``.
    kind: str
    job_id: str
    name: str
    seconds: float = 0.0
    message: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.seconds:.2f}s)" if self.kind in ("done", "failed", "timeout") else ""
        message = f": {self.message}" if self.message else ""
        return f"[{self.kind}] {self.name}{suffix}{message}"
