"""Batch synthesis service.

Turns the one-shot :func:`repro.core.pipeline.synthesize` entry point into a
throughput-oriented service: a priority :class:`~repro.service.queue.JobQueue`
of :class:`~repro.service.job.SynthesisJob`\\ s, a process-parallel
:class:`~repro.service.worker.WorkerPool` with per-job failure isolation and
hard timeouts, and a content-addressed two-tier
:class:`~repro.service.cache.ResultCache`, orchestrated by
:class:`~repro.service.service.SynthesisService`.

See the top-level ``README.md`` for the architecture and the cache layout.
"""

from repro.service.cache import ResultCache, cache_key
from repro.service.daemon import SynthesisDaemon
from repro.service.job import JobEvent, JobResult, JobStatus, SynthesisJob
from repro.service.protocol import (
    DaemonClient,
    DaemonError,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.service.queue import JobQueue
from repro.service.service import BatchReport, SynthesisService
from repro.service.worker import (
    ResidentPool,
    WorkerPool,
    execute_payload,
    run_jobs_inline,
)

__all__ = [
    "BatchReport",
    "DaemonClient",
    "DaemonError",
    "JobEvent",
    "JobQueue",
    "JobResult",
    "JobStatus",
    "ProtocolError",
    "ResidentPool",
    "ResultCache",
    "SynthesisDaemon",
    "SynthesisJob",
    "SynthesisService",
    "WorkerPool",
    "cache_key",
    "execute_payload",
    "recv_frame",
    "run_jobs_inline",
    "send_frame",
]
