"""The resident synthesis daemon: one warm engine serving many clients.

:class:`SynthesisDaemon` promotes the per-invocation batch service to a
long-lived process.  It listens on a Unix-domain socket speaking the
length-prefixed JSON frame protocol of :mod:`repro.service.protocol`,
accepts job submissions from any number of concurrent clients, and runs
everything on shared, warm infrastructure:

* **one worker fleet** — a :class:`~repro.service.worker.ResidentPool` of
  persistent worker processes fed through the priority
  :class:`~repro.service.queue.JobQueue` semantics (priority desc, FIFO
  ties).  The batch layer's isolation contract carries over verbatim: a
  worker that crashes, raises, or blows its deadline costs exactly the job
  it was running, is replaced, and the daemon keeps serving every other
  client.
* **one cross-request cache** — a shared
  :class:`~repro.service.cache.ResultCache` (exact + semantic tiers)
  probed for every submission, regardless of which connection it arrived
  on, so client B's first request rides client A's warm entry.  Misses
  that are *already in flight* coalesce: the duplicate waits for the
  running execution and is served its payload (``cache_tier="batch"``),
  never re-submitted.
* **admission control** — at most ``max_pending`` admitted-but-unfinished
  jobs; a submission that would exceed the bound is answered with an
  explicit ``rejected`` frame and enqueues nothing, so a traffic spike
  degrades into fast rejections instead of an unbounded backlog.
* **observability** — ``health`` and ``stats`` request types expose
  uptime, queue depth, worker crash/respawn counters, and per-tier cache
  counters while jobs run; every frame is snapshotted under the daemon
  lock in one critical section, so it can never report torn values
  mid-schedule.  With ``trace_jobs`` (the default) every executed job
  carries a per-phase span trace (:mod:`repro.obs`): the daemon streams
  span durations into latency histograms per phase / per model / per
  cache tier, serves exact-rank p50/p95/p99 in the ``stats`` frame's
  ``latency`` section (``szalinski stats --percentiles`` renders it),
  and, when ``trace_path`` is set, appends every span to a JSONL trace
  file (``szalinski trace`` converts it for Perfetto).

Failure containment at the wire: a client that sends a malformed frame is
answered with one ``error`` frame and has *its* connection closed; a
client that disconnects mid-job detaches from its subscriptions while the
job runs on (and still populates the cache).  Graceful shutdown
(``shutdown`` frame, :meth:`SynthesisDaemon.request_shutdown`, or the
CLI's SIGTERM handler) stops admissions, drains every in-flight and queued
job — waiting clients get their results — then kills the fleet and removes
the socket.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
import traceback
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.core.config import SynthesisConfig
from repro.core.pipeline import SynthesisResult
from repro.egraph.parallel import clamp_search_workers
from repro.obs.export import span_lines, write_trace_jsonl
from repro.obs.histogram import MetricsAggregator
from repro.obs.prometheus import render_prometheus
from repro.service.cache import ResultCache, cache_key, semantic_cache_key
from repro.service.job import JobEvent, JobResult, JobStatus, SynthesisJob
from repro.service.protocol import ProtocolError, recv_frame, send_frame
from repro.service.service import SynthesisService
from repro.service.worker import ResidentPool


class _ClientConnection:
    """One accepted client socket plus its serialized-send bookkeeping."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._send_lock = threading.Lock()
        self.alive = True

    def send(self, frame: dict) -> None:
        """Best-effort frame send; a dead peer just mutes the connection."""
        with self._send_lock:
            if not self.alive:
                return
            try:
                send_frame(self.sock, frame)
            except (OSError, ProtocolError):
                self.alive = False

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


@dataclass
class _Track:
    """One admitted job: who is waiting on it and under which cache keys."""

    job: SynthesisJob
    client: Optional[_ClientConnection]
    wait: bool
    stream: bool
    key: str = ""
    semantic_key: Optional[str] = None
    #: Coalesced duplicates riding this execution.
    followers: List["_Track"] = field(default_factory=list)


class SynthesisDaemon:
    """A resident synthesis engine behind a Unix-domain socket."""

    def __init__(
        self,
        socket_path,
        worker_count: int = 2,
        cache: Optional[ResultCache] = None,
        max_pending: int = 256,
        default_timeout: Optional[float] = None,
        start_method: Optional[str] = None,
        trace_jobs: bool = True,
        trace_path=None,
        search_workers: int = 0,
    ):
        if worker_count < 1:
            raise ValueError("the daemon needs at least one worker")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.socket_path = str(socket_path)
        self.worker_count = worker_count
        #: Search-worker processes granted to *each* job worker's saturation
        #: runs (0 = serial).  Applied in :meth:`_build_job` to specs that
        #: did not set their own ``search_workers``; either way the value is
        #: clamped so ``worker_count × search_workers`` never exceeds the
        #: machine's cores (each of the fleet's jobs may host its own pool).
        self.search_workers = clamp_search_workers(search_workers, worker_count)
        self.cache = cache
        self.max_pending = max_pending
        self.default_timeout = default_timeout
        self._start_method = start_method
        #: Run every executed job with per-phase span tracing so the stats
        #: frame can serve per-phase percentiles.  The trace flag is not part
        #: of the cache identity and the spans stay out of wire frames, so
        #: the only cost is the tracer's bookkeeping inside the worker.
        self.trace_jobs = trace_jobs
        #: When set, every finished job's spans are appended here as JSONL
        #: (one span per line); ``szalinski trace`` converts the file to
        #: Chrome trace_event JSON for Perfetto.
        self.trace_path = Path(trace_path) if trace_path is not None else None
        #: Streaming latency histograms (per phase / per model / per cache
        #: tier) served in the ``stats`` frame; guarded by ``_lock``.
        self.metrics = MetricsAggregator()
        #: Serializes JSONL appends from concurrent completion callbacks.
        self._trace_lock = threading.Lock()

        #: Guards tracks, coalescing, counters, AND the cache — cache reads
        #: and writes must be atomic with in-flight registration, or a job
        #: finishing between a miss and its enqueue would strand followers.
        self._lock = threading.Lock()
        self._tracks: Dict[str, _Track] = {}
        self._by_key: Dict[str, str] = {}
        self._pending = 0
        self._counters: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "succeeded": 0,
            "failed": 0,
            "timeout": 0,
            "cache_hits": 0,
            "exact_hits": 0,
            "semantic_hits": 0,
            "coalesced": 0,
            "rejected": 0,
            "protocol_errors": 0,
            "connections": 0,
        }
        self._clients: Set[_ClientConnection] = set()
        self._ids = itertools.count(1)

        self._pool: Optional[ResidentPool] = None
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._draining = False
        self._stop_requested = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_guard = threading.Lock()
        self._shut_down = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "SynthesisDaemon":
        """Spawn the fleet, bind the socket, and begin accepting clients."""
        if self._pool is not None:
            raise RuntimeError("daemon already started")
        # The fleet forks before the listener exists so the initial workers
        # do not inherit (and keep alive) the daemon's socket descriptors.
        self._pool = ResidentPool(
            self.worker_count, start_method=self._start_method
        ).start()
        path = Path(self.socket_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            path.unlink()  # a stale socket from a dead daemon
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.socket_path)
        self._listener.listen(128)
        self._started_at = time.monotonic()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="daemon-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Block until the daemon has fully shut down.

        Shutdown is triggered elsewhere: a client ``shutdown`` frame, a
        signal handler calling :meth:`request_shutdown`, or a direct
        :meth:`shutdown` call from another thread.
        """
        self._stopped.wait()

    def request_shutdown(self) -> None:
        """Trigger a graceful drain-and-exit without blocking (idempotent).

        Safe to call from a signal handler: the actual drain runs on its
        own thread.
        """
        if self._stop_requested.is_set():
            return
        self._stop_requested.set()
        threading.Thread(target=self.shutdown, daemon=True).start()

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting, drain (or kill) the fleet, remove the socket."""
        with self._shutdown_guard:
            if self._shut_down:
                self._stopped.wait()
                return
            self._shut_down = True
        self._stop_requested.set()
        with self._lock:
            self._draining = True
        if self._listener is not None:
            try:
                self._listener.close()  # unblocks the accept loop
            except OSError:
                pass
        if self._pool is not None:
            # Draining completes every admitted job; the completion
            # callbacks deliver results to still-connected clients.
            self._pool.shutdown(drain=drain, timeout=timeout)
        with self._lock:
            clients = list(self._clients)
            self._clients.clear()
        for client in clients:
            client.close()
        try:
            Path(self.socket_path).unlink()
        except OSError:
            pass
        self._stopped.set()

    # -- accept/serve ----------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            client = _ClientConnection(sock)
            with self._lock:
                if self._draining:
                    client.send(
                        {"type": "rejected", "reason": "daemon is shutting down"}
                    )
                    client.close()
                    continue
                self._counters["connections"] += 1
                self._clients.add(client)
            threading.Thread(
                target=self._serve_client, args=(client,), daemon=True
            ).start()

    def _serve_client(self, client: _ClientConnection) -> None:
        try:
            while True:
                try:
                    frame = recv_frame(client.sock)
                except ProtocolError as exc:
                    # The stream's framing is gone; answer once and hang up
                    # on THIS client only.
                    with self._lock:
                        self._counters["protocol_errors"] += 1
                    client.send({"type": "error", "error": f"malformed frame: {exc}"})
                    return
                except OSError:
                    return  # connection torn down (possibly by our shutdown)
                if frame is None:
                    return  # clean disconnect
                self._dispatch(client, frame)
        finally:
            self._detach(client)

    def _detach(self, client: _ClientConnection) -> None:
        """Forget a disconnected client; its jobs keep running cache-bound."""
        client.close()
        with self._lock:
            self._clients.discard(client)
            for track in self._tracks.values():
                if track.client is client:
                    track.client = None
                for follower in track.followers:
                    if follower.client is client:
                        follower.client = None

    # -- request dispatch ------------------------------------------------------

    def _dispatch(self, client: _ClientConnection, frame: dict) -> None:
        kind = frame.get("type")
        if kind == "submit":
            self._handle_submit(client, frame)
        elif kind == "health":
            client.send(self._health_frame())
        elif kind == "stats":
            client.send(self._stats_frame())
        elif kind == "metrics":
            client.send(self._metrics_frame())
        elif kind == "shutdown":
            client.send({"type": "ok"})
            self.request_shutdown()
        else:
            client.send(
                {"type": "error", "error": f"unknown request type {kind!r}"}
            )

    def _handle_submit(self, client: _ClientConnection, frame: dict) -> None:
        specs = frame.get("jobs")
        if not isinstance(specs, list) or not specs or not all(
            isinstance(spec, dict) for spec in specs
        ):
            client.send(
                {"type": "error", "error": "submit needs a non-empty list of job objects"}
            )
            return
        wait = bool(frame.get("wait", True))
        stream = bool(frame.get("stream", False))

        # Frame-level rejections: duplicate ids and admission control.
        # Both are checked before any term is parsed, so a rejected frame
        # costs near nothing and changes no daemon state.
        explicit_ids = [str(spec["id"]) for spec in specs if spec.get("id")]
        duplicate_ids = sorted(
            {job_id for job_id in explicit_ids if explicit_ids.count(job_id) > 1}
        )
        with self._lock:
            if not duplicate_ids:
                duplicate_ids = sorted(
                    job_id for job_id in explicit_ids if job_id in self._tracks
                )
            if duplicate_ids:
                self._counters["rejected"] += len(specs)
                client.send(
                    {
                        "type": "rejected",
                        "reason": (
                            "duplicate job ids: "
                            + ", ".join(duplicate_ids)
                            + " — ids must be unique per daemon at any moment"
                        ),
                    }
                )
                return
            if self._draining:
                self._counters["rejected"] += len(specs)
                client.send({"type": "rejected", "reason": "daemon is draining"})
                return
            if self._pending + len(specs) > self.max_pending:
                self._counters["rejected"] += len(specs)
                client.send(
                    {
                        "type": "rejected",
                        "reason": (
                            f"admission control: {self._pending} job(s) pending, "
                            f"{len(specs)} submitted, limit {self.max_pending}"
                        ),
                    }
                )
                return
            self._counters["submitted"] += len(specs)

        # Build jobs outside the lock (parsing can be arbitrarily large).
        # A spec that fails to build is isolated as one immediately-FAILED
        # job, exactly like the batch CLI treats an unreadable file.
        jobs: List[Optional[SynthesisJob]] = []
        job_ids: List[str] = []
        immediate: List[JobResult] = []
        for index, spec in enumerate(specs):
            name = str(spec.get("name") or f"job-{index}")
            raw_id = spec.get("id")
            job_id = str(raw_id) if raw_id else f"d{next(self._ids)}:{name}"
            job_ids.append(job_id)
            try:
                jobs.append(self._build_job(spec, name, job_id))
            except Exception:
                jobs.append(None)
                immediate.append(
                    JobResult(
                        job_id=job_id,
                        name=name,
                        status=JobStatus.FAILED,
                        error=traceback.format_exc(),
                    )
                )

        # Admit: probe the shared cache, coalesce onto in-flight twins,
        # queue the rest — atomically with respect to completions AND
        # shutdown.  The pool submit happens inside the same critical
        # section as track registration: shutdown() sets ``_draining``
        # under this lock before stopping the pool, so a job admitted here
        # is guaranteed to reach the pool before any drain begins — an
        # "accepted" frame always means "will run (or be drained)".
        submit_failures: List[SynthesisJob] = []
        with self._lock:
            for job in jobs:
                if job is None:
                    continue
                key = cache_key(job.term, job.config)
                semantic_key = (
                    semantic_cache_key(job.term, job.config)
                    if self.cache is not None and self.cache.semantic
                    else None
                )
                if self.cache is not None:
                    lookup_start = time.perf_counter()
                    payload, tier = self.cache.lookup(key, semantic_key)
                    if payload is not None:
                        self._counters["cache_hits"] += 1
                        self._counters[f"{tier}_hits"] += 1
                        self._counters["completed"] += 1
                        self._counters["succeeded"] += 1
                        # A hit's end-to-end latency is the lookup itself.
                        self.metrics.ingest(
                            model=job.name,
                            seconds=time.perf_counter() - lookup_start,
                            cache_tier=tier,
                        )
                        immediate.append(
                            JobResult(
                                job_id=job.job_id,
                                name=job.name,
                                status=JobStatus.SUCCEEDED,
                                result=SynthesisResult.from_dict(payload),
                                result_payload=payload,
                                cached=True,
                                cache_tier=tier,
                            )
                        )
                        continue
                track = _Track(
                    job=job,
                    client=client,
                    wait=wait,
                    stream=stream,
                    key=key,
                    semantic_key=semantic_key,
                )
                primary_id = self._by_key.get(key)
                if primary_id is not None:
                    self._tracks[primary_id].followers.append(track)
                    self._counters["coalesced"] += 1
                    self._pending += 1
                    continue
                self._tracks[job.job_id] = track
                self._by_key[key] = job.job_id
                self._pending += 1
                try:
                    self._pool.submit(job, self._on_result, self._on_event)
                except RuntimeError:
                    # A force (non-drain) stop can still slip in; fail the
                    # job explicitly instead of leaving the client waiting.
                    # The callback takes this lock, so it runs below.
                    submit_failures.append(job)

        client.send({"type": "accepted", "job_ids": job_ids})
        if wait:
            for result in immediate:
                client.send({"type": "result", "job": result.to_dict()})
        for job in submit_failures:
            self._on_result(
                job,
                JobResult(
                    job_id=job.job_id,
                    name=job.name,
                    status=JobStatus.FAILED,
                    error="daemon shut down before the job could run",
                ),
            )

    def _build_job(self, spec: dict, name: str, job_id: str) -> SynthesisJob:
        """One SynthesisJob from a wire spec (raises on any invalid field)."""
        from repro.csg.parser import parse_csg

        term_text = spec.get("term")
        if not isinstance(term_text, str) or not term_text.strip():
            raise ValueError("job spec needs a non-empty 'term' (flat CSG text)")
        term = parse_csg(term_text, strict=False)
        config_dict = spec.get("config")
        config = (
            SynthesisConfig.from_dict(config_dict)
            if config_dict is not None
            else SynthesisConfig()
        )
        # Search-pool sizing is a host decision: jobs that do not ask get
        # the daemon's (pre-clamped) default, and jobs that do ask are
        # clamped against this fleet's size — a client cannot oversubscribe
        # the machine.  Either way the cache identity is untouched
        # (``search_workers`` is excluded from the semantic dict).
        requested = config.search_workers or self.search_workers
        clamped = clamp_search_workers(requested, self.worker_count)
        if clamped != config.search_workers:
            config = replace(config, search_workers=clamped)
        timeout = spec.get("timeout", self.default_timeout)
        job = SynthesisJob(
            name=name,
            term=term,
            config=config,
            priority=int(spec.get("priority", 0)),
            timeout=float(timeout) if timeout is not None else None,
            trace=self.trace_jobs,
            job_id=job_id,
        )
        # Same identity rule as the batch service: a timeout that clamps
        # the fuel is part of the cache key.
        return SynthesisService._normalize(job)

    # -- completion plumbing (runs on the pool's scheduler thread) -------------

    def _on_event(self, event: JobEvent) -> None:
        with self._lock:
            track = self._tracks.get(event.job_id)
            target = track.client if track is not None and track.stream else None
        if target is not None:
            target.send(
                {
                    "type": "event",
                    "kind": event.kind,
                    "job_id": event.job_id,
                    "name": event.name,
                    "seconds": event.seconds,
                    "message": event.message,
                }
            )

    def _on_result(self, job: SynthesisJob, result: JobResult) -> None:
        with self._lock:
            track = self._tracks.pop(job.job_id, None)
            if track is None:  # pragma: no cover - every submitted job has a track
                return
            self._by_key.pop(track.key, None)
            followers = track.followers
            self._pending -= 1 + len(followers)
            self._count_completion(result, copies=1 + len(followers))
            self.metrics.ingest(
                model=job.name, seconds=result.seconds, trace=result.trace
            )
            for follower in followers:
                if not result.ok:
                    continue
                # A coalesced duplicate's effective latency is the primary
                # execution it waited on.
                self.metrics.ingest(
                    model=follower.job.name,
                    seconds=result.seconds,
                    cache_tier="batch",
                )
            if result.ok and self.cache is not None:
                payload = result.result_payload or result.result.to_dict()
                self.cache.put(track.key, payload, track.semantic_key)
        self._write_trace(result)
        if track.wait and track.client is not None:
            track.client.send({"type": "result", "job": result.to_dict()})
        for follower in followers:
            follower_result = SynthesisService._follower_result(follower.job, result)
            if follower.wait and follower.client is not None:
                follower.client.send(
                    {"type": "result", "job": follower_result.to_dict()}
                )

    def _count_completion(self, result: JobResult, copies: int) -> None:
        """Counter upkeep for a finished job and its coalesced copies."""
        self._counters["completed"] += copies
        if result.ok:
            self._counters["succeeded"] += copies
        elif result.status is JobStatus.TIMEOUT:
            self._counters["timeout"] += copies
        else:
            self._counters["failed"] += copies

    def _write_trace(self, result: JobResult) -> None:
        """Append a finished job's spans to the JSONL trace file, if any."""
        if self.trace_path is None or not result.trace:
            return
        lines = span_lines(result.job_id, result.name, result.trace)
        try:
            with self._trace_lock:
                write_trace_jsonl(self.trace_path, lines)
        except OSError:  # pragma: no cover - tracing must never sink a job
            pass

    # -- observability ---------------------------------------------------------

    def _observability_frame(self, kind: str) -> dict:
        """One atomic snapshot of every mutable counter the frame reports.

        Queue depth, the in-flight map, job counters, cache counters, and
        the latency histograms all mutate under ``_lock`` as jobs are
        scheduled and completed; reading them in separate critical sections
        could tear — e.g. a ``completed`` count that already includes a job
        whose queue-depth decrement it doesn't.  Everything is therefore
        snapshotted in a single critical section.  Taking the pool snapshot
        inside the daemon lock follows the established lock order (daemon
        lock → pool lock, as in ``_handle_submit``'s admission section).
        """
        with self._lock:
            workers = self._pool.snapshot() if self._pool is not None else {}
            jobs = dict(self._counters)
            pending = self._pending
            draining = self._draining
            if kind == "stats":
                clients = len(self._clients)
                in_flight_keys = len(self._by_key)
                latency = self.metrics.snapshot()
                # The full cache counter set (stats() walks the disk tier,
                # so it lives on the heavyweight endpoint, not in health).
                cache = self.cache.stats() if self.cache is not None else None
            else:
                cache = (
                    {
                        "exact_hits": self.cache.exact_hits,
                        "semantic_hits": self.cache.semantic_hits,
                        "misses": self.cache.misses,
                        "stores": self.cache.stores,
                        "hit_rate": self.cache.hit_rate,
                    }
                    if self.cache is not None
                    else None
                )
        frame = {
            "type": kind,
            "ok": True,
            "draining": draining,
            "uptime_seconds": (
                time.monotonic() - self._started_at
                if self._started_at is not None
                else 0.0
            ),
            "socket": self.socket_path,
            "pending": pending,
            "max_pending": self.max_pending,
            "queue_depth": workers.get("queue_depth", 0),
            "running": workers.get("busy", 0),
            "workers": workers,
            "jobs": jobs,
            "cache": cache,
        }
        if kind == "stats":
            frame["clients"] = clients
            frame["in_flight_keys"] = in_flight_keys
            frame["trace_jobs"] = self.trace_jobs
            frame["trace_path"] = str(self.trace_path) if self.trace_path else None
            frame["latency"] = latency
        return frame

    def _health_frame(self) -> dict:
        return self._observability_frame("health")

    def _stats_frame(self) -> dict:
        return self._observability_frame("stats")

    def _metrics_frame(self) -> dict:
        """The metrics families as Prometheus exposition text.

        Rendered in one critical section, like the stats frame, so the
        scraped buckets are a consistent snapshot.
        """
        with self._lock:
            text = render_prometheus(self.metrics)
        return {"type": "metrics", "content_type": "text/plain; version=0.0.4", "text": text}
