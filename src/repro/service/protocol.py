"""Wire protocol of the resident synthesis daemon.

Frames
------

Everything on the socket is a **frame**: a 4-byte big-endian unsigned
length followed by that many bytes of UTF-8 JSON encoding one object.
Frames are self-delimiting, so requests, responses, and asynchronously
streamed progress can share one connection.  A frame that cannot be
decoded — oversized length, truncated body, invalid JSON, or a non-object
payload — raises :class:`ProtocolError`; once a stream is torn like that
its framing is unreliable, so the daemon answers with one ``error`` frame
and closes *that* connection (other clients are unaffected).

Requests (client → daemon)
--------------------------

``{"type": "submit", "jobs": [SPEC, ...], "wait": bool, "stream": bool}``
    Submit a batch of jobs.  Each SPEC is ``{"name": str, "term": str}``
    plus optional ``"config"`` (a ``SynthesisConfig.to_dict()``),
    ``"priority"`` (int, higher first), ``"timeout"`` (seconds), and
    ``"id"``.  The term is flat-CSG s-expression text (a model file's
    contents verbatim, or canonical text — both parse).  ``wait`` asks for
    one ``result`` frame per job; ``stream`` additionally asks for
    ``event`` progress frames.

``{"type": "health"}`` / ``{"type": "stats"}``
    Liveness/observability snapshots; answered synchronously.  Both are
    taken atomically under the daemon lock.  The ``stats`` response
    additionally carries ``clients``, ``in_flight_keys``, the full cache
    counter set, and a ``latency`` section — streaming histogram
    summaries (count/mean/p50/p95/p99, exact-rank over fixed log-scale
    buckets) for end-to-end job latency plus per-phase, per-model, and
    per-cache-tier families (``szalinski stats --percentiles`` renders
    it; phase families fill in while the daemon runs with job tracing
    on, the default).

``{"type": "metrics"}``
    The same histogram families rendered as Prometheus text exposition
    (``repro_phase_latency_seconds`` etc.), answered with ``{"type":
    "metrics", "content_type": ..., "text": str}`` — the payload for a
    scrape endpoint or ``szalinski stats --prometheus``.  Snapshotted
    under the daemon lock like ``stats``.

``{"type": "shutdown"}``
    Ask the daemon to drain in-flight jobs and exit (acked with ``ok``).

Responses (daemon → client)
---------------------------

``{"type": "accepted", "job_ids": [...]}``
    The submission was admitted; ids are in SPEC order.

``{"type": "rejected", "reason": str}``
    The submission was refused *as a whole* — duplicate job ids, a full
    pending queue (admission control), or a draining daemon.  Nothing was
    enqueued.

``{"type": "result", "job": <JobResult.to_dict()>}``
    One job finished (sent only when the submission asked to ``wait``).
    ``job.cached``/``job.cache_tier`` distinguish fresh runs from
    ``exact``/``semantic`` cache hits and in-flight ``batch`` coalescing.

``{"type": "event", "kind": ..., "job_id": ..., "name": ..., "seconds":
..., "message": ...}``
    One :class:`~repro.service.job.JobEvent` (``stream`` submissions only).

``{"type": "health", ...}`` / ``{"type": "stats", ...}`` / ``{"type":
"ok"}`` / ``{"type": "error", "error": str}``
    Direct answers.  ``error`` is a *well-formed but unserviceable* frame
    (unknown type, missing fields); the connection stays open.

:class:`DaemonClient` wraps one connection with the request/response and
result-collection bookkeeping (asynchronous ``result`` frames can overtake
a response on the wire; the client buffers them), so CLI and tests never
touch raw frames.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Callable, Dict, List, Optional

#: Hard ceiling on one frame's JSON body.  Large enough for any synthesis
#: result the suite produces, small enough that a garbage length prefix
#: cannot make the daemon allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """The byte stream does not contain a well-formed frame."""


class DaemonError(Exception):
    """The daemon answered, but with a rejection or an error frame."""


def send_frame(sock: socket.socket, frame: dict) -> None:
    """Serialize one frame onto the socket."""
    body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds the protocol maximum")
    sock.sendall(_HEADER.pack(len(body)) + body)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one frame; None on a clean EOF at a frame boundary.

    Raises :class:`ProtocolError` for anything that is not a well-formed
    frame: EOF mid-frame, an oversized length prefix, undecodable JSON, or
    a body that is not a JSON object.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    length = _HEADER.unpack(header)[0]
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds the protocol maximum")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    try:
        frame = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError("frame body must be a JSON object")
    return frame


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Exactly ``count`` bytes, or None on EOF before the first byte."""
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            return None if len(chunks) == 0 else _torn()
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _torn() -> bytes:
    raise ProtocolError("connection closed mid-frame")


class DaemonClient:
    """One connection to a :class:`~repro.service.daemon.SynthesisDaemon`.

    Usable from the CLI and tests as a context manager::

        with DaemonClient("/tmp/szalinski.sock") as client:
            accepted = client.submit([{"name": "gear", "term": text}])
            results = client.wait_for(accepted["job_ids"])

    The daemon pushes ``result``/``event`` frames asynchronously, so a
    frame belonging to an earlier submission can arrive while the client
    waits for a direct response; :meth:`_response` files those away and
    :meth:`wait_for` consumes the buffer first.
    """

    def __init__(self, socket_path, timeout: Optional[float] = 60.0):
        self.socket_path = str(socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(self.socket_path)
        #: result frames received while waiting for something else.
        self._pending_results: Dict[str, dict] = {}

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- requests --------------------------------------------------------------

    def request(self, frame: dict) -> dict:
        """Send one request frame and return its direct response frame."""
        send_frame(self._sock, frame)
        return self._response()

    def submit(
        self,
        jobs: List[dict],
        wait: bool = True,
        stream: bool = False,
    ) -> dict:
        """Submit job specs; returns the ``accepted`` frame.

        Raises :class:`DaemonError` if the daemon rejects the submission
        (full queue, duplicate ids, draining).
        """
        response = self.request(
            {"type": "submit", "jobs": jobs, "wait": wait, "stream": stream}
        )
        if response.get("type") == "rejected":
            raise DaemonError(response.get("reason", "submission rejected"))
        if response.get("type") != "accepted":
            raise DaemonError(f"unexpected response: {response}")
        return response

    def wait_for(
        self,
        job_ids: List[str],
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> Dict[str, dict]:
        """Collect the ``result`` frame of every listed job.

        Returns ``{job_id: JobResult.to_dict()}``.  ``on_event`` receives
        any ``event`` frames that arrive in between (stream submissions).
        """
        outstanding = set(job_ids)
        results: Dict[str, dict] = {}
        for job_id in list(outstanding):
            if job_id in self._pending_results:
                results[job_id] = self._pending_results.pop(job_id)
                outstanding.discard(job_id)
        while outstanding:
            frame = recv_frame(self._sock)
            if frame is None:
                raise DaemonError(
                    f"daemon closed the connection with {len(outstanding)} "
                    "job(s) still outstanding"
                )
            kind = frame.get("type")
            if kind == "result":
                job = frame.get("job", {})
                job_id = job.get("job_id")
                if job_id in outstanding:
                    results[job_id] = job
                    outstanding.discard(job_id)
                else:
                    self._pending_results[str(job_id)] = job
            elif kind == "event":
                if on_event is not None:
                    on_event(frame)
            elif kind == "error":
                raise DaemonError(frame.get("error", "daemon reported an error"))
            # Anything else (e.g. a health response to a pipelined request)
            # is not ours to consume here; drop it — callers that pipeline
            # requests should use separate connections.
        return results

    def submit_and_wait(
        self,
        jobs: List[dict],
        stream: bool = False,
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> List[dict]:
        """Submit and block until every job's result is in (spec order)."""
        accepted = self.submit(jobs, wait=True, stream=stream)
        results = self.wait_for(accepted["job_ids"], on_event=on_event)
        return [results[job_id] for job_id in accepted["job_ids"]]

    def health(self) -> dict:
        """The daemon's health snapshot."""
        return self.request({"type": "health"})

    def stats(self) -> dict:
        """The daemon's full statistics snapshot."""
        return self.request({"type": "stats"})

    def metrics(self) -> dict:
        """The daemon's metrics as Prometheus exposition text (``text`` key)."""
        return self.request({"type": "metrics"})

    def shutdown(self) -> dict:
        """Ask the daemon to drain and exit; returns the ``ok`` ack."""
        return self.request({"type": "shutdown"})

    # -- internals -------------------------------------------------------------

    def _response(self) -> dict:
        """The next frame that is a direct response (results are buffered)."""
        while True:
            frame = recv_frame(self._sock)
            if frame is None:
                raise DaemonError("daemon closed the connection")
            kind = frame.get("type")
            if kind == "result":
                job = frame.get("job", {})
                self._pending_results[str(job.get("job_id"))] = job
                continue
            if kind == "event":
                continue
            return frame
