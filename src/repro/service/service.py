"""The batch synthesis service: cache check → worker fan-out → report.

:class:`SynthesisService` is the orchestration layer the CLI and the Table 1
harness sit on.  For every submitted job it:

1. probes the content-addressed :class:`~repro.service.cache.ResultCache`
   (when one is attached) — a hit short-circuits the job entirely and is
   reported with ``cached=True``;
2. coalesces misses that share a cache key — one representative executes
   and its duplicates are served the same outcome (``cache_tier="batch"``)
   without running;
3. dispatches the representatives to a
   :class:`~repro.service.worker.WorkerPool` (``worker_count >= 1``) or the
   inline executor (``worker_count == 0``), streaming
   :class:`~repro.service.job.JobEvent`\\ s to the caller;
4. writes every fresh success back into the cache and assembles a
   :class:`BatchReport` with per-job outcomes in submission order.

Failures never propagate: a job that raises, crashes its worker, or blows
its timeout is a failed entry in the report, and the rest of the batch is
unaffected.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.core.pipeline import SynthesisResult
from repro.obs.histogram import MetricsAggregator
from repro.service.cache import ResultCache, cache_key, semantic_cache_key
from repro.service.job import JobEvent, JobResult, JobStatus, SynthesisJob
from repro.service.worker import EventCallback, WorkerPool, run_jobs_inline, _emit


@dataclass
class BatchReport:
    """Everything one batch run produced."""

    #: Per-job outcomes, in submission order (not completion order).
    results: List[JobResult]
    #: Wall-clock seconds for the whole batch.
    seconds: float = 0.0
    #: Worker processes used (0 = inline execution).
    worker_count: int = 0
    #: Cache counter snapshot for this run ({} when no cache was attached).
    cache: Dict[str, object] = field(default_factory=dict)
    #: Latency snapshot (``MetricsAggregator.snapshot()``) for this service's
    #: lifetime so far; per-phase families are populated when tracing is on.
    metrics: Dict[str, object] = field(default_factory=dict)

    # -- accessors -------------------------------------------------------------

    @property
    def succeeded(self) -> List[JobResult]:
        return [r for r in self.results if r.ok]

    @property
    def failed(self) -> List[JobResult]:
        return [r for r in self.results if not r.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def exact_hits(self) -> int:
        """Jobs served by the exact (byte-identical input) cache level."""
        return sum(1 for r in self.results if r.cached and r.cache_tier == "exact")

    @property
    def semantic_hits(self) -> int:
        """Jobs served by the semantic (normalized-key) cache level."""
        return sum(1 for r in self.results if r.cached and r.cache_tier == "semantic")

    @property
    def batch_hits(self) -> int:
        """Jobs coalesced onto an identical job within the same batch."""
        return sum(1 for r in self.results if r.cached and r.cache_tier == "batch")

    @property
    def hit_rate(self) -> float:
        """Fraction of jobs served from the cache (0.0 without a cache)."""
        return self.cache_hits / len(self.results) if self.results else 0.0

    def result_for(self, name: str) -> Optional[JobResult]:
        """The first job result with the given name, if any."""
        for result in self.results:
            if result.name == name:
                return result
        return None

    def to_dict(self) -> dict:
        """JSON-able report (per-job outcomes are compact summaries)."""
        return {
            "seconds": self.seconds,
            "worker_count": self.worker_count,
            "jobs": len(self.results),
            "succeeded": len(self.succeeded),
            "failed": len(self.failed),
            "cache_hits": self.cache_hits,
            "exact_hits": self.exact_hits,
            "semantic_hits": self.semantic_hits,
            "batch_hits": self.batch_hits,
            "hit_rate": self.hit_rate,
            "cache": self.cache,
            "metrics": self.metrics,
            "results": [result.to_dict() for result in self.results],
        }


class SynthesisService:
    """Throughput-oriented front end over the one-shot synthesis pipeline."""

    def __init__(
        self,
        worker_count: int = 0,
        cache: Optional[ResultCache] = None,
        on_event: Optional[EventCallback] = None,
        persistent: bool = False,
        trace: bool = False,
    ):
        if worker_count < 0:
            raise ValueError("worker_count must be >= 0")
        self.worker_count = worker_count
        self.cache = cache
        self.on_event = on_event
        #: Keep worker processes alive across jobs within a batch (see
        #: :class:`~repro.service.worker.WorkerPool`); ignored when
        #: ``worker_count == 0``.
        self.persistent = persistent
        #: When True every executed job runs with per-phase span tracing and
        #: ships its trace back on :attr:`JobResult.trace`; the trace flag is
        #: not part of the cache identity.
        self.trace = trace
        #: Streaming latency histograms over this service's lifetime (per
        #: phase / per model / per cache tier); snapshotted into every
        #: :attr:`BatchReport.metrics`.
        self.metrics = MetricsAggregator()

    def run_batch(self, jobs: Sequence[SynthesisJob]) -> BatchReport:
        """Run a batch of jobs and return their outcomes in submission order.

        Raises :class:`ValueError` when two jobs share a ``job_id`` —
        results are keyed by id, so duplicates would silently clobber one
        outcome and report the other twice.
        """
        jobs = [self._normalize(job) for job in jobs]
        if self.trace:
            jobs = [job if job.trace else replace(job, trace=True) for job in jobs]
        self._reject_duplicate_ids(jobs)
        start = time.perf_counter()
        results: Dict[str, JobResult] = {}

        to_run: List[SynthesisJob] = []
        keys: Dict[str, str] = {}
        semantic_keys: Dict[str, Optional[str]] = {}
        #: Within-batch coalescing: first job seen per cache key runs, the
        #: rest are served its outcome (the key folds in the config and the
        #: clamped timeout, so only genuinely interchangeable jobs merge).
        primary_for_key: Dict[str, str] = {}
        followers: Dict[str, List[SynthesisJob]] = {}
        for job in jobs:
            key = cache_key(job.term, job.config)
            keys[job.job_id] = key
            if self.cache is not None:
                # The semantic key is only derived when the tier is on —
                # normalization walks the whole term, and --no-semantic-cache
                # should not pay for it.
                semantic_key = (
                    semantic_cache_key(job.term, job.config)
                    if self.cache.semantic
                    else None
                )
                semantic_keys[job.job_id] = semantic_key
                lookup_start = time.perf_counter()
                payload, tier = self.cache.lookup(key, semantic_key)
                if payload is not None:
                    self.metrics.ingest(
                        model=job.name,
                        seconds=time.perf_counter() - lookup_start,
                        cache_tier=tier,
                    )
                    results[job.job_id] = JobResult(
                        job_id=job.job_id,
                        name=job.name,
                        status=JobStatus.SUCCEEDED,
                        result=SynthesisResult.from_dict(payload),
                        cached=True,
                        cache_tier=tier,
                    )
                    _emit(
                        self.on_event,
                        JobEvent("cache-hit", job.job_id, job.name, message=tier),
                    )
                    continue
            primary_id = primary_for_key.get(key)
            if primary_id is not None:
                followers.setdefault(primary_id, []).append(job)
                continue
            primary_for_key[key] = job.job_id
            to_run.append(job)

        if to_run:
            if self.worker_count == 0:
                executed = run_jobs_inline(to_run, self.on_event)
            else:
                pool = WorkerPool(self.worker_count, persistent=self.persistent)
                executed = pool.run(to_run, self.on_event)
            for job in to_run:
                outcome = executed[job.job_id]
                results[job.job_id] = outcome
                self.metrics.ingest(
                    model=job.name, seconds=outcome.seconds, trace=outcome.trace
                )
                if self.cache is not None and outcome.ok:
                    # The worker already shipped the result as its to_dict()
                    # form; store that verbatim instead of re-serializing.
                    payload = outcome.result_payload or outcome.result.to_dict()
                    self.cache.put(
                        keys[job.job_id], payload, semantic_keys[job.job_id]
                    )
                for follower in followers.get(job.job_id, ()):
                    results[follower.job_id] = self._follower_result(follower, outcome)
                    if outcome.ok:
                        # The follower's effective latency is the primary's
                        # execution it waited on.
                        self.metrics.ingest(
                            model=follower.name,
                            seconds=outcome.seconds,
                            cache_tier="batch",
                        )
                    _emit(
                        self.on_event,
                        JobEvent(
                            "cache-hit" if outcome.ok else "failed",
                            follower.job_id,
                            follower.name,
                            message="batch" if outcome.ok else outcome.error_summary(),
                        ),
                    )

        return BatchReport(
            results=[results[job.job_id] for job in jobs],
            seconds=time.perf_counter() - start,
            worker_count=self.worker_count,
            cache=self.cache.stats() if self.cache is not None else {},
            metrics=self.metrics.snapshot(),
        )

    @staticmethod
    def _reject_duplicate_ids(jobs: Sequence[SynthesisJob]) -> None:
        """Fail fast on colliding job ids instead of corrupting the report."""
        seen: Dict[str, int] = {}
        for job in jobs:
            seen[job.job_id] = seen.get(job.job_id, 0) + 1
        duplicates = sorted(job_id for job_id, count in seen.items() if count > 1)
        if duplicates:
            raise ValueError(
                f"duplicate job ids in batch: {', '.join(duplicates)} — "
                "results are keyed by job_id, so duplicates would clobber "
                "each other; give each job a unique id (or let it default)"
            )

    @staticmethod
    def _follower_result(job: SynthesisJob, primary: JobResult) -> JobResult:
        """The outcome a coalesced duplicate reports.

        The follower never ran: on success it is served the primary's
        payload exactly like a cache hit (``cache_tier="batch"``); a failed
        or timed-out primary is mirrored (an identical job would have met
        the identical fate), with the error annotated so the report shows
        where the single execution happened.
        """
        if primary.ok:
            return JobResult(
                job_id=job.job_id,
                name=job.name,
                status=JobStatus.SUCCEEDED,
                result=primary.result,
                cached=True,
                cache_tier="batch",
                result_payload=primary.result_payload,
            )
        return JobResult(
            job_id=job.job_id,
            name=job.name,
            status=primary.status,
            error=(
                f"coalesced with identical job {primary.job_id}, which "
                f"{primary.status.value}:\n{primary.error or ''}"
            ),
        )

    @staticmethod
    def _normalize(job: SynthesisJob) -> SynthesisJob:
        """Fold a job's timeout into its config *before* cache keying.

        The timeout clamps the saturation fuel (``max_seconds``) inside the
        worker, which can change the synthesized result — so it must be part
        of the cache identity.  Normalizing here means a timeout-truncated
        run is stored under the clamped config's key and can never be served
        to a later run with a bigger budget.
        """
        if job.timeout is None or job.timeout >= job.config.max_seconds:
            return job
        return replace(job, config=replace(job.config, max_seconds=job.timeout))

    # -- convenience -----------------------------------------------------------

    def run_files(self, paths: Sequence, config=None, **job_kwargs) -> BatchReport:
        """Batch-synthesize a list of flat-CSG files."""
        jobs = [SynthesisJob.from_file(path, config, **job_kwargs) for path in paths]
        return self.run_batch(jobs)
