"""Process-parallel execution of synthesis jobs.

The unit of execution is :func:`execute_payload`: a pure function from a
job's JSON-able payload to a JSON-able outcome dict.  It never raises — any
exception inside the pipeline is captured as a ``"failed"`` outcome with the
full traceback — so the contract between parent and worker is "a dict always
comes back (unless the process itself died)".

:class:`WorkerPool` fans payloads out across OS processes, one process per
job (filled up to ``worker_count`` concurrent slots).  A fresh process per
job is the isolation boundary the batch service needs: a job that corrupts
interpreter state, leaks memory, segfaults, or hits its hard timeout takes
down only its own process; the parent reaps the corpse and reports a
failed/timed-out :class:`~repro.service.job.JobResult` while the rest of the
batch keeps running.

With ``persistent=True`` the pool instead keeps ``worker_count`` long-lived
worker processes alive for the duration of the batch and streams job
payloads to them over duplex pipes — amortizing interpreter/import startup
across the whole batch instead of paying it per job.  The crash-isolation
contract is unchanged: a persistent worker that dies mid-job (crash,
segfault, or a hard timeout kill) takes down only the job it was running —
the job is reported FAILED/TIMEOUT and a replacement worker is spawned if
work remains.  Per-process state corruption can now outlive a *successful*
job, which is the deliberate trade: callers who need the strictest
isolation keep the default one-process-per-job mode.

:func:`run_jobs_inline` is the zero-process executor used for ``--jobs 0``
(and by unit tests): same scheduling order and error capture, but timeouts
are only honored cooperatively (the config's ``max_seconds`` fuel is
clamped) since there is no process to kill.

:class:`ResidentPool` is the daemon-facing variant: the same persistent
worker processes, but driven by a resident scheduler thread that accepts
job submissions at any time and reports completions through per-job
callbacks instead of draining one batch and returning.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
import time
from dataclasses import dataclass, replace
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.service.job import JobEvent, JobResult, JobStatus, SynthesisJob
from repro.service.queue import JobQueue

#: Event callback signature: receives every JobEvent the executor emits.
EventCallback = Callable[[JobEvent], None]


def execute_payload(payload: dict) -> dict:
    """Run one job payload to completion; always returns an outcome dict.

    Outcomes are ``{"job_id", "name", "seconds", "status": "succeeded",
    "result": <SynthesisResult.to_dict()>}`` or ``{"status": "failed",
    "error": <traceback text>}``.  When the payload carries ``"trace": True``
    the job runs under a fresh :class:`repro.obs.trace.Tracer` (a root
    ``job`` span over ``parse`` and the pipeline phases) and the outcome
    gains ``"trace": <exported span list>``.  Imports are deliberately local
    so a freshly spawned worker only pays for the pipeline once it actually
    runs.
    """
    import traceback

    start = time.perf_counter()
    base = {"job_id": payload["job_id"], "name": payload["name"]}
    try:
        from repro.core.config import SynthesisConfig
        from repro.core.pipeline import synthesize
        from repro.lang.canon import term_from_canonical
        from repro.obs.trace import NULL_TRACER, Tracer

        tracer = Tracer() if payload.get("trace") else NULL_TRACER
        with tracer.span("job", {"job_id": payload["job_id"], "name": payload["name"]}):
            with tracer.span("parse"):
                term = term_from_canonical(payload["term"])
            config = SynthesisConfig.from_dict(payload["config"])
            timeout = payload.get("timeout")
            if timeout is not None:
                # Cooperative deadline: the saturation fuel cannot exceed the
                # job's budget.  The hard deadline (process kill) is the pool's.
                config = replace(config, max_seconds=min(config.max_seconds, timeout))
            result = synthesize(term, config, tracer=tracer)
        outcome = {
            **base,
            "status": "succeeded",
            "seconds": time.perf_counter() - start,
            "result": result.to_dict(),
        }
        if tracer.enabled:
            outcome["trace"] = tracer.export()
        return outcome
    except Exception:
        return {
            **base,
            "status": "failed",
            "seconds": time.perf_counter() - start,
            "error": traceback.format_exc(),
        }


def _persistent_worker_loop(conn) -> None:
    """Long-lived worker entry point: serve payloads until told to stop.

    The protocol is strictly request/response over one duplex pipe: the
    parent sends a payload dict, the worker answers with exactly one
    outcome dict.  ``None`` (or a closed pipe) is the shutdown signal.
    """
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            break
        if payload is None:
            break
        try:
            outcome = execute_payload(payload)
        except BaseException:  # pragma: no cover - execute_payload already catches
            import traceback

            outcome = {
                "job_id": payload.get("job_id", "?"),
                "name": payload.get("name", "?"),
                "status": "failed",
                "seconds": 0.0,
                "error": traceback.format_exc(),
            }
        try:
            conn.send(outcome)
        except (BrokenPipeError, OSError):
            break
    conn.close()


def _worker_entry(payload: dict, conn) -> None:
    """Child-process entry point: run the payload, ship the outcome back."""
    try:
        outcome = execute_payload(payload)
    except BaseException:  # pragma: no cover - execute_payload already catches
        import traceback

        outcome = {
            "job_id": payload.get("job_id", "?"),
            "name": payload.get("name", "?"),
            "status": "failed",
            "seconds": 0.0,
            "error": traceback.format_exc(),
        }
    try:
        conn.send(outcome)
    finally:
        conn.close()


def _pick_context(start_method: Optional[str]) -> Tuple[object, str]:
    """The multiprocessing context for worker processes.

    Fork (where available) keeps per-job startup cheap: the child inherits
    the already-imported pipeline instead of re-importing.
    """
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else methods[0]
    return multiprocessing.get_context(start_method), start_method


def _spawn_worker(context) -> "_PersistentWorker":
    """Start one long-lived worker process fed over a duplex pipe."""
    parent_conn, child_conn = context.Pipe(duplex=True)
    # daemon=False: a job may host its own search-worker pool
    # (config.search_workers), and daemonic processes may not have children.
    # Crash/exit cleanup is handled explicitly by the pools' shutdown paths.
    process = context.Process(
        target=_persistent_worker_loop, args=(child_conn,), daemon=False
    )
    process.start()
    child_conn.close()
    return _PersistentWorker(process=process, conn=parent_conn)


def _result_from_outcome(job: SynthesisJob, outcome: dict, seconds: float) -> JobResult:
    """Convert a worker outcome dict into a JobResult."""
    from repro.core.pipeline import SynthesisResult

    if outcome["status"] == "succeeded":
        return JobResult(
            job_id=job.job_id,
            name=job.name,
            status=JobStatus.SUCCEEDED,
            result=SynthesisResult.from_dict(outcome["result"]),
            seconds=seconds,
            result_payload=outcome["result"],
            trace=outcome.get("trace"),
        )
    return JobResult(
        job_id=job.job_id,
        name=job.name,
        status=JobStatus.FAILED,
        error=outcome.get("error", "worker reported failure without a traceback"),
        seconds=seconds,
    )


def _emit(on_event: Optional[EventCallback], event: JobEvent) -> None:
    if on_event is not None:
        on_event(event)


def run_jobs_inline(
    jobs: Sequence[SynthesisJob], on_event: Optional[EventCallback] = None
) -> Dict[str, JobResult]:
    """Execute jobs in this process, in scheduling order, with error capture."""
    results: Dict[str, JobResult] = {}
    for job in JobQueue(jobs).drain():
        _emit(on_event, JobEvent("start", job.job_id, job.name))
        start = time.perf_counter()
        outcome = execute_payload(job.payload())
        elapsed = time.perf_counter() - start
        result = _result_from_outcome(job, outcome, elapsed)
        results[job.job_id] = result
        kind = "done" if result.ok else "failed"
        _emit(on_event, JobEvent(kind, job.job_id, job.name, elapsed, result.error_summary()))
    return results


@dataclass
class _Slot:
    """One running worker process and its bookkeeping."""

    job: SynthesisJob
    process: multiprocessing.process.BaseProcess
    conn: object
    started: float
    deadline: Optional[float]


@dataclass
class _PersistentWorker:
    """One long-lived worker process and the job it is currently running."""

    process: multiprocessing.process.BaseProcess
    conn: object
    job: Optional[SynthesisJob] = None
    started: float = 0.0
    deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.job is not None

    def assign(self, job: SynthesisJob, on_event: Optional[EventCallback]) -> None:
        self.job = job
        self.started = time.perf_counter()
        self.deadline = self.started + job.timeout if job.timeout is not None else None
        self.conn.send(job.payload())
        _emit(on_event, JobEvent("start", job.job_id, job.name))

    def shutdown(self) -> None:
        """Best-effort graceful stop, then force."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join()


class WorkerPool:
    """Fans jobs out across processes, up to ``worker_count`` at a time.

    ``persistent=True`` switches from one-process-per-job to a fixed crew of
    long-lived workers fed over pipes (see the module docstring for the
    isolation trade-off).
    """

    def __init__(
        self,
        worker_count: int,
        start_method: Optional[str] = None,
        persistent: bool = False,
    ):
        if worker_count < 1:
            raise ValueError("worker_count must be >= 1 (use run_jobs_inline for 0)")
        self.worker_count = worker_count
        self.persistent = persistent
        #: Worker processes spawned over the pool's lifetime, in *either*
        #: mode: one per job in the default mode, and in persistent mode
        #: the initial crew plus one per respawn after a crash/timeout
        #: (observable in tests and reports).
        self.workers_spawned = 0
        self._context, self.start_method = _pick_context(start_method)

    # -- driver ----------------------------------------------------------------

    def run(
        self, jobs: Sequence[SynthesisJob], on_event: Optional[EventCallback] = None
    ) -> Dict[str, JobResult]:
        """Run every job; returns results keyed by job id.

        Jobs are dispatched in queue order (priority desc, then FIFO).  The
        call returns only when every job has succeeded, failed, crashed, or
        been killed at its deadline.
        """
        if self.persistent:
            return self._run_persistent(jobs, on_event)
        queue = JobQueue(jobs)
        running: List[_Slot] = []
        results: Dict[str, JobResult] = {}
        try:
            while queue or running:
                while queue and len(running) < self.worker_count:
                    running.append(self._launch(queue.pop(), on_event))
                self._reap(running, results, on_event)
        finally:
            # Belt and braces: never leave orphaned workers behind if the
            # driver itself is interrupted.
            for slot in running:
                if slot.process.is_alive():
                    slot.process.terminate()
                slot.process.join()
        return results

    # -- persistent mode --------------------------------------------------------

    def _spawn_persistent(self) -> _PersistentWorker:
        self.workers_spawned += 1
        return _spawn_worker(self._context)

    #: Consecutive idle-death assignment failures tolerated per job before
    #: it is reported FAILED instead of retried on a fresh worker.
    _MAX_ASSIGN_ATTEMPTS = 3

    def _run_persistent(
        self, jobs: Sequence[SynthesisJob], on_event: Optional[EventCallback]
    ) -> Dict[str, JobResult]:
        queue = JobQueue(jobs)
        results: Dict[str, JobResult] = {}
        assign_failures: Dict[str, int] = {}
        crew: List[_PersistentWorker] = [
            self._spawn_persistent() for _ in range(min(self.worker_count, len(queue)))
        ]
        try:
            while queue or any(worker.busy for worker in crew):
                for worker in list(crew):  # _retire mutates the crew
                    if worker.busy or not queue:
                        continue
                    job = queue.pop()
                    try:
                        worker.assign(job, on_event)
                    except (BrokenPipeError, OSError):
                        # The worker died while *idle*: the job never
                        # started, so retry it on a replacement (bounded —
                        # if fresh workers keep dying on arrival, fail the
                        # job rather than spin) and keep the batch alive.
                        worker.job = None
                        failures = assign_failures.get(job.job_id, 0) + 1
                        assign_failures[job.job_id] = failures
                        if failures >= self._MAX_ASSIGN_ATTEMPTS:
                            result = JobResult(
                                job_id=job.job_id,
                                name=job.name,
                                status=JobStatus.FAILED,
                                error=(
                                    "persistent worker died before accepting the "
                                    f"job ({failures} attempts)"
                                ),
                            )
                            results[job.job_id] = result
                            _emit(
                                on_event,
                                JobEvent(
                                    "failed", job.job_id, job.name, 0.0,
                                    result.error_summary(),
                                ),
                            )
                        else:
                            queue.push(job)
                        self._retire(worker, crew, queue)
                self._reap_persistent(crew, queue, results, on_event)
        finally:
            for worker in crew:
                worker.shutdown()
        return results

    def _reap_persistent(
        self,
        crew: List[_PersistentWorker],
        queue: JobQueue,
        results: Dict[str, JobResult],
        on_event: Optional[EventCallback],
    ) -> None:
        """Wait for progress on busy workers; collect results, crashes, expiries."""
        busy = [worker for worker in crew if worker.busy]
        if not busy:
            return
        deadlines = [w.deadline for w in busy if w.deadline is not None]
        timeout = max(0.0, min(deadlines) - time.perf_counter()) if deadlines else None
        ready = set(connection_wait([worker.conn for worker in busy], timeout))
        now = time.perf_counter()
        for worker in busy:
            if worker.conn in ready:
                self._collect_persistent(worker, crew, queue, now, results, on_event)
            elif worker.deadline is not None and now >= worker.deadline:
                job = worker.job
                self._retire(worker, crew, queue)
                elapsed = now - worker.started
                result = JobResult(
                    job_id=job.job_id,
                    name=job.name,
                    status=JobStatus.TIMEOUT,
                    error=f"killed after exceeding the {job.timeout:g}s job timeout",
                    seconds=elapsed,
                )
                results[job.job_id] = result
                _emit(
                    on_event,
                    JobEvent("timeout", job.job_id, job.name, elapsed, result.error_summary()),
                )

    def _collect_persistent(
        self,
        worker: _PersistentWorker,
        crew: List[_PersistentWorker],
        queue: JobQueue,
        now: float,
        results: Dict[str, JobResult],
        on_event: Optional[EventCallback],
    ) -> None:
        """A busy worker's pipe is readable: an outcome, or EOF (it died)."""
        job = worker.job
        elapsed = now - worker.started
        try:
            outcome = worker.conn.recv()
        except (EOFError, OSError):
            outcome = None
        if outcome is None:
            # The worker died mid-job: fail the job, replace the worker.
            self._retire(worker, crew, queue)
            result = JobResult(
                job_id=job.job_id,
                name=job.name,
                status=JobStatus.FAILED,
                error=(
                    f"persistent worker died without reporting "
                    f"(exit code {worker.process.exitcode})"
                ),
                seconds=elapsed,
            )
        else:
            worker.job = None
            worker.deadline = None
            result = _result_from_outcome(job, outcome, outcome.get("seconds", elapsed))
        results[job.job_id] = result
        kind = "done" if result.ok else "failed"
        _emit(on_event, JobEvent(kind, job.job_id, job.name, result.seconds, result.error_summary()))

    def _retire(
        self, worker: _PersistentWorker, crew: List[_PersistentWorker], queue: JobQueue
    ) -> None:
        """Kill a dead/expired worker; respawn a replacement if work remains."""
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join()
        try:
            worker.conn.close()
        except OSError:
            pass
        crew.remove(worker)
        if queue:
            crew.append(self._spawn_persistent())

    # -- internals -------------------------------------------------------------

    def _launch(self, job: SynthesisJob, on_event: Optional[EventCallback]) -> _Slot:
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        # daemon=False for the same reason as _spawn_worker: the job's runner
        # may spawn search workers of its own.
        process = self._context.Process(
            target=_worker_entry, args=(job.payload(), child_conn), daemon=False
        )
        process.start()
        self.workers_spawned += 1
        child_conn.close()  # the parent's copy; the child holds its own
        _emit(on_event, JobEvent("start", job.job_id, job.name))
        now = time.perf_counter()
        deadline = now + job.timeout if job.timeout is not None else None
        return _Slot(job=job, process=process, conn=parent_conn, started=now, deadline=deadline)

    def _wait_timeout(self, running: Sequence[_Slot]) -> Optional[float]:
        deadlines = [slot.deadline for slot in running if slot.deadline is not None]
        if not deadlines:
            return None  # block until some worker reports (or dies: EOF readies its pipe)
        return max(0.0, min(deadlines) - time.perf_counter())

    def _reap(
        self,
        running: List[_Slot],
        results: Dict[str, JobResult],
        on_event: Optional[EventCallback],
    ) -> None:
        """Wait for progress, then collect finished / crashed / expired slots."""
        if not running:
            return
        ready = set(connection_wait([slot.conn for slot in running], self._wait_timeout(running)))
        now = time.perf_counter()
        for slot in list(running):
            if slot.conn in ready:
                results[slot.job.job_id] = self._collect(slot, now, on_event)
                running.remove(slot)
            elif slot.deadline is not None and now >= slot.deadline:
                results[slot.job.job_id] = self._kill_expired(slot, now, on_event)
                running.remove(slot)

    def _collect(
        self, slot: _Slot, now: float, on_event: Optional[EventCallback]
    ) -> JobResult:
        """A worker's pipe is readable: either an outcome or an EOF (crash).

        A dying worker can surface as ``EOFError`` *or* as ``OSError``
        (e.g. ECONNRESET on the pipe) depending on how the kernel tears the
        connection down — both mean the same thing: no outcome is coming.
        """
        job = slot.job
        elapsed = now - slot.started
        try:
            outcome = slot.conn.recv()
        except (EOFError, OSError):
            outcome = None
        slot.conn.close()
        slot.process.join()
        if outcome is None:
            result = JobResult(
                job_id=job.job_id,
                name=job.name,
                status=JobStatus.FAILED,
                error=(
                    f"worker process died without reporting "
                    f"(exit code {slot.process.exitcode})"
                ),
                seconds=elapsed,
            )
        else:
            # Prefer the worker's own timing (excludes fork/dispatch overhead).
            result = _result_from_outcome(job, outcome, outcome.get("seconds", elapsed))
        kind = "done" if result.ok else "failed"
        _emit(on_event, JobEvent(kind, job.job_id, job.name, result.seconds, result.error_summary()))
        return result

    def _kill_expired(
        self, slot: _Slot, now: float, on_event: Optional[EventCallback]
    ) -> JobResult:
        """Hard deadline: terminate the worker and report a timeout."""
        job = slot.job
        slot.process.terminate()
        slot.process.join()
        slot.conn.close()
        elapsed = now - slot.started
        result = JobResult(
            job_id=job.job_id,
            name=job.name,
            status=JobStatus.TIMEOUT,
            error=f"killed after exceeding the {job.timeout:g}s job timeout",
            seconds=elapsed,
        )
        _emit(on_event, JobEvent("timeout", job.job_id, job.name, elapsed, result.error_summary()))
        return result


#: Per-job completion callback: receives the job and its final JobResult.
ResultCallback = Callable[[SynthesisJob, JobResult], None]


@dataclass
class _Submission:
    """One submitted job and where its progress/outcome should be reported."""

    job: SynthesisJob
    on_result: ResultCallback
    on_event: Optional[EventCallback]


class ResidentPool:
    """A long-lived worker fleet serving jobs submitted one at a time.

    The daemon-facing sibling of ``WorkerPool(persistent=True)``: the same
    worker processes and pipe protocol, but instead of draining one batch
    synchronously the pool runs a resident scheduler thread that accepts
    submissions from any thread at any time and reports each completion
    through the submission's own callback.  The isolation contract is the
    batch pool's: a worker that crashes, raises, or blows its deadline
    costs only the job it was running — the job is reported
    FAILED/TIMEOUT, a replacement worker is spawned, and the fleet keeps
    serving everything else.

    Callbacks run on the scheduler thread with no pool lock held, so they
    may call back into the pool (e.g. submit follow-up work), but they must
    not block for long — every worker's results flow through this one
    thread.

    ``shutdown(drain=True)`` stops admissions, finishes every queued and
    in-flight job (callbacks included), then stops the workers;
    ``drain=False`` kills the fleet immediately and fails outstanding jobs.
    """

    def __init__(self, worker_count: int, start_method: Optional[str] = None):
        if worker_count < 1:
            raise ValueError("worker_count must be >= 1")
        self.worker_count = worker_count
        self._context, self.start_method = _pick_context(start_method)
        #: Lifetime counters (read via :meth:`snapshot`): processes started,
        #: mid-job deaths, deadline kills, replacements after either.
        self.workers_spawned = 0
        self.crashes = 0
        self.timeouts = 0
        self.respawns = 0
        self.jobs_completed = 0
        self._lock = threading.Lock()
        self._queue = JobQueue()
        self._submissions: Dict[str, _Submission] = {}
        self._assign_failures: Dict[str, int] = {}
        self._crew: List[_PersistentWorker] = []
        self._stopping = False
        self._drain = True
        self._thread: Optional[threading.Thread] = None
        # Self-pipe: submit()/shutdown() nudge the scheduler out of its
        # connection_wait so new work is assigned without polling.
        self._wake_recv, self._wake_send = socket.socketpair()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ResidentPool":
        """Spawn the worker crew and the scheduler thread."""
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("ResidentPool is already started")
            self._crew = [self._spawn() for _ in range(self.worker_count)]
            self._thread = threading.Thread(
                target=self._loop, name="resident-pool", daemon=True
            )
            self._thread.start()
        return self

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the pool.

        ``drain=True`` completes every queued and running job first (their
        callbacks fire as usual); ``drain=False`` terminates the fleet and
        fails outstanding jobs immediately.  Idempotent.
        """
        with self._lock:
            thread = self._thread
            self._stopping = True
            self._drain = self._drain and drain
        if thread is None:
            return
        self._wake()
        thread.join(timeout)

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        job: SynthesisJob,
        on_result: ResultCallback,
        on_event: Optional[EventCallback] = None,
    ) -> None:
        """Enqueue one job; ``on_result`` fires exactly once when it ends."""
        with self._lock:
            if self._thread is None or self._stopping:
                raise RuntimeError("ResidentPool is not serving")
            if job.job_id in self._submissions:
                raise ValueError(f"job id {job.job_id!r} is already in flight")
            self._queue.push(job)
            self._submissions[job.job_id] = _Submission(job, on_result, on_event)
        self._wake()

    # -- observability ---------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """A JSON-able counter snapshot (what the daemon's health embeds)."""
        with self._lock:
            return {
                "configured": self.worker_count,
                "alive": sum(1 for w in self._crew if w.process.is_alive()),
                "busy": sum(1 for w in self._crew if w.busy),
                "queue_depth": len(self._queue),
                "spawned": self.workers_spawned,
                "crashes": self.crashes,
                "timeouts": self.timeouts,
                "respawns": self.respawns,
                "completed": self.jobs_completed,
            }

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def running_count(self) -> int:
        with self._lock:
            return sum(1 for w in self._crew if w.busy)

    # -- scheduler loop --------------------------------------------------------

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"x")
        except OSError:  # racing a teardown; the loop is already exiting
            pass

    def _loop(self) -> None:
        while True:
            actions: List[Callable[[], None]] = []
            with self._lock:
                # Draining still assigns queued work; a force-stop does not.
                if not self._stopping or self._drain:
                    self._assign_ready(actions)
                busy = [w for w in self._crew if w.busy]
                finished = self._stopping and (
                    not self._drain or (not busy and not self._queue)
                )
            for action in actions:
                action()
            if finished:
                break

            deadlines = [w.deadline for w in busy if w.deadline is not None]
            timeout = (
                max(0.0, min(deadlines) - time.perf_counter()) if deadlines else None
            )
            conns = [w.conn for w in busy] + [self._wake_recv]
            ready = set(connection_wait(conns, timeout))
            if self._wake_recv in ready:
                try:
                    self._wake_recv.recv(65536)
                except OSError:
                    pass

            now = time.perf_counter()
            actions = []
            with self._lock:
                for worker in busy:
                    if worker.conn in ready:
                        self._collect_resident(worker, now, actions)
                    elif worker.deadline is not None and now >= worker.deadline:
                        self._expire_resident(worker, now, actions)
            for action in actions:
                action()
        self._teardown()

    def _assign_ready(self, actions: List[Callable[[], None]]) -> None:
        """Hand queued jobs to idle workers (lock held)."""
        for worker in list(self._crew):  # _replace mutates the crew
            if not self._queue:
                break
            if worker.busy:
                continue
            job = self._queue.pop()
            submission = self._submissions[job.job_id]
            try:
                worker.assign(job, None)
            except (BrokenPipeError, OSError):
                # The worker died while *idle*: the job never started, so
                # retry it on a replacement (bounded — if fresh workers keep
                # dying on arrival, fail the job rather than spin).
                worker.job = None
                self.crashes += 1
                self._replace(worker)
                failures = self._assign_failures.get(job.job_id, 0) + 1
                self._assign_failures[job.job_id] = failures
                if failures >= WorkerPool._MAX_ASSIGN_ATTEMPTS:
                    self._finish(
                        job,
                        JobResult(
                            job_id=job.job_id,
                            name=job.name,
                            status=JobStatus.FAILED,
                            error=(
                                "persistent worker died before accepting the "
                                f"job ({failures} attempts)"
                            ),
                        ),
                        actions,
                    )
                else:
                    self._queue.push(job)
                continue
            if submission.on_event is not None:
                event = JobEvent("start", job.job_id, job.name)
                actions.append(lambda cb=submission.on_event, e=event: cb(e))

    def _collect_resident(
        self, worker: _PersistentWorker, now: float, actions: List[Callable[[], None]]
    ) -> None:
        """A busy worker's pipe is readable: an outcome, or it died (lock held)."""
        job = worker.job
        elapsed = now - worker.started
        try:
            outcome = worker.conn.recv()
        except (EOFError, OSError):
            outcome = None
        if outcome is None:
            self.crashes += 1
            self._replace(worker)
            result = JobResult(
                job_id=job.job_id,
                name=job.name,
                status=JobStatus.FAILED,
                error=(
                    f"persistent worker died without reporting "
                    f"(exit code {worker.process.exitcode})"
                ),
                seconds=elapsed,
            )
        else:
            worker.job = None
            worker.deadline = None
            result = _result_from_outcome(job, outcome, outcome.get("seconds", elapsed))
        self._finish(job, result, actions)

    def _expire_resident(
        self, worker: _PersistentWorker, now: float, actions: List[Callable[[], None]]
    ) -> None:
        """Hard deadline: kill the worker, report TIMEOUT (lock held)."""
        job = worker.job
        self.timeouts += 1
        self._replace(worker)
        self._finish(
            job,
            JobResult(
                job_id=job.job_id,
                name=job.name,
                status=JobStatus.TIMEOUT,
                error=f"killed after exceeding the {job.timeout:g}s job timeout",
                seconds=now - worker.started,
            ),
            actions,
        )

    def _replace(self, worker: _PersistentWorker) -> None:
        """Kill a dead/expired worker; keep the fleet at strength (lock held)."""
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join()
        try:
            worker.conn.close()
        except OSError:
            pass
        self._crew.remove(worker)
        # A resident fleet must stay at strength for traffic that has not
        # arrived yet — respawn unless the pool is on its way down with no
        # queued work left.
        if not self._stopping or self._queue:
            self._crew.append(self._spawn())
            self.respawns += 1

    def _spawn(self) -> _PersistentWorker:
        self.workers_spawned += 1
        return _spawn_worker(self._context)

    def _finish(
        self, job: SynthesisJob, result: JobResult, actions: List[Callable[[], None]]
    ) -> None:
        """Queue the completion callbacks for one ended job (lock held)."""
        submission = self._submissions.pop(job.job_id, None)
        self._assign_failures.pop(job.job_id, None)
        self.jobs_completed += 1
        if submission is None:  # pragma: no cover - submissions are never dropped
            return
        if submission.on_event is not None:
            if result.status is JobStatus.TIMEOUT:
                kind = "timeout"
            else:
                kind = "done" if result.ok else "failed"
            event = JobEvent(
                kind, job.job_id, job.name, result.seconds, result.error_summary()
            )
            actions.append(lambda cb=submission.on_event, e=event: cb(e))
        actions.append(lambda cb=submission.on_result, j=job, r=result: cb(j, r))

    def _teardown(self) -> None:
        """Stop the fleet; fail anything still outstanding (force stop only)."""
        actions: List[Callable[[], None]] = []
        with self._lock:
            for worker in self._crew:
                if worker.busy:
                    job, worker.job = worker.job, None
                    self._finish(
                        job,
                        JobResult(
                            job_id=job.job_id,
                            name=job.name,
                            status=JobStatus.FAILED,
                            error="resident pool shut down while the job was running",
                        ),
                        actions,
                    )
            while self._queue:
                job = self._queue.pop()
                self._finish(
                    job,
                    JobResult(
                        job_id=job.job_id,
                        name=job.name,
                        status=JobStatus.FAILED,
                        error="resident pool shut down before the job ran",
                    ),
                    actions,
                )
            crew, self._crew = self._crew, []
        for worker in crew:
            worker.shutdown()
        for action in actions:
            action()
        self._wake_recv.close()
        self._wake_send.close()
