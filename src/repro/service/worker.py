"""Process-parallel execution of synthesis jobs.

The unit of execution is :func:`execute_payload`: a pure function from a
job's JSON-able payload to a JSON-able outcome dict.  It never raises — any
exception inside the pipeline is captured as a ``"failed"`` outcome with the
full traceback — so the contract between parent and worker is "a dict always
comes back (unless the process itself died)".

:class:`WorkerPool` fans payloads out across OS processes, one process per
job (filled up to ``worker_count`` concurrent slots).  A fresh process per
job is the isolation boundary the batch service needs: a job that corrupts
interpreter state, leaks memory, segfaults, or hits its hard timeout takes
down only its own process; the parent reaps the corpse and reports a
failed/timed-out :class:`~repro.service.job.JobResult` while the rest of the
batch keeps running.

With ``persistent=True`` the pool instead keeps ``worker_count`` long-lived
worker processes alive for the duration of the batch and streams job
payloads to them over duplex pipes — amortizing interpreter/import startup
across the whole batch instead of paying it per job.  The crash-isolation
contract is unchanged: a persistent worker that dies mid-job (crash,
segfault, or a hard timeout kill) takes down only the job it was running —
the job is reported FAILED/TIMEOUT and a replacement worker is spawned if
work remains.  Per-process state corruption can now outlive a *successful*
job, which is the deliberate trade: callers who need the strictest
isolation keep the default one-process-per-job mode.

:func:`run_jobs_inline` is the zero-process executor used for ``--jobs 0``
(and by unit tests): same scheduling order and error capture, but timeouts
are only honored cooperatively (the config's ``max_seconds`` fuel is
clamped) since there is no process to kill.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, replace
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Dict, List, Optional, Sequence

from repro.service.job import JobEvent, JobResult, JobStatus, SynthesisJob
from repro.service.queue import JobQueue

#: Event callback signature: receives every JobEvent the executor emits.
EventCallback = Callable[[JobEvent], None]


def execute_payload(payload: dict) -> dict:
    """Run one job payload to completion; always returns an outcome dict.

    Outcomes are ``{"job_id", "name", "seconds", "status": "succeeded",
    "result": <SynthesisResult.to_dict()>}`` or ``{"status": "failed",
    "error": <traceback text>}``.  Imports are deliberately local so a
    freshly spawned worker only pays for the pipeline once it actually runs.
    """
    import traceback

    start = time.perf_counter()
    base = {"job_id": payload["job_id"], "name": payload["name"]}
    try:
        from repro.core.config import SynthesisConfig
        from repro.core.pipeline import synthesize
        from repro.lang.canon import term_from_canonical

        term = term_from_canonical(payload["term"])
        config = SynthesisConfig.from_dict(payload["config"])
        timeout = payload.get("timeout")
        if timeout is not None:
            # Cooperative deadline: the saturation fuel cannot exceed the
            # job's budget.  The hard deadline (process kill) is the pool's.
            config = replace(config, max_seconds=min(config.max_seconds, timeout))
        result = synthesize(term, config)
        return {
            **base,
            "status": "succeeded",
            "seconds": time.perf_counter() - start,
            "result": result.to_dict(),
        }
    except Exception:
        return {
            **base,
            "status": "failed",
            "seconds": time.perf_counter() - start,
            "error": traceback.format_exc(),
        }


def _persistent_worker_loop(conn) -> None:
    """Long-lived worker entry point: serve payloads until told to stop.

    The protocol is strictly request/response over one duplex pipe: the
    parent sends a payload dict, the worker answers with exactly one
    outcome dict.  ``None`` (or a closed pipe) is the shutdown signal.
    """
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            break
        if payload is None:
            break
        try:
            outcome = execute_payload(payload)
        except BaseException:  # pragma: no cover - execute_payload already catches
            import traceback

            outcome = {
                "job_id": payload.get("job_id", "?"),
                "name": payload.get("name", "?"),
                "status": "failed",
                "seconds": 0.0,
                "error": traceback.format_exc(),
            }
        try:
            conn.send(outcome)
        except (BrokenPipeError, OSError):
            break
    conn.close()


def _worker_entry(payload: dict, conn) -> None:
    """Child-process entry point: run the payload, ship the outcome back."""
    try:
        outcome = execute_payload(payload)
    except BaseException:  # pragma: no cover - execute_payload already catches
        import traceback

        outcome = {
            "job_id": payload.get("job_id", "?"),
            "name": payload.get("name", "?"),
            "status": "failed",
            "seconds": 0.0,
            "error": traceback.format_exc(),
        }
    try:
        conn.send(outcome)
    finally:
        conn.close()


def _result_from_outcome(job: SynthesisJob, outcome: dict, seconds: float) -> JobResult:
    """Convert a worker outcome dict into a JobResult."""
    from repro.core.pipeline import SynthesisResult

    if outcome["status"] == "succeeded":
        return JobResult(
            job_id=job.job_id,
            name=job.name,
            status=JobStatus.SUCCEEDED,
            result=SynthesisResult.from_dict(outcome["result"]),
            seconds=seconds,
            result_payload=outcome["result"],
        )
    return JobResult(
        job_id=job.job_id,
        name=job.name,
        status=JobStatus.FAILED,
        error=outcome.get("error", "worker reported failure without a traceback"),
        seconds=seconds,
    )


def _emit(on_event: Optional[EventCallback], event: JobEvent) -> None:
    if on_event is not None:
        on_event(event)


def run_jobs_inline(
    jobs: Sequence[SynthesisJob], on_event: Optional[EventCallback] = None
) -> Dict[str, JobResult]:
    """Execute jobs in this process, in scheduling order, with error capture."""
    results: Dict[str, JobResult] = {}
    for job in JobQueue(jobs).drain():
        _emit(on_event, JobEvent("start", job.job_id, job.name))
        start = time.perf_counter()
        outcome = execute_payload(job.payload())
        elapsed = time.perf_counter() - start
        result = _result_from_outcome(job, outcome, elapsed)
        results[job.job_id] = result
        kind = "done" if result.ok else "failed"
        _emit(on_event, JobEvent(kind, job.job_id, job.name, elapsed, result.error_summary()))
    return results


@dataclass
class _Slot:
    """One running worker process and its bookkeeping."""

    job: SynthesisJob
    process: multiprocessing.process.BaseProcess
    conn: object
    started: float
    deadline: Optional[float]


@dataclass
class _PersistentWorker:
    """One long-lived worker process and the job it is currently running."""

    process: multiprocessing.process.BaseProcess
    conn: object
    job: Optional[SynthesisJob] = None
    started: float = 0.0
    deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.job is not None

    def assign(self, job: SynthesisJob, on_event: Optional[EventCallback]) -> None:
        self.job = job
        self.started = time.perf_counter()
        self.deadline = self.started + job.timeout if job.timeout is not None else None
        self.conn.send(job.payload())
        _emit(on_event, JobEvent("start", job.job_id, job.name))

    def shutdown(self) -> None:
        """Best-effort graceful stop, then force."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join()


class WorkerPool:
    """Fans jobs out across processes, up to ``worker_count`` at a time.

    ``persistent=True`` switches from one-process-per-job to a fixed crew of
    long-lived workers fed over pipes (see the module docstring for the
    isolation trade-off).
    """

    def __init__(
        self,
        worker_count: int,
        start_method: Optional[str] = None,
        persistent: bool = False,
    ):
        if worker_count < 1:
            raise ValueError("worker_count must be >= 1 (use run_jobs_inline for 0)")
        self.worker_count = worker_count
        self.persistent = persistent
        #: Worker processes spawned over the pool's lifetime, in *either*
        #: mode: one per job in the default mode, and in persistent mode
        #: the initial crew plus one per respawn after a crash/timeout
        #: (observable in tests and reports).
        self.workers_spawned = 0
        if start_method is None:
            # Fork (where available) keeps per-job startup cheap: the child
            # inherits the already-imported pipeline instead of re-importing.
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)
        self.start_method = start_method

    # -- driver ----------------------------------------------------------------

    def run(
        self, jobs: Sequence[SynthesisJob], on_event: Optional[EventCallback] = None
    ) -> Dict[str, JobResult]:
        """Run every job; returns results keyed by job id.

        Jobs are dispatched in queue order (priority desc, then FIFO).  The
        call returns only when every job has succeeded, failed, crashed, or
        been killed at its deadline.
        """
        if self.persistent:
            return self._run_persistent(jobs, on_event)
        queue = JobQueue(jobs)
        running: List[_Slot] = []
        results: Dict[str, JobResult] = {}
        try:
            while queue or running:
                while queue and len(running) < self.worker_count:
                    running.append(self._launch(queue.pop(), on_event))
                self._reap(running, results, on_event)
        finally:
            # Belt and braces: never leave orphaned workers behind if the
            # driver itself is interrupted.
            for slot in running:
                if slot.process.is_alive():
                    slot.process.terminate()
                slot.process.join()
        return results

    # -- persistent mode --------------------------------------------------------

    def _spawn_persistent(self) -> _PersistentWorker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_persistent_worker_loop, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        self.workers_spawned += 1
        return _PersistentWorker(process=process, conn=parent_conn)

    #: Consecutive idle-death assignment failures tolerated per job before
    #: it is reported FAILED instead of retried on a fresh worker.
    _MAX_ASSIGN_ATTEMPTS = 3

    def _run_persistent(
        self, jobs: Sequence[SynthesisJob], on_event: Optional[EventCallback]
    ) -> Dict[str, JobResult]:
        queue = JobQueue(jobs)
        results: Dict[str, JobResult] = {}
        assign_failures: Dict[str, int] = {}
        crew: List[_PersistentWorker] = [
            self._spawn_persistent() for _ in range(min(self.worker_count, len(queue)))
        ]
        try:
            while queue or any(worker.busy for worker in crew):
                for worker in list(crew):  # _retire mutates the crew
                    if worker.busy or not queue:
                        continue
                    job = queue.pop()
                    try:
                        worker.assign(job, on_event)
                    except (BrokenPipeError, OSError):
                        # The worker died while *idle*: the job never
                        # started, so retry it on a replacement (bounded —
                        # if fresh workers keep dying on arrival, fail the
                        # job rather than spin) and keep the batch alive.
                        worker.job = None
                        failures = assign_failures.get(job.job_id, 0) + 1
                        assign_failures[job.job_id] = failures
                        if failures >= self._MAX_ASSIGN_ATTEMPTS:
                            result = JobResult(
                                job_id=job.job_id,
                                name=job.name,
                                status=JobStatus.FAILED,
                                error=(
                                    "persistent worker died before accepting the "
                                    f"job ({failures} attempts)"
                                ),
                            )
                            results[job.job_id] = result
                            _emit(
                                on_event,
                                JobEvent(
                                    "failed", job.job_id, job.name, 0.0,
                                    result.error_summary(),
                                ),
                            )
                        else:
                            queue.push(job)
                        self._retire(worker, crew, queue)
                self._reap_persistent(crew, queue, results, on_event)
        finally:
            for worker in crew:
                worker.shutdown()
        return results

    def _reap_persistent(
        self,
        crew: List[_PersistentWorker],
        queue: JobQueue,
        results: Dict[str, JobResult],
        on_event: Optional[EventCallback],
    ) -> None:
        """Wait for progress on busy workers; collect results, crashes, expiries."""
        busy = [worker for worker in crew if worker.busy]
        if not busy:
            return
        deadlines = [w.deadline for w in busy if w.deadline is not None]
        timeout = max(0.0, min(deadlines) - time.perf_counter()) if deadlines else None
        ready = set(connection_wait([worker.conn for worker in busy], timeout))
        now = time.perf_counter()
        for worker in busy:
            if worker.conn in ready:
                self._collect_persistent(worker, crew, queue, now, results, on_event)
            elif worker.deadline is not None and now >= worker.deadline:
                job = worker.job
                self._retire(worker, crew, queue)
                elapsed = now - worker.started
                result = JobResult(
                    job_id=job.job_id,
                    name=job.name,
                    status=JobStatus.TIMEOUT,
                    error=f"killed after exceeding the {job.timeout:g}s job timeout",
                    seconds=elapsed,
                )
                results[job.job_id] = result
                _emit(
                    on_event,
                    JobEvent("timeout", job.job_id, job.name, elapsed, result.error_summary()),
                )

    def _collect_persistent(
        self,
        worker: _PersistentWorker,
        crew: List[_PersistentWorker],
        queue: JobQueue,
        now: float,
        results: Dict[str, JobResult],
        on_event: Optional[EventCallback],
    ) -> None:
        """A busy worker's pipe is readable: an outcome, or EOF (it died)."""
        job = worker.job
        elapsed = now - worker.started
        try:
            outcome = worker.conn.recv()
        except (EOFError, OSError):
            outcome = None
        if outcome is None:
            # The worker died mid-job: fail the job, replace the worker.
            self._retire(worker, crew, queue)
            result = JobResult(
                job_id=job.job_id,
                name=job.name,
                status=JobStatus.FAILED,
                error=(
                    f"persistent worker died without reporting "
                    f"(exit code {worker.process.exitcode})"
                ),
                seconds=elapsed,
            )
        else:
            worker.job = None
            worker.deadline = None
            result = _result_from_outcome(job, outcome, outcome.get("seconds", elapsed))
        results[job.job_id] = result
        kind = "done" if result.ok else "failed"
        _emit(on_event, JobEvent(kind, job.job_id, job.name, result.seconds, result.error_summary()))

    def _retire(
        self, worker: _PersistentWorker, crew: List[_PersistentWorker], queue: JobQueue
    ) -> None:
        """Kill a dead/expired worker; respawn a replacement if work remains."""
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join()
        try:
            worker.conn.close()
        except OSError:
            pass
        crew.remove(worker)
        if queue:
            crew.append(self._spawn_persistent())

    # -- internals -------------------------------------------------------------

    def _launch(self, job: SynthesisJob, on_event: Optional[EventCallback]) -> _Slot:
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_entry, args=(job.payload(), child_conn), daemon=True
        )
        process.start()
        self.workers_spawned += 1
        child_conn.close()  # the parent's copy; the child holds its own
        _emit(on_event, JobEvent("start", job.job_id, job.name))
        now = time.perf_counter()
        deadline = now + job.timeout if job.timeout is not None else None
        return _Slot(job=job, process=process, conn=parent_conn, started=now, deadline=deadline)

    def _wait_timeout(self, running: Sequence[_Slot]) -> Optional[float]:
        deadlines = [slot.deadline for slot in running if slot.deadline is not None]
        if not deadlines:
            return None  # block until some worker reports (or dies: EOF readies its pipe)
        return max(0.0, min(deadlines) - time.perf_counter())

    def _reap(
        self,
        running: List[_Slot],
        results: Dict[str, JobResult],
        on_event: Optional[EventCallback],
    ) -> None:
        """Wait for progress, then collect finished / crashed / expired slots."""
        if not running:
            return
        ready = set(connection_wait([slot.conn for slot in running], self._wait_timeout(running)))
        now = time.perf_counter()
        for slot in list(running):
            if slot.conn in ready:
                results[slot.job.job_id] = self._collect(slot, now, on_event)
                running.remove(slot)
            elif slot.deadline is not None and now >= slot.deadline:
                results[slot.job.job_id] = self._kill_expired(slot, now, on_event)
                running.remove(slot)

    def _collect(
        self, slot: _Slot, now: float, on_event: Optional[EventCallback]
    ) -> JobResult:
        """A worker's pipe is readable: either an outcome or an EOF (crash)."""
        job = slot.job
        elapsed = now - slot.started
        try:
            outcome = slot.conn.recv()
        except EOFError:
            outcome = None
        slot.conn.close()
        slot.process.join()
        if outcome is None:
            result = JobResult(
                job_id=job.job_id,
                name=job.name,
                status=JobStatus.FAILED,
                error=(
                    f"worker process died without reporting "
                    f"(exit code {slot.process.exitcode})"
                ),
                seconds=elapsed,
            )
        else:
            # Prefer the worker's own timing (excludes fork/dispatch overhead).
            result = _result_from_outcome(job, outcome, outcome.get("seconds", elapsed))
        kind = "done" if result.ok else "failed"
        _emit(on_event, JobEvent(kind, job.job_id, job.name, result.seconds, result.error_summary()))
        return result

    def _kill_expired(
        self, slot: _Slot, now: float, on_event: Optional[EventCallback]
    ) -> JobResult:
        """Hard deadline: terminate the worker and report a timeout."""
        job = slot.job
        slot.process.terminate()
        slot.process.join()
        slot.conn.close()
        elapsed = now - slot.started
        result = JobResult(
            job_id=job.job_id,
            name=job.name,
            status=JobStatus.TIMEOUT,
            error=f"killed after exceeding the {job.timeout:g}s job timeout",
            seconds=elapsed,
        )
        _emit(on_event, JobEvent("timeout", job.job_id, job.name, elapsed, result.error_summary()))
        return result
