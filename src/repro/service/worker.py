"""Process-parallel execution of synthesis jobs.

The unit of execution is :func:`execute_payload`: a pure function from a
job's JSON-able payload to a JSON-able outcome dict.  It never raises — any
exception inside the pipeline is captured as a ``"failed"`` outcome with the
full traceback — so the contract between parent and worker is "a dict always
comes back (unless the process itself died)".

:class:`WorkerPool` fans payloads out across OS processes, one process per
job (filled up to ``worker_count`` concurrent slots).  A fresh process per
job is the isolation boundary the batch service needs: a job that corrupts
interpreter state, leaks memory, segfaults, or hits its hard timeout takes
down only its own process; the parent reaps the corpse and reports a
failed/timed-out :class:`~repro.service.job.JobResult` while the rest of the
batch keeps running.

:func:`run_jobs_inline` is the zero-process executor used for ``--jobs 0``
(and by unit tests): same scheduling order and error capture, but timeouts
are only honored cooperatively (the config's ``max_seconds`` fuel is
clamped) since there is no process to kill.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, replace
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Dict, List, Optional, Sequence

from repro.service.job import JobEvent, JobResult, JobStatus, SynthesisJob
from repro.service.queue import JobQueue

#: Event callback signature: receives every JobEvent the executor emits.
EventCallback = Callable[[JobEvent], None]


def execute_payload(payload: dict) -> dict:
    """Run one job payload to completion; always returns an outcome dict.

    Outcomes are ``{"job_id", "name", "seconds", "status": "succeeded",
    "result": <SynthesisResult.to_dict()>}`` or ``{"status": "failed",
    "error": <traceback text>}``.  Imports are deliberately local so a
    freshly spawned worker only pays for the pipeline once it actually runs.
    """
    import traceback

    start = time.perf_counter()
    base = {"job_id": payload["job_id"], "name": payload["name"]}
    try:
        from repro.core.config import SynthesisConfig
        from repro.core.pipeline import synthesize
        from repro.lang.canon import term_from_canonical

        term = term_from_canonical(payload["term"])
        config = SynthesisConfig.from_dict(payload["config"])
        timeout = payload.get("timeout")
        if timeout is not None:
            # Cooperative deadline: the saturation fuel cannot exceed the
            # job's budget.  The hard deadline (process kill) is the pool's.
            config = replace(config, max_seconds=min(config.max_seconds, timeout))
        result = synthesize(term, config)
        return {
            **base,
            "status": "succeeded",
            "seconds": time.perf_counter() - start,
            "result": result.to_dict(),
        }
    except Exception:
        return {
            **base,
            "status": "failed",
            "seconds": time.perf_counter() - start,
            "error": traceback.format_exc(),
        }


def _worker_entry(payload: dict, conn) -> None:
    """Child-process entry point: run the payload, ship the outcome back."""
    try:
        outcome = execute_payload(payload)
    except BaseException:  # pragma: no cover - execute_payload already catches
        import traceback

        outcome = {
            "job_id": payload.get("job_id", "?"),
            "name": payload.get("name", "?"),
            "status": "failed",
            "seconds": 0.0,
            "error": traceback.format_exc(),
        }
    try:
        conn.send(outcome)
    finally:
        conn.close()


def _result_from_outcome(job: SynthesisJob, outcome: dict, seconds: float) -> JobResult:
    """Convert a worker outcome dict into a JobResult."""
    from repro.core.pipeline import SynthesisResult

    if outcome["status"] == "succeeded":
        return JobResult(
            job_id=job.job_id,
            name=job.name,
            status=JobStatus.SUCCEEDED,
            result=SynthesisResult.from_dict(outcome["result"]),
            seconds=seconds,
            result_payload=outcome["result"],
        )
    return JobResult(
        job_id=job.job_id,
        name=job.name,
        status=JobStatus.FAILED,
        error=outcome.get("error", "worker reported failure without a traceback"),
        seconds=seconds,
    )


def _emit(on_event: Optional[EventCallback], event: JobEvent) -> None:
    if on_event is not None:
        on_event(event)


def run_jobs_inline(
    jobs: Sequence[SynthesisJob], on_event: Optional[EventCallback] = None
) -> Dict[str, JobResult]:
    """Execute jobs in this process, in scheduling order, with error capture."""
    results: Dict[str, JobResult] = {}
    for job in JobQueue(jobs).drain():
        _emit(on_event, JobEvent("start", job.job_id, job.name))
        start = time.perf_counter()
        outcome = execute_payload(job.payload())
        elapsed = time.perf_counter() - start
        result = _result_from_outcome(job, outcome, elapsed)
        results[job.job_id] = result
        kind = "done" if result.ok else "failed"
        _emit(on_event, JobEvent(kind, job.job_id, job.name, elapsed, result.error_summary()))
    return results


@dataclass
class _Slot:
    """One running worker process and its bookkeeping."""

    job: SynthesisJob
    process: multiprocessing.process.BaseProcess
    conn: object
    started: float
    deadline: Optional[float]


class WorkerPool:
    """Fans jobs out across processes, up to ``worker_count`` at a time."""

    def __init__(self, worker_count: int, start_method: Optional[str] = None):
        if worker_count < 1:
            raise ValueError("worker_count must be >= 1 (use run_jobs_inline for 0)")
        self.worker_count = worker_count
        if start_method is None:
            # Fork (where available) keeps per-job startup cheap: the child
            # inherits the already-imported pipeline instead of re-importing.
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)
        self.start_method = start_method

    # -- driver ----------------------------------------------------------------

    def run(
        self, jobs: Sequence[SynthesisJob], on_event: Optional[EventCallback] = None
    ) -> Dict[str, JobResult]:
        """Run every job; returns results keyed by job id.

        Jobs are dispatched in queue order (priority desc, then FIFO).  The
        call returns only when every job has succeeded, failed, crashed, or
        been killed at its deadline.
        """
        queue = JobQueue(jobs)
        running: List[_Slot] = []
        results: Dict[str, JobResult] = {}
        try:
            while queue or running:
                while queue and len(running) < self.worker_count:
                    running.append(self._launch(queue.pop(), on_event))
                self._reap(running, results, on_event)
        finally:
            # Belt and braces: never leave orphaned workers behind if the
            # driver itself is interrupted.
            for slot in running:
                if slot.process.is_alive():
                    slot.process.terminate()
                slot.process.join()
        return results

    # -- internals -------------------------------------------------------------

    def _launch(self, job: SynthesisJob, on_event: Optional[EventCallback]) -> _Slot:
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_entry, args=(job.payload(), child_conn), daemon=True
        )
        process.start()
        child_conn.close()  # the parent's copy; the child holds its own
        _emit(on_event, JobEvent("start", job.job_id, job.name))
        now = time.perf_counter()
        deadline = now + job.timeout if job.timeout is not None else None
        return _Slot(job=job, process=process, conn=parent_conn, started=now, deadline=deadline)

    def _wait_timeout(self, running: Sequence[_Slot]) -> Optional[float]:
        deadlines = [slot.deadline for slot in running if slot.deadline is not None]
        if not deadlines:
            return None  # block until some worker reports (or dies: EOF readies its pipe)
        return max(0.0, min(deadlines) - time.perf_counter())

    def _reap(
        self,
        running: List[_Slot],
        results: Dict[str, JobResult],
        on_event: Optional[EventCallback],
    ) -> None:
        """Wait for progress, then collect finished / crashed / expired slots."""
        if not running:
            return
        ready = set(connection_wait([slot.conn for slot in running], self._wait_timeout(running)))
        now = time.perf_counter()
        for slot in list(running):
            if slot.conn in ready:
                results[slot.job.job_id] = self._collect(slot, now, on_event)
                running.remove(slot)
            elif slot.deadline is not None and now >= slot.deadline:
                results[slot.job.job_id] = self._kill_expired(slot, now, on_event)
                running.remove(slot)

    def _collect(
        self, slot: _Slot, now: float, on_event: Optional[EventCallback]
    ) -> JobResult:
        """A worker's pipe is readable: either an outcome or an EOF (crash)."""
        job = slot.job
        elapsed = now - slot.started
        try:
            outcome = slot.conn.recv()
        except EOFError:
            outcome = None
        slot.conn.close()
        slot.process.join()
        if outcome is None:
            result = JobResult(
                job_id=job.job_id,
                name=job.name,
                status=JobStatus.FAILED,
                error=(
                    f"worker process died without reporting "
                    f"(exit code {slot.process.exitcode})"
                ),
                seconds=elapsed,
            )
        else:
            # Prefer the worker's own timing (excludes fork/dispatch overhead).
            result = _result_from_outcome(job, outcome, outcome.get("seconds", elapsed))
        kind = "done" if result.ok else "failed"
        _emit(on_event, JobEvent(kind, job.job_id, job.name, result.seconds, result.error_summary()))
        return result

    def _kill_expired(
        self, slot: _Slot, now: float, on_event: Optional[EventCallback]
    ) -> JobResult:
        """Hard deadline: terminate the worker and report a timeout."""
        job = slot.job
        slot.process.terminate()
        slot.process.join()
        slot.conn.close()
        elapsed = now - slot.started
        result = JobResult(
            job_id=job.job_id,
            name=job.name,
            status=JobStatus.TIMEOUT,
            error=f"killed after exceeding the {job.timeout:g}s job timeout",
            seconds=elapsed,
        )
        _emit(on_event, JobEvent("timeout", job.job_id, job.name, elapsed, result.error_summary()))
        return result
