"""Priority queue of pending synthesis jobs.

A thin heap wrapper with the service's scheduling contract: jobs pop in
descending :attr:`~repro.service.job.SynthesisJob.priority` order, and jobs
of equal priority pop in submission (FIFO) order.  The queue is a pure
scheduling structure — it never executes anything; the
:class:`~repro.service.service.SynthesisService` drains it into workers.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterable, List

from repro.service.job import SynthesisJob


class JobQueue:
    """Pending jobs, ordered by (priority desc, submission order asc)."""

    def __init__(self, jobs: Iterable[SynthesisJob] = ()):
        self._heap: List[tuple] = []
        self._tiebreak = itertools.count()
        self.extend(jobs)

    def push(self, job: SynthesisJob) -> None:
        """Add one job."""
        heapq.heappush(self._heap, (-job.priority, next(self._tiebreak), job))

    def extend(self, jobs: Iterable[SynthesisJob]) -> None:
        """Add many jobs, preserving their order as the FIFO tiebreak."""
        for job in jobs:
            self.push(job)

    def pop(self) -> SynthesisJob:
        """Remove and return the next job to run."""
        if not self._heap:
            raise IndexError("pop from an empty JobQueue")
        return heapq.heappop(self._heap)[-1]

    def drain(self) -> List[SynthesisJob]:
        """Pop everything, in scheduling order."""
        out = []
        while self._heap:
            out.append(self.pop())
        return out

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
