"""Content-addressed result cache: in-memory LRU over an on-disk tier.

Entries are keyed by :func:`cache_key` — the SHA-256 of the input term's
canonical serialization combined with the fingerprint of the semantically
relevant :class:`~repro.core.config.SynthesisConfig` fields (see
``SynthesisConfig.semantic_dict``).  Keys are therefore stable across
processes and sessions: a warm re-run of the whole benchmark suite, even
from a fresh interpreter, finds every entry again.

The value stored is the JSON form of
:meth:`repro.core.pipeline.SynthesisResult.to_dict`.  Layout on disk::

    <directory>/<first two hex chars>/<full 64-char key>.json

Writes go through a temporary file + ``os.replace`` so a crashed or killed
worker driver never leaves a torn entry behind; unreadable entries are
treated as misses and removed.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional

from repro.core.config import SynthesisConfig
from repro.lang.canon import fingerprint_text, term_fingerprint
from repro.lang.term import Term


def cache_key(term: Term, config: SynthesisConfig) -> str:
    """The content-address of a (input term, synthesis config) pair."""
    return fingerprint_text(f"{term_fingerprint(term)}:{config.fingerprint()}")


class ResultCache:
    """Two-tier cache: an LRU dict in memory, sharded JSON files on disk.

    ``directory=None`` disables the disk tier (memory-only cache);
    ``memory_capacity=0`` disables the memory tier (every hit re-reads
    disk).  Hit/miss counters are per-instance: a fresh instance over a
    populated directory starts at zero, which is what lets a warm re-run
    report its own 100% hit rate.
    """

    def __init__(self, directory=None, memory_capacity: int = 128):
        self.directory = Path(directory) if directory is not None else None
        self.memory_capacity = memory_capacity
        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.stores = 0

    # -- lookup ---------------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``, or None (counted as a miss)."""
        payload = self._memory.get(key)
        if payload is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            self.memory_hits += 1
            return payload
        payload = self._read_disk(key)
        if payload is not None:
            self._remember(key, payload)
            self.hits += 1
            self.disk_hits += 1
            return payload
        self.misses += 1
        return None

    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` under ``key`` in both tiers."""
        self._remember(key, payload)
        self._write_disk(key, payload)
        self.stores += 1

    def __contains__(self, key: str) -> bool:
        """Presence check that does not touch the hit/miss counters."""
        return key in self._memory or (self._path(key) is not None and self._path(key).exists())

    # -- tiers ----------------------------------------------------------------

    def _remember(self, key: str, payload: dict) -> None:
        if self.memory_capacity <= 0:
            return
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_capacity:
            self._memory.popitem(last=False)

    def _path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / key[:2] / f"{key}.json"

    def _read_disk(self, key: str) -> Optional[dict]:
        path = self._path(key)
        if path is None or not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            # A torn or corrupt entry is as good as absent; drop it so the
            # slot can be rewritten cleanly.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _write_disk(self, key: str, payload: dict) -> None:
        path = self._path(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)

    # -- statistics -----------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Fraction of ``get`` calls served from either tier (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def disk_entries(self) -> int:
        """Number of entries currently persisted on disk."""
        if self.directory is None or not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def stats(self) -> Dict[str, object]:
        """A JSON-able counter snapshot (what batch reports embed)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
            "memory_entries": len(self._memory),
            "disk_entries": self.disk_entries(),
            "directory": str(self.directory) if self.directory is not None else None,
        }
