"""Content-addressed result cache: in-memory LRU over an on-disk tier.

Entries are keyed by :func:`cache_key` — the SHA-256 of the input term's
canonical serialization combined with the fingerprint of the semantically
relevant :class:`~repro.core.config.SynthesisConfig` fields (see
``SynthesisConfig.semantic_dict``).  Keys are therefore stable across
processes and sessions: a warm re-run of the whole benchmark suite, even
from a fresh interpreter, finds every entry again.

The value stored is the JSON form of
:meth:`repro.core.pipeline.SynthesisResult.to_dict`.  Layout on disk::

    <directory>/<first two hex chars>/<full 64-char key>.json

Writes go through a temporary file + ``os.replace`` so a crashed or killed
worker driver never leaves a torn entry behind; unreadable entries are
treated as misses and removed.

The disk tier can be bounded (``max_entries``/``max_bytes``): when a store
pushes it over either limit, least-recently-used entries are evicted, with
recency approximated by file mtime — cache reads (from either tier) *touch*
their entry, so a hot entry survives even when it was written long ago.
Usage is scanned lazily and maintained incrementally afterwards, and
eviction candidates are drained from the last scan's mtime-ordered queue
(stale candidates — touched since the scan — are skipped, and the queue is
rebuilt only when it runs dry), so puts stay amortized O(1) even at the
cap.

**Semantic tier.**  On top of the exact key sits a second lookup level
keyed by :func:`semantic_cache_key` — the fingerprint of the input term
after the :mod:`repro.lang.normal` pipeline (commutative sorting,
alpha-renaming, numeric-literal unification, affine canonical forms).  A
semantic entry is a *pointer* to an exact entry (on disk: a tiny JSON file
under ``<directory>/sem/``), so the payload is stored once and the exact
tier's behavior — keys, layout, eviction — is completely unchanged.
:meth:`ResultCache.lookup` probes the exact key first and falls back to
the semantic key only on a miss; hits are counted separately
(``exact_hits``/``semantic_hits``).  A pointer whose exact entry was
evicted simply misses (and is dropped).  ``semantic=False`` disables the
tier entirely (the CLI's ``--no-semantic-cache``).
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict, deque
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core.config import SynthesisConfig
from repro.lang.canon import fingerprint_text, semantic_fingerprint, term_fingerprint
from repro.lang.term import Term


def cache_key(term: Term, config: SynthesisConfig) -> str:
    """The content-address of a (input term, synthesis config) pair."""
    return fingerprint_text(f"{term_fingerprint(term)}:{config.fingerprint()}")


def semantic_cache_key(term: Term, config: SynthesisConfig) -> str:
    """The content-address modulo semantic normalization (second-level key).

    Same shape as :func:`cache_key` with the exact term fingerprint
    replaced by the normalized one — an input that is already in normal
    form has equal exact and semantic keys, which is harmless because the
    two tiers live in separate namespaces.
    """
    return semantic_fingerprint(term, config)


class ResultCache:
    """Two-tier cache: an LRU dict in memory, sharded JSON files on disk.

    ``directory=None`` disables the disk tier (memory-only cache);
    ``memory_capacity=0`` disables the memory tier (every hit re-reads
    disk).  Hit/miss counters are per-instance: a fresh instance over a
    populated directory starts at zero, which is what lets a warm re-run
    report its own 100% hit rate.

    ``max_entries``/``max_bytes`` bound the disk tier; ``None`` means
    unbounded.  Exceeding either limit evicts entries oldest-mtime-first
    (reads touch their entry, making mtime an LRU clock — see the module
    docstring).
    """

    def __init__(
        self,
        directory=None,
        memory_capacity: int = 128,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        semantic: bool = True,
    ):
        self.directory = Path(directory) if directory is not None else None
        self.memory_capacity = memory_capacity
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        #: Whether the semantic (normalized-key) lookup level is enabled.
        self.semantic = semantic
        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        #: Memory-side semantic pointers: semantic key -> exact key.  An
        #: LRU like the payload tier, but entries are two small strings, so
        #: it can afford a larger capacity.
        self._semantic_memory: "OrderedDict[str, str]" = OrderedDict()
        #: Lazily scanned (entry count, total bytes) of the disk tier;
        #: None until the first operation that needs it.
        self._disk_usage: Optional[Tuple[int, int]] = None
        #: Eviction candidates from the last scan, oldest mtime first;
        #: entries are verified (and stale ones skipped) before removal.
        self._eviction_queue: deque = deque()
        self.hits = 0
        self.misses = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.exact_hits = 0
        self.semantic_hits = 0
        self.stores = 0
        self.evictions = 0

    # -- lookup ---------------------------------------------------------------

    def _probe(self, key: str) -> Optional[dict]:
        """Read ``key`` from memory or disk without touching hit/miss totals.

        The memory/disk *origin* counters are maintained here; the callers
        (:meth:`get`, :meth:`lookup`) decide whether the probe amounts to an
        exact hit, a semantic hit, or a miss.
        """
        payload = self._memory.get(key)
        if payload is not None:
            self._memory.move_to_end(key)
            if self._bounded():
                # A memory-tier hit is still a use of the disk entry: keep
                # its mtime (the eviction policy's LRU clock) fresh, or a
                # hot entry would be evicted from disk while being served
                # from memory and then miss in the next process.
                self._touch(self._path(key))
            self.memory_hits += 1
            return payload
        payload = self._read_disk(key)
        if payload is not None:
            self._remember(key, payload)
            self.disk_hits += 1
            return payload
        return None

    def get(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``, or None (counted as a miss).

        Exact-tier only — the pre-semantic API, kept verbatim so existing
        callers see identical behavior.  Use :meth:`lookup` to consult the
        semantic level as well.
        """
        payload = self._probe(key)
        if payload is not None:
            self.hits += 1
            self.exact_hits += 1
            return payload
        self.misses += 1
        return None

    def lookup(
        self, key: str, semantic_key: Optional[str] = None
    ) -> Tuple[Optional[dict], Optional[str]]:
        """Two-level read: ``(payload, tier)`` with tier ``"exact"``,
        ``"semantic"``, or ``None`` on a miss.

        The exact key is the fast path; the semantic key is consulted only
        when the exact probe misses (and only when the tier is enabled), so
        inputs that hit exactly never pay the pointer indirection.
        """
        payload = self._probe(key)
        if payload is not None:
            self.hits += 1
            self.exact_hits += 1
            return payload, "exact"
        if self.semantic and semantic_key is not None:
            exact_key = self._resolve_semantic(semantic_key)
            if exact_key is not None:
                payload = self._probe(exact_key)
                if payload is not None:
                    self.hits += 1
                    self.semantic_hits += 1
                    return payload, "semantic"
                # Dangling pointer: the exact entry was evicted (or removed
                # as corrupt).  Drop the pointer so the next store rebinds.
                self._drop_semantic(semantic_key)
        self.misses += 1
        return None, None

    def put(self, key: str, payload: dict, semantic_key: Optional[str] = None) -> None:
        """Store ``payload`` under ``key`` in both tiers.

        With a ``semantic_key`` (and the tier enabled), additionally bind
        that key to ``key`` so semantically equal inputs find this entry.
        """
        self._remember(key, payload)
        self._write_disk(key, payload)
        self.stores += 1
        if self.semantic and semantic_key is not None:
            self._remember_semantic(semantic_key, key)
            self._write_semantic(semantic_key, key)

    def __contains__(self, key: str) -> bool:
        """Presence check that does not touch the hit/miss counters."""
        return key in self._memory or (self._path(key) is not None and self._path(key).exists())

    # -- tiers ----------------------------------------------------------------

    def _remember(self, key: str, payload: dict) -> None:
        if self.memory_capacity <= 0:
            return
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_capacity:
            self._memory.popitem(last=False)

    def _path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / key[:2] / f"{key}.json"

    # -- semantic tier ---------------------------------------------------------

    def _semantic_path(self, semantic_key: str) -> Optional[Path]:
        """Disk location of a semantic pointer file.

        Pointers live one level deeper than payload entries
        (``sem/<shard>/<key>.json`` is three components below the cache
        directory, payloads are two), so the exact tier's ``*/*.json``
        globs — usage scan, eviction, ``disk_entries`` — never see them and
        the bounded-cache accounting is byte-for-byte what it was before
        the semantic tier existed.
        """
        if self.directory is None:
            return None
        return self.directory / "sem" / semantic_key[:2] / f"{semantic_key}.json"

    def _remember_semantic(self, semantic_key: str, exact_key: str) -> None:
        if self.memory_capacity <= 0:
            return
        self._semantic_memory[semantic_key] = exact_key
        self._semantic_memory.move_to_end(semantic_key)
        # Pointers are two short strings; keep more of them than payloads.
        while len(self._semantic_memory) > self.memory_capacity * 8:
            self._semantic_memory.popitem(last=False)

    def _resolve_semantic(self, semantic_key: str) -> Optional[str]:
        """The exact key a semantic key points at, or None."""
        exact_key = self._semantic_memory.get(semantic_key)
        if exact_key is not None:
            self._semantic_memory.move_to_end(semantic_key)
            return exact_key
        path = self._semantic_path(semantic_key)
        if path is None or not path.exists():
            return None
        try:
            exact_key = json.loads(path.read_text())["key"]
        except (OSError, ValueError, TypeError, KeyError):
            self._drop_semantic(semantic_key)
            return None
        if not isinstance(exact_key, str):
            self._drop_semantic(semantic_key)
            return None
        self._remember_semantic(semantic_key, exact_key)
        return exact_key

    def _write_semantic(self, semantic_key: str, exact_key: str) -> None:
        path = self._semantic_path(semantic_key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps({"key": exact_key}))
        os.replace(tmp, path)

    def _drop_semantic(self, semantic_key: str) -> None:
        self._semantic_memory.pop(semantic_key, None)
        path = self._semantic_path(semantic_key)
        if path is not None:
            try:
                path.unlink()
            except OSError:
                pass

    def _read_disk(self, key: str) -> Optional[dict]:
        path = self._path(key)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            # A torn or corrupt entry is as good as absent; drop it so the
            # slot can be rewritten cleanly.
            self._drop_entry(path)
            return None
        # Touch the entry: mtime is the eviction policy's LRU clock, so a
        # read must refresh recency just like the memory tier does.
        self._touch(path)
        return payload

    @staticmethod
    def _touch(path: Optional[Path]) -> None:
        if path is None:
            return
        try:
            os.utime(path)
        except OSError:
            pass

    def _write_disk(self, key: str, payload: dict) -> None:
        path = self._path(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        text = json.dumps(payload)
        tmp.write_text(text)
        old_size = None
        try:
            old_size = path.stat().st_size
        except OSError:
            pass
        os.replace(tmp, path)
        if self._disk_usage is not None:
            entries, used = self._disk_usage
            if old_size is None:
                self._disk_usage = (entries + 1, used + len(text.encode()))
            else:
                # Overwrite: the entry count is unchanged but the payload
                # size may differ — account the delta or the byte budget
                # silently drifts from reality.
                self._disk_usage = (entries, used - old_size + len(text.encode()))
        self._evict_disk()

    # -- disk-tier eviction ----------------------------------------------------

    def _bounded(self) -> bool:
        return self.directory is not None and (
            self.max_entries is not None or self.max_bytes is not None
        )

    def _ensure_usage(self) -> Tuple[int, int]:
        if self._disk_usage is None:
            entries = 0
            used = 0
            if self.directory is not None and self.directory.exists():
                for path in self.directory.glob("*/*.json"):
                    try:
                        used += path.stat().st_size
                    except OSError:
                        continue
                    entries += 1
            self._disk_usage = (entries, used)
        return self._disk_usage

    def _over_limit(self) -> bool:
        entries, used = self._ensure_usage()
        if self.max_entries is not None and entries > self.max_entries:
            return True
        return self.max_bytes is not None and used > self.max_bytes

    def _rescan_disk(self) -> None:
        """Rebuild usage and the eviction queue from the directory.

        Also re-seeds usage, because another process may have written
        entries this instance never accounted for.
        """
        candidates = []
        for path in self.directory.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            candidates.append((stat.st_mtime, str(path), stat.st_size))
        candidates.sort()
        self._eviction_queue = deque(candidates)
        self._disk_usage = (len(candidates), sum(size for _, _, size in candidates))

    def _next_victim(self) -> Optional[Path]:
        """The oldest still-valid queued candidate, or None when dry.

        A candidate whose mtime moved since the scan was *used* in the
        meantime — it is hot now, so it is skipped until the next rescan
        re-ranks it.
        """
        while self._eviction_queue:
            mtime, path_text, _size = self._eviction_queue.popleft()
            path = Path(path_text)
            try:
                stat = path.stat()
            except OSError:
                continue  # already gone; a rescan will fix the usage count
            if stat.st_mtime != mtime:
                continue
            return path
        return None

    def _evict_disk(self) -> None:
        """Drop least-recently-used entries until within the limits.

        Candidates drain from the last scan's queue (one stat per eviction)
        so steady-state puts at the cap stay amortized O(1); the full
        glob+stat rescan runs only when the queue is dry.
        """
        if not self._bounded() or not self._over_limit():
            return
        rescanned = False
        while self._over_limit():
            victim = self._next_victim()
            if victim is None:
                if rescanned:
                    break
                self._rescan_disk()
                rescanned = True
                continue
            if self._drop_entry(victim):
                self.evictions += 1

    def _drop_entry(self, path: Path) -> bool:
        """Unlink a disk entry, keeping the usage accounting in step.

        Every removal — eviction or a corrupt entry dropped on read — must
        go through here, or the tracked usage drifts high and later puts
        evict healthy entries that are actually within the limits.
        """
        size = 0
        try:
            size = path.stat().st_size
        except OSError:
            pass
        try:
            path.unlink()
        except OSError:
            return False
        if self._disk_usage is not None:
            entries, used = self._disk_usage
            self._disk_usage = (max(entries - 1, 0), max(used - size, 0))
        return True

    # -- statistics -----------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Fraction of ``get`` calls served from either tier (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def disk_entries(self) -> int:
        """Number of entries currently persisted on disk."""
        if self.directory is None or not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def stats(self) -> Dict[str, object]:
        """A JSON-able counter snapshot (what batch reports embed)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "exact_hits": self.exact_hits,
            "semantic_hits": self.semantic_hits,
            "semantic": self.semantic,
            "stores": self.stores,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "memory_entries": len(self._memory),
            "disk_entries": self.disk_entries(),
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "directory": str(self.directory) if self.directory is not None else None,
        }
