"""Operator vocabulary of LambdaCAD beyond flat CSG."""

from __future__ import annotations

from typing import Tuple

from repro.csg.ops import AFFINE_OPS, BOOLEAN_OPS, CSG_PRIMITIVES
from repro.lang.term import Term

#: Binary arithmetic operators over numbers.
ARITH_OPS: Tuple[str, ...] = ("Add", "Sub", "Mul", "Div")

#: Trigonometric operators; angles are in degrees (matching OpenSCAD and the
#: closed forms printed in the paper, e.g. ``Sin (90 * i + 315)``).
TRIG_OPS: Tuple[str, ...] = ("Sin", "Cos", "Arctan")

#: List constructors and combinators.
LIST_OPS: Tuple[str, ...] = ("Nil", "Cons", "Concat", "Repeat")

#: Higher-order combinators that give LambdaCAD its loops.
HIGHER_ORDER_OPS: Tuple[str, ...] = ("Fold", "Map", "Mapi")

#: Functions and variables.
BINDING_OPS: Tuple[str, ...] = ("Fun", "App", "Var")

#: Every operator LambdaCAD adds on top of flat CSG.
LAMBDA_CAD_ONLY_OPS: Tuple[str, ...] = (
    ARITH_OPS + TRIG_OPS + LIST_OPS + HIGHER_ORDER_OPS + BINDING_OPS
)

#: The full LambdaCAD vocabulary (CSG plus the functional extension).
LAMBDA_CAD_OPS: Tuple[str, ...] = (
    CSG_PRIMITIVES + AFFINE_OPS + BOOLEAN_OPS + LAMBDA_CAD_ONLY_OPS + ("External",)
)


def is_lambda_cad_only(term: Term) -> bool:
    """True when the term's head operator is part of the functional extension.

    A term whose head is CSG-only can still *contain* LambdaCAD features in
    its children; use :func:`repro.csg.validate.is_flat_csg` to check whole
    programs.
    """
    return term.op in LAMBDA_CAD_ONLY_OPS


def uses_loops(term: Term) -> bool:
    """True when the program exposes parameterized repetitive structure.

    "Structure" means a genuine loop: a ``Map``/``Mapi``, a ``Fold`` whose
    combining function is a ``Fun`` (the nested-loop output shape), or a
    ``Repeat``.  A bare ``Fold (Union, Empty, Cons ...)`` over a literal list
    merely re-associates the input and does not count — Table 1's "structure
    exposed" column is about parameterization, not about folds per se.
    """
    for sub in term.subterms():
        if sub.op in ("Map", "Mapi", "Repeat"):
            return True
        if sub.op == "Fold" and len(sub.children) == 3 and sub.children[0].op == "Fun":
            return True
    return False
