"""Validation of LambdaCAD terms.

Checks arity and vocabulary: every operator must be part of the LambdaCAD
grammar (paper Fig. 6), applied to the right number of children.  Free
variables are permitted only under a binding ``Fun``.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.cad.ops import ARITH_OPS, HIGHER_ORDER_OPS, LIST_OPS, TRIG_OPS
from repro.csg.ops import AFFINE_OPS, BOOLEAN_OPS, CSG_PRIMITIVES, EXTERNAL_OP
from repro.lang.term import Term


class LambdaCadValidationError(ValueError):
    """Raised when a term is not well-formed LambdaCAD."""


_FIXED_ARITY = {
    "Cons": 2,
    "Concat": 2,
    "Repeat": 2,
    "Fold": 3,
    "Map": 2,
    "Mapi": 2,
    "Add": 2,
    "Sub": 2,
    "Mul": 2,
    "Div": 2,
    "Sin": 1,
    "Cos": 1,
    "Arctan": 2,
    "Var": 1,
    "Int": 1,
    "Float": 1,
}


def validate_lambda_cad(
    term: Term, bound: FrozenSet[str] = frozenset()
) -> None:
    """Raise :class:`LambdaCadValidationError` unless ``term`` is well-formed."""
    op = term.op

    if term.is_number:
        return

    if op in CSG_PRIMITIVES or op == EXTERNAL_OP or op == "Nil":
        if term.children:
            raise LambdaCadValidationError(f"{op} must not have children")
        return

    if op in AFFINE_OPS:
        if len(term.children) != 4:
            raise LambdaCadValidationError(f"{op} expects 4 arguments")
        for child in term.children:
            validate_lambda_cad(child, bound)
        return

    if op in BOOLEAN_OPS:
        if term.is_leaf:
            # A bare Union/Diff/Inter is a function value (Fold's first argument).
            return
        if len(term.children) != 2:
            raise LambdaCadValidationError(f"{op} expects 2 arguments")
        for child in term.children:
            validate_lambda_cad(child, bound)
        return

    if op == "Fun":
        if len(term.children) < 2:
            raise LambdaCadValidationError("Fun expects parameters and a body")
        *params, body = term.children
        names = []
        for p in params:
            if not p.is_leaf or not isinstance(p.op, str):
                raise LambdaCadValidationError(f"Fun parameter is not a name: {p!r}")
            names.append(p.op)
        validate_lambda_cad(body, bound | frozenset(names))
        return

    if op == "App":
        if len(term.children) < 1:
            raise LambdaCadValidationError("App expects at least a function")
        for child in term.children:
            validate_lambda_cad(child, bound)
        return

    if op == "Var":
        if len(term.children) != 1 or not term.children[0].is_leaf:
            raise LambdaCadValidationError("Var expects a single name")
        name = str(term.children[0].op)
        if name not in bound:
            raise LambdaCadValidationError(f"unbound variable {name!r}")
        return

    if op in _FIXED_ARITY:
        expected = _FIXED_ARITY[op]
        if len(term.children) != expected:
            raise LambdaCadValidationError(
                f"{op} expects {expected} arguments, got {len(term.children)}"
            )
        for child in term.children:
            validate_lambda_cad(child, bound)
        return

    if term.is_leaf and isinstance(op, str):
        # Bare symbols are allowed when bound by an enclosing Fun (the
        # paper's programs write parameters like ``c`` and ``i`` directly) or
        # when they name an opaque sub-design (like ``Tooth``).
        return

    raise LambdaCadValidationError(f"operator {op!r} is not part of LambdaCAD")
