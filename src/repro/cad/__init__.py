"""LambdaCAD — the structured output language (paper Fig. 6 left).

LambdaCAD is a superset of flat CSG extended with functional-programming
features: lists (``Nil``/``Cons``/``Concat``/``Repeat``), structural
recursion (``Fold``/``Map``/``Mapi``), anonymous functions (``Fun``), variables,
arithmetic (``Add``/``Sub``/``Mul``/``Div``), and trigonometric functions
(``Sin``/``Cos``/``Arctan``, in degrees).

The central operation exported here is :func:`~repro.cad.evaluator.unroll`,
which evaluates a LambdaCAD program back down to an equivalent flat CSG —
this is the inverse transformation used for translation validation: a
synthesized program is correct when its unrolling matches the input CSG.
"""

from repro.cad.ops import (
    ARITH_OPS,
    LIST_OPS,
    HIGHER_ORDER_OPS,
    TRIG_OPS,
    LAMBDA_CAD_OPS,
    is_lambda_cad_only,
)
from repro.cad.build import (
    nil,
    cons,
    cons_list,
    int_list,
    concat,
    repeat,
    fold,
    fold_union,
    map_,
    mapi,
    fun,
    var,
    add,
    sub,
    mul,
    div,
    sin,
    cos,
    arctan,
)
from repro.cad.evaluator import unroll, evaluate, EvalError
from repro.cad.validate import validate_lambda_cad, LambdaCadValidationError

__all__ = [
    "ARITH_OPS",
    "LIST_OPS",
    "HIGHER_ORDER_OPS",
    "TRIG_OPS",
    "LAMBDA_CAD_OPS",
    "is_lambda_cad_only",
    "nil",
    "cons",
    "cons_list",
    "int_list",
    "concat",
    "repeat",
    "fold",
    "fold_union",
    "map_",
    "mapi",
    "fun",
    "var",
    "add",
    "sub",
    "mul",
    "div",
    "sin",
    "cos",
    "arctan",
    "unroll",
    "evaluate",
    "EvalError",
    "validate_lambda_cad",
    "LambdaCadValidationError",
]
