"""Evaluation of LambdaCAD programs down to flat CSG ("unrolling").

The flat CSG input to Szalinski can be viewed as a single trace of the
structured LambdaCAD program it synthesizes (paper Section 7, "CSG is a
single trace").  Evaluation reverses the synthesis: it executes the lists,
folds, maps, functions, and arithmetic, and leaves behind only primitives,
affine transformations with literal vectors, and boolean operators.  This is
the inverse transformation used for translation validation — a synthesized
program is accepted when its unrolling is equivalent to the input.

Evaluation produces one of three kinds of values:

* a **number** (Python ``int``/``float``) — from literals and arithmetic;
* a **list** (Python ``list`` of values) — from ``Nil``/``Cons``/``Repeat``/...;
* a **solid** (a flat-CSG :class:`~repro.lang.term.Term`) — from primitives,
  affine and boolean nodes, and from folds of boolean operators.

Two conventions from the paper's output format are honoured:

* ``Fold (Union, Empty, items)`` unrolls to the right-nested
  ``Union (x1, Union (x2, ...))`` *without* a trailing ``Empty`` (Empty is a
  unit of Union, and the paper's Fold-introduction rewrites go between
  exactly these two shapes);
* ``Fold (Fun i -> body, Nil, indices)`` — a fold whose function takes a
  single parameter and whose accumulator is a list — is a *map-concatenate*:
  it is the shape the nested-loop inference emits (paper Figs. 14 and 17),
  collecting the per-index results into one list.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.cad.ops import ARITH_OPS, TRIG_OPS
from repro.csg.ops import AFFINE_OPS, BOOLEAN_OPS, CSG_PRIMITIVES, EXTERNAL_OP
from repro.lang.term import Term

Value = Union[int, float, list, Term, "Closure"]


class EvalError(ValueError):
    """Raised when a LambdaCAD program cannot be evaluated."""


@dataclass
class Closure:
    """A ``Fun`` value: parameter names, a body term, and the captured env."""

    params: tuple
    body: Term
    env: Dict[str, Value]

    def arity(self) -> int:
        return len(self.params)


def _is_number(value: Value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _as_number(value: Value, context: str) -> float:
    if not _is_number(value):
        raise EvalError(f"{context}: expected a number, got {value!r}")
    return value


def _as_solid(value: Value, context: str) -> Term:
    if not isinstance(value, Term):
        raise EvalError(f"{context}: expected a solid, got {value!r}")
    return value


def _as_list(value: Value, context: str) -> list:
    if not isinstance(value, list):
        raise EvalError(f"{context}: expected a list, got {value!r}")
    return value


def _num_term(value: Union[int, float]) -> Term:
    """Build a numeric literal term, normalizing -0.0 to 0.0."""
    if isinstance(value, float) and value == 0.0:
        value = 0.0
    return Term.num(value)


class Evaluator:
    """Evaluates LambdaCAD terms; stateless apart from recursion limits."""

    def __init__(self, max_list_length: int = 1_000_000):
        self.max_list_length = max_list_length

    # -- public API -------------------------------------------------------------

    def evaluate(self, term: Term, env: Optional[Dict[str, Value]] = None) -> Value:
        """Evaluate ``term`` in ``env`` and return a value."""
        return self._eval(term, env or {})

    def unroll(self, term: Term, env: Optional[Dict[str, Value]] = None) -> Term:
        """Evaluate ``term`` and require the result to be a flat CSG solid."""
        value = self._eval(term, env or {})
        if isinstance(value, list):
            raise EvalError("program evaluated to a list, not a solid")
        if isinstance(value, Closure):
            raise EvalError("program evaluated to a function, not a solid")
        if _is_number(value):
            raise EvalError("program evaluated to a number, not a solid")
        return value

    # -- dispatcher -------------------------------------------------------------

    def _eval(self, term: Term, env: Dict[str, Value]) -> Value:
        op = term.op

        if term.is_number:
            return term.value

        if op in ("Int", "Float") and len(term.children) == 1:
            return _as_number(self._eval(term.children[0], env), op)

        if op == "Var":
            return self._eval_var(term, env)

        if op == "Fun":
            return self._eval_fun(term, env)

        if op == "App":
            return self._eval_app(term, env)

        if op in ARITH_OPS:
            return self._eval_arith(term, env)

        if op in TRIG_OPS:
            return self._eval_trig(term, env)

        if op == "Nil":
            return []

        if op == "Cons":
            return self._eval_cons(term, env)

        if op == "Concat":
            left = _as_list(self._eval(term.children[0], env), "Concat")
            right = _as_list(self._eval(term.children[1], env), "Concat")
            return left + right

        if op == "Repeat":
            return self._eval_repeat(term, env)

        if op == "Fold":
            return self._eval_fold(term, env)

        if op == "Map":
            return self._eval_map(term, env, with_index=False)

        if op == "Mapi":
            return self._eval_map(term, env, with_index=True)

        if op in AFFINE_OPS:
            return self._eval_affine(term, env)

        if op in BOOLEAN_OPS:
            if term.is_leaf:
                # A bare Union/Diff/Inter used as a function value (the first
                # argument of a Fold).
                return Term(op)
            return self._eval_boolean(term, env)

        if op in CSG_PRIMITIVES or op == EXTERNAL_OP:
            if term.children:
                raise EvalError(f"primitive {op} must not have children")
            return Term(op)

        if term.is_leaf and isinstance(op, str):
            # A bare symbol: either a bound variable used without the ``Var``
            # wrapper (the paper's examples write ``c`` directly inside
            # function bodies) or an opaque named sub-design like ``Tooth``.
            if op in env:
                return env[op]
            return Term(op)

        # Compound term with an unknown head: evaluate the children and keep
        # the head — this lets unrolling pass through already-flat fragments
        # unchanged.
        raise EvalError(f"cannot evaluate operator {op!r}")

    # -- individual forms --------------------------------------------------------

    def _eval_var(self, term: Term, env: Dict[str, Value]) -> Value:
        if len(term.children) != 1 or not term.children[0].is_leaf:
            raise EvalError("Var expects a single name argument")
        name = str(term.children[0].op)
        if name not in env:
            raise EvalError(f"unbound variable {name!r}")
        return env[name]

    def _eval_fun(self, term: Term, env: Dict[str, Value]) -> Closure:
        if len(term.children) < 2:
            raise EvalError("Fun expects parameter names and a body")
        *param_terms, body = term.children
        params = []
        for p in param_terms:
            if not p.is_leaf or not isinstance(p.op, str):
                raise EvalError(f"Fun parameter is not a name: {p!r}")
            params.append(p.op)
        return Closure(tuple(params), body, dict(env))

    def _eval_app(self, term: Term, env: Dict[str, Value]) -> Value:
        if not term.children:
            raise EvalError("App expects a function")
        function = self._eval(term.children[0], env)
        arguments = [self._eval(arg, env) for arg in term.children[1:]]
        return self._apply(function, arguments)

    def _apply(self, function: Value, arguments: List[Value]) -> Value:
        if isinstance(function, Closure):
            if len(arguments) != function.arity():
                raise EvalError(
                    f"function expects {function.arity()} arguments, got {len(arguments)}"
                )
            call_env = dict(function.env)
            call_env.update(zip(function.params, arguments))
            return self._eval(function.body, call_env)
        if isinstance(function, Term) and function.is_leaf and function.op in BOOLEAN_OPS:
            if len(arguments) != 2:
                raise EvalError(f"{function.op} expects 2 arguments")
            left = _as_solid(arguments[0], str(function.op))
            right = _as_solid(arguments[1], str(function.op))
            return Term(function.op, (left, right))
        raise EvalError(f"value is not callable: {function!r}")

    def _eval_arith(self, term: Term, env: Dict[str, Value]) -> float:
        left = _as_number(self._eval(term.children[0], env), str(term.op))
        right = _as_number(self._eval(term.children[1], env), str(term.op))
        if term.op == "Add":
            return left + right
        if term.op == "Sub":
            return left - right
        if term.op == "Mul":
            return left * right
        if term.op == "Div":
            if right == 0:
                raise EvalError("division by zero")
            return left / right
        raise EvalError(f"unknown arithmetic operator {term.op!r}")

    def _eval_trig(self, term: Term, env: Dict[str, Value]) -> float:
        if term.op == "Arctan":
            y = _as_number(self._eval(term.children[0], env), "Arctan")
            x = _as_number(self._eval(term.children[1], env), "Arctan")
            return math.degrees(math.atan2(y, x))
        argument = _as_number(self._eval(term.children[0], env), str(term.op))
        radians = math.radians(argument)
        if term.op == "Sin":
            return math.sin(radians)
        if term.op == "Cos":
            return math.cos(radians)
        raise EvalError(f"unknown trigonometric operator {term.op!r}")

    def _eval_cons(self, term: Term, env: Dict[str, Value]) -> list:
        if len(term.children) != 2:
            raise EvalError("Cons expects a head and a tail")
        head = self._eval(term.children[0], env)
        tail = _as_list(self._eval(term.children[1], env), "Cons tail")
        return [head] + tail

    def _eval_repeat(self, term: Term, env: Dict[str, Value]) -> list:
        if len(term.children) != 2:
            raise EvalError("Repeat expects an element and a count")
        element = self._eval(term.children[0], env)
        count_value = self._eval(term.children[1], env)
        count = int(_as_number(count_value, "Repeat count"))
        if count < 0:
            raise EvalError("Repeat count must be non-negative")
        if count > self.max_list_length:
            raise EvalError(f"Repeat count {count} exceeds the evaluator limit")
        return [element for _ in range(count)]

    def _eval_fold(self, term: Term, env: Dict[str, Value]) -> Value:
        if len(term.children) != 3:
            raise EvalError("Fold expects (function, accumulator, list)")
        function_term, accumulator_term, items_term = term.children
        items = _as_list(self._eval(items_term, env), "Fold list")
        function = self._eval(function_term, env)
        accumulator = self._eval(accumulator_term, env)

        # Fold of a binary boolean operator over solids.
        if isinstance(function, Term) and function.is_leaf and function.op in BOOLEAN_OPS:
            return self._fold_boolean(str(function.op), accumulator, items)

        if isinstance(function, Closure):
            if function.arity() == 1:
                # Map-concatenate convention used by nested-loop output.
                result = list(_as_list(accumulator, "Fold accumulator")) if isinstance(accumulator, list) else []
                for item in items:
                    mapped = self._apply(function, [item])
                    if isinstance(mapped, list):
                        result.extend(mapped)
                    else:
                        result.append(mapped)
                return result
            if function.arity() == 2:
                # Conventional right fold: f element accumulator.
                result = accumulator
                for item in reversed(items):
                    result = self._apply(function, [item, result])
                return result
        raise EvalError(f"Fold function is not foldable: {function!r}")

    def _fold_boolean(self, op: str, accumulator: Value, items: list) -> Term:
        solids = [_as_solid(item, f"Fold over {op}") for item in items]
        accumulator_solid = _as_solid(accumulator, f"Fold over {op}")
        if not solids:
            return accumulator_solid
        # Drop an Empty accumulator (it is the unit of Union); otherwise keep
        # it as the right-most operand.
        parts = solids if accumulator_solid.op == "Empty" else solids + [accumulator_solid]
        result = parts[-1]
        for part in reversed(parts[:-1]):
            result = Term(op, (part, result))
        return result

    def _eval_map(self, term: Term, env: Dict[str, Value], *, with_index: bool) -> list:
        if len(term.children) != 2:
            raise EvalError("Map/Mapi expects (function, list)")
        function = self._eval(term.children[0], env)
        items = _as_list(self._eval(term.children[1], env), "Map list")
        if not isinstance(function, Closure):
            raise EvalError("Map/Mapi expects a Fun as its function")
        results = []
        for index, item in enumerate(items):
            if with_index:
                if function.arity() != 2:
                    raise EvalError("Mapi function must take (index, element)")
                results.append(self._apply(function, [index, item]))
            else:
                if function.arity() != 1:
                    raise EvalError("Map function must take a single element")
                results.append(self._apply(function, [item]))
        return results

    def _eval_affine(self, term: Term, env: Dict[str, Value]) -> Term:
        if len(term.children) != 4:
            raise EvalError(f"{term.op} expects 4 arguments")
        vector = [
            _as_number(self._eval(child, env), f"{term.op} argument")
            for child in term.children[:3]
        ]
        child = _as_solid(self._eval(term.children[3], env), str(term.op))
        return Term(term.op, tuple(_num_term(v) for v in vector) + (child,))

    def _eval_boolean(self, term: Term, env: Dict[str, Value]) -> Term:
        if len(term.children) != 2:
            raise EvalError(f"{term.op} expects 2 arguments")
        left = _as_solid(self._eval(term.children[0], env), str(term.op))
        right = _as_solid(self._eval(term.children[1], env), str(term.op))
        return Term(term.op, (left, right))


_DEFAULT_EVALUATOR = Evaluator()


def evaluate(term: Term, env: Optional[Dict[str, Value]] = None) -> Value:
    """Evaluate a LambdaCAD term with the default evaluator."""
    return _DEFAULT_EVALUATOR.evaluate(term, env)


def unroll(term: Term, env: Optional[Dict[str, Value]] = None) -> Term:
    """Unroll a LambdaCAD program to an equivalent flat CSG term."""
    return _DEFAULT_EVALUATOR.unroll(term, env)
