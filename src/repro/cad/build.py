"""Constructors for LambdaCAD terms.

These builders are used by the function- and loop-inference components when
they add structured e-nodes to the e-graph, by the benchmark suite's
reference ("human-written") programs, and by tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.lang.term import Term

Number = Union[int, float]
TermLike = Union[Term, int, float, str]


def _term(value: TermLike) -> Term:
    """Coerce numbers and symbols to leaf terms; pass terms through."""
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        raise ValueError("booleans are not LambdaCAD values")
    return Term(value)


# -- lists ---------------------------------------------------------------------

def nil() -> Term:
    """The empty list."""
    return Term("Nil")


def cons(head: TermLike, tail: TermLike) -> Term:
    """``Cons (head, tail)``."""
    return Term("Cons", (_term(head), _term(tail)))


def cons_list(items: Iterable[TermLike]) -> Term:
    """Build a proper ``Cons``/``Nil`` list from a Python iterable."""
    result = nil()
    for item in reversed(list(items)):
        result = cons(item, result)
    return result


def int_list(values: Iterable[int]) -> Term:
    """An index list such as ``Cons (Int 0, Cons (Int 1, Nil))``."""
    return cons_list(Term("Int", (Term.num(int(v)),)) for v in values)


def concat(left: TermLike, right: TermLike) -> Term:
    """``Concat (left, right)`` — list append."""
    return Term("Concat", (_term(left), _term(right)))


def repeat(item: TermLike, count: int) -> Term:
    """``Repeat (item, count)`` — a list of ``count`` copies of ``item``."""
    return Term("Repeat", (_term(item), Term.num(int(count))))


# -- higher-order combinators ---------------------------------------------------

def fold(function: TermLike, accumulator: TermLike, items: TermLike) -> Term:
    """``Fold (function, accumulator, items)``."""
    return Term("Fold", (_term(function), _term(accumulator), _term(items)))


def fold_union(items: TermLike) -> Term:
    """The ubiquitous ``Fold (Union, Empty, items)`` shape."""
    return fold(Term("Union"), Term("Empty"), items)


def map_(function: TermLike, items: TermLike) -> Term:
    """``Map (function, items)``."""
    return Term("Map", (_term(function), _term(items)))


def mapi(function: TermLike, items: TermLike) -> Term:
    """``Mapi (function, items)`` — map with the element index."""
    return Term("Mapi", (_term(function), _term(items)))


# -- functions and variables ----------------------------------------------------

def fun(params: Sequence[str], body: TermLike) -> Term:
    """``Fun ((params...), body)``; e.g. ``fun(("i", "c"), body)``."""
    param_terms = tuple(Term(str(p)) for p in params)
    return Term("Fun", param_terms + (_term(body),))


def var(name: str) -> Term:
    """A variable reference ``Var name``."""
    return Term("Var", (Term(name),))


def app(function: TermLike, *arguments: TermLike) -> Term:
    """``App (function, arguments...)``."""
    return Term("App", (_term(function),) + tuple(_term(a) for a in arguments))


# -- affine transformations with expression arguments ----------------------------

def affine(op: str, x: TermLike, y: TermLike, z: TermLike, child: TermLike) -> Term:
    """An affine node whose vector components may be arbitrary expressions.

    The flat-CSG builders in :mod:`repro.csg.build` require literal numbers;
    inside LambdaCAD function bodies the components are expressions of the
    loop index (``Translate (2 * (i + 1), 0, 0, c)``), which this builder
    allows.
    """
    if op not in ("Translate", "Scale", "Rotate"):
        raise ValueError(f"not an affine operator: {op!r}")
    return Term(op, (_term(x), _term(y), _term(z), _term(child)))


def translate_expr(x: TermLike, y: TermLike, z: TermLike, child: TermLike) -> Term:
    """``Translate`` with expression arguments."""
    return affine("Translate", x, y, z, child)


def scale_expr(x: TermLike, y: TermLike, z: TermLike, child: TermLike) -> Term:
    """``Scale`` with expression arguments."""
    return affine("Scale", x, y, z, child)


def rotate_expr(x: TermLike, y: TermLike, z: TermLike, child: TermLike) -> Term:
    """``Rotate`` with expression arguments (degrees)."""
    return affine("Rotate", x, y, z, child)


# -- arithmetic -------------------------------------------------------------------

def add(left: TermLike, right: TermLike) -> Term:
    return Term("Add", (_term(left), _term(right)))


def sub(left: TermLike, right: TermLike) -> Term:
    return Term("Sub", (_term(left), _term(right)))


def mul(left: TermLike, right: TermLike) -> Term:
    return Term("Mul", (_term(left), _term(right)))


def div(left: TermLike, right: TermLike) -> Term:
    return Term("Div", (_term(left), _term(right)))


def sin(argument: TermLike) -> Term:
    """``Sin x`` with ``x`` in degrees."""
    return Term("Sin", (_term(argument),))


def cos(argument: TermLike) -> Term:
    """``Cos x`` with ``x`` in degrees."""
    return Term("Cos", (_term(argument),))


def arctan(y: TermLike, x: TermLike) -> Term:
    """``Arctan (y, x)`` — two-argument arctangent, result in degrees."""
    return Term("Arctan", (_term(y), _term(x)))
