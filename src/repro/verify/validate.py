"""End-to-end validation of a synthesis result."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cad.evaluator import EvalError, unroll
from repro.lang.term import Term
from repro.obs.trace import NULL_TRACER
from repro.verify.geometric import GeometricReport, occupancy_agreement
from repro.verify.structural import (
    equivalent_modulo_reordering,
    terms_equal_modulo_epsilon,
)


@dataclass
class ValidationResult:
    """How a synthesized program compared against its input."""

    unrolled: Optional[Term]
    exact_match: bool
    reorder_match: bool
    geometric: Optional[GeometricReport]
    error: Optional[str] = None

    @property
    def valid(self) -> bool:
        """True when any of the three checks accepts the program."""
        if self.error is not None:
            return False
        if self.exact_match or self.reorder_match:
            return True
        return self.geometric is not None and self.geometric.equivalent()


def validate_synthesis(
    input_csg: Term,
    synthesized: Term,
    *,
    epsilon: float = 1e-3,
    geometric_resolution: int = 0,
    tracer=None,
) -> ValidationResult:
    """Validate a synthesized program against the input flat CSG.

    Structural checks always run; the geometric check is only performed when
    ``geometric_resolution`` is positive (it is the most expensive) or when
    both structural checks fail and a resolution of 16 is used as a fallback.
    ``tracer`` records the whole check as a ``validate`` span.
    """
    tracer = NULL_TRACER if tracer is None else tracer
    with tracer.span("validate") as span:
        result = _validate_impl(input_csg, synthesized, epsilon, geometric_resolution)
        if span is not None:
            span.update(
                {
                    "valid": result.valid,
                    "exact_match": result.exact_match,
                    "reorder_match": result.reorder_match,
                    "geometric": result.geometric is not None,
                }
            )
    return result


def _validate_impl(
    input_csg: Term,
    synthesized: Term,
    epsilon: float,
    geometric_resolution: int,
) -> ValidationResult:
    try:
        unrolled = unroll(synthesized)
    except EvalError as exc:
        return ValidationResult(
            unrolled=None,
            exact_match=False,
            reorder_match=False,
            geometric=None,
            error=str(exc),
        )

    exact = terms_equal_modulo_epsilon(input_csg, unrolled, epsilon)
    reorder = exact or equivalent_modulo_reordering(input_csg, unrolled, epsilon)

    geometric: Optional[GeometricReport] = None
    if geometric_resolution > 0:
        geometric = occupancy_agreement(input_csg, unrolled, resolution=geometric_resolution)
    elif not reorder:
        geometric = occupancy_agreement(input_csg, unrolled, resolution=16)

    return ValidationResult(
        unrolled=unrolled,
        exact_match=exact,
        reorder_match=reorder,
        geometric=geometric,
    )
