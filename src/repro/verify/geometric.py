"""Geometric equivalence of CSG terms via sampling.

This is the "more rigorous approach like Hausdorff distance" validation the
paper suggests: both solids are compared on a shared occupancy grid (how many
grid cells agree on inside/outside) and via the symmetric Hausdorff distance
between the occupied cell centres.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.hausdorff import hausdorff_distance
from repro.geometry.membership import compile_csg
from repro.geometry.sampling import joint_bounding_box, sample_grid
from repro.geometry.vec import Vec3
from repro.lang.term import Term


@dataclass(frozen=True)
class GeometricReport:
    """Outcome of a sampled geometric comparison."""

    agreement: float          # fraction of grid points with equal membership
    hausdorff: float          # symmetric Hausdorff distance of occupied points
    grid_spacing: float       # spacing of the sampling grid (Hausdorff scale)
    points_a: int
    points_b: int

    def equivalent(self, *, min_agreement: float = 0.999, hausdorff_factor: float = 2.0) -> bool:
        """Accept when agreement is near-total and Hausdorff within a couple of cells."""
        if self.points_a == 0 and self.points_b == 0:
            return True
        return (
            self.agreement >= min_agreement
            and self.hausdorff <= hausdorff_factor * self.grid_spacing
        )


def occupancy_agreement(a: Term, b: Term, *, resolution: int = 24) -> GeometricReport:
    """Compare two CSG terms on a shared occupancy grid."""
    solid_a = compile_csg(a)
    solid_b = compile_csg(b)
    lo, hi = joint_bounding_box(solid_a, solid_b)
    grid = sample_grid(lo, hi, resolution)
    inside_a = []
    inside_b = []
    agree = 0
    for point in grid:
        in_a = solid_a.contains(point)
        in_b = solid_b.contains(point)
        if in_a == in_b:
            agree += 1
        if in_a:
            inside_a.append(point)
        if in_b:
            inside_b.append(point)
    extent = hi - lo
    spacing = max(extent.x, extent.y, extent.z) / resolution
    distance = hausdorff_distance(inside_a, inside_b) if (inside_a or inside_b) else 0.0
    return GeometricReport(
        agreement=agree / len(grid) if grid else 1.0,
        hausdorff=distance,
        grid_spacing=spacing,
        points_a=len(inside_a),
        points_b=len(inside_b),
    )


def geometrically_equivalent(
    a: Term,
    b: Term,
    *,
    resolution: int = 24,
    min_agreement: float = 0.999,
    hausdorff_factor: float = 2.0,
) -> bool:
    """True when the two solids agree on the sampling grid."""
    report = occupancy_agreement(a, b, resolution=resolution)
    return report.equivalent(
        min_agreement=min_agreement, hausdorff_factor=hausdorff_factor
    )
