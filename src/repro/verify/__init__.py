"""Translation validation of synthesized programs (paper Section 7).

A synthesized LambdaCAD program is correct when, unrolled back to flat CSG,
it denotes the same solid as the input.  Three checks of increasing strength
are provided:

* :func:`terms_equal_modulo_epsilon` — exact structural equality up to a
  numeric tolerance (catches the common case where unrolling reproduces the
  input verbatim);
* :func:`equivalent_modulo_reordering` — equality of union/intersection
  operand multisets, recursively (synthesis is free to reorder commutative
  operands, e.g. after list sorting);
* :func:`geometrically_equivalent` — point-membership comparison over a
  shared sampling grid plus a sampled Hausdorff distance bound, which is the
  paper's suggested rigorous check.
"""

from repro.verify.structural import (
    terms_equal_modulo_epsilon,
    equivalent_modulo_reordering,
)
from repro.verify.geometric import (
    geometrically_equivalent,
    occupancy_agreement,
    GeometricReport,
)
from repro.verify.validate import validate_synthesis, ValidationResult

__all__ = [
    "terms_equal_modulo_epsilon",
    "equivalent_modulo_reordering",
    "geometrically_equivalent",
    "occupancy_agreement",
    "GeometricReport",
    "validate_synthesis",
    "ValidationResult",
]
