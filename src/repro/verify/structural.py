"""Structural equivalence of flat CSG terms."""

from __future__ import annotations

from typing import List

from repro.lang.term import Term


def terms_equal_modulo_epsilon(a: Term, b: Term, epsilon: float = 1e-6) -> bool:
    """Structural equality allowing numeric literals to differ by ``epsilon``."""
    if a.is_number and b.is_number:
        return abs(float(a.value) - float(b.value)) <= epsilon
    if a.op != b.op or len(a.children) != len(b.children):
        return False
    return all(
        terms_equal_modulo_epsilon(x, y, epsilon)
        for x, y in zip(a.children, b.children)
    )


def _flatten_commutative(term: Term, op: str) -> List[Term]:
    """Flatten a nested chain of a commutative operator into its operands."""
    if term.op != op:
        return [term]
    operands: List[Term] = []
    for child in term.children:
        operands.extend(_flatten_commutative(child, op))
    return operands


def equivalent_modulo_reordering(a: Term, b: Term, epsilon: float = 1e-6) -> bool:
    """Equality up to reordering (and re-association) of Union/Inter operands.

    Synthesis may legally reorder the operands of commutative boolean
    operators — the list-manipulation step sorts folded lists — so the
    unrolled output can be a permutation of the input's union chain.  ``Diff``
    operands keep their sides.
    """
    if a.is_number and b.is_number:
        return abs(float(a.value) - float(b.value)) <= epsilon

    if a.op != b.op:
        return False

    if a.op in ("Union", "Inter"):
        left = _flatten_commutative(a, str(a.op))
        right = _flatten_commutative(b, str(a.op))
        if len(left) != len(right):
            return False
        remaining = list(right)
        for operand in left:
            match_index = None
            for index, candidate in enumerate(remaining):
                if equivalent_modulo_reordering(operand, candidate, epsilon):
                    match_index = index
                    break
            if match_index is None:
                return False
            remaining.pop(match_index)
        return True

    if len(a.children) != len(b.children):
        return False
    return all(
        equivalent_modulo_reordering(x, y, epsilon)
        for x, y in zip(a.children, b.children)
    )
