"""Closed-form function inference ("the arithmetic component").

Given the sequence of values a vector component takes across the elements of
a determinized list, these solvers search for a closed form of the index
(paper Section 4.1):

1. a first-degree polynomial ``a*i + b``,
2. a second-degree polynomial ``a*i^2 + b*i + c``,
3. a trigonometric form ``a*sin(b*i + c)`` (angles in degrees).

All fits must hold within an explicit tolerance ``epsilon`` (default 0.001),
because real inputs carry floating-point noise from mesh decompilation.  The
paper uses Z3 for the polynomial forms; offline we solve the identical
feasibility question with exact linear algebra plus coefficient
rationalization (see ``DESIGN.md``, "Substitutions").  The trigonometric
solver follows the paper: non-linear least squares with an SVD-based
Gauss–Newton refinement, judged by the coefficient of determination R².
"""

from repro.solvers.forms import (
    ClosedForm,
    LinearForm,
    QuadraticForm,
    SinusoidForm,
    ConstantForm,
)
from repro.solvers.polynomial import fit_constant, fit_linear, fit_quadratic
from repro.solvers.trig import fit_sinusoid
from repro.solvers.rational import nice_round, rationalize
from repro.solvers.closed_form import (
    FunctionSolver,
    SolverConfig,
    solve_component,
    solve_vectors,
    VectorFunction,
)

__all__ = [
    "ClosedForm",
    "ConstantForm",
    "LinearForm",
    "QuadraticForm",
    "SinusoidForm",
    "fit_constant",
    "fit_linear",
    "fit_quadratic",
    "fit_sinusoid",
    "nice_round",
    "rationalize",
    "FunctionSolver",
    "SolverConfig",
    "solve_component",
    "solve_vectors",
    "VectorFunction",
]
