"""Coefficient rationalization.

The closed forms the paper reports are human-readable: ``2 * (i + 1)``,
``360 * i / 60``, ``24 * i - 12``.  A raw least-squares fit over noisy data
returns coefficients like ``1.99999983``, so after fitting we snap each
coefficient to the nearest "nice" rational (small denominator) whenever doing
so keeps the fit within the epsilon tolerance.  This plays the role of Z3
returning exact rational models in the original system.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional


def rationalize(value: float, max_denominator: int = 720) -> Fraction:
    """The closest fraction to ``value`` with a bounded denominator.

    ``720`` covers every denominator that appears in CAD closed forms built
    from degree steps (360/n for n up to 720 teeth/cells) while still
    rejecting arbitrary noise.
    """
    return Fraction(value).limit_denominator(max_denominator)


def nice_round(value: float, tolerance: float = 1e-6, max_denominator: int = 720) -> float:
    """Snap ``value`` to a nearby nice rational when it is within ``tolerance``.

    Returns the snapped value as a float (int-valued floats collapse to the
    integer float, e.g. ``2.0000001`` becomes ``2.0``).  When no nice rational
    is close enough, the original value is returned unchanged.
    """
    candidate = rationalize(value, max_denominator)
    snapped = float(candidate)
    if abs(snapped - value) <= tolerance:
        return snapped
    return value


def as_int_if_close(value: float, tolerance: float = 1e-9) -> Optional[int]:
    """Return ``value`` as an int when it is within ``tolerance`` of one."""
    rounded = round(value)
    if abs(value - rounded) <= tolerance:
        return int(rounded)
    return None


def format_coefficient(value: float) -> str:
    """Human-readable rendering of a (possibly snapped) coefficient."""
    as_int = as_int_if_close(value, tolerance=1e-9)
    if as_int is not None:
        return str(as_int)
    return f"{value:g}"
