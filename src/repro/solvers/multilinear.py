"""Multilinear closed forms over several loop indices.

Nested-loop inference (paper Section 5) pairs each list element with a tuple
of loop indices (from the m-index-sets) and asks for a closed form of those
indices.  The forms that arise in CAD grids are affine in each index —
``24*i - 12``, ``5 + 10*j``, ``2 - 4*i`` — so the solver fits

    value = a_1*i_1 + a_2*i_2 + ... + a_m*i_m + b

by least squares, snaps the coefficients to nice rationals, and accepts the
fit only when every residual is within the epsilon tolerance, exactly like
the single-index polynomial solvers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cad.build import add, mul, sub
from repro.lang.term import Term
from repro.solvers.rational import as_int_if_close, nice_round

_SNAP_TOLERANCE = 5e-3


@dataclass
class MultilinearForm:
    """``sum_k coefficients[k] * index_k + intercept``."""

    coefficients: Tuple[float, ...]
    intercept: float
    kind: str = "d1"

    def predict(self, indices: Sequence[int]) -> float:
        return (
            sum(a * i for a, i in zip(self.coefficients, indices)) + self.intercept
        )

    def max_residual(
        self, index_tuples: Sequence[Sequence[int]], values: Sequence[float]
    ) -> float:
        return max(
            (abs(self.predict(t) - v) for t, v in zip(index_tuples, values)),
            default=0.0,
        )

    def satisfies(
        self,
        index_tuples: Sequence[Sequence[int]],
        values: Sequence[float],
        epsilon: float,
    ) -> bool:
        return self.max_residual(index_tuples, values) <= epsilon

    def is_constant(self) -> bool:
        return all(nice_round(a) == 0.0 for a in self.coefficients)

    def to_term(self, index_vars: Sequence[Term]) -> Term:
        """Render over the given index variable terms (one per loop level)."""
        if len(index_vars) != len(self.coefficients):
            raise ValueError("index variable count does not match coefficients")
        term: Optional[Term] = None
        for coefficient, index in zip(self.coefficients, index_vars):
            coefficient = nice_round(coefficient)
            if coefficient == 0.0:
                continue
            piece = index if coefficient == 1.0 else mul(_number(coefficient), index)
            term = piece if term is None else add(term, piece)
        intercept = nice_round(self.intercept)
        if term is None:
            return _number(intercept)
        if intercept == 0.0:
            return term
        if intercept < 0.0:
            return sub(term, _number(-intercept))
        return add(term, _number(intercept))

    def describe(self) -> str:
        pieces = [
            f"{nice_round(a):g}*i{k}" for k, a in enumerate(self.coefficients)
        ]
        pieces.append(f"{nice_round(self.intercept):g}")
        return " + ".join(pieces)


def _number(value: float) -> Term:
    as_int = as_int_if_close(value, tolerance=1e-9)
    if as_int is not None:
        return Term.num(as_int)
    return Term.num(value)


def fit_multilinear(
    index_tuples: Sequence[Sequence[int]],
    values: Sequence[float],
    epsilon: float,
) -> Optional[MultilinearForm]:
    """Fit an affine function of the loop indices within ``epsilon``."""
    if not index_tuples or len(index_tuples) != len(values):
        return None
    arity = len(index_tuples[0])
    if any(len(t) != arity for t in index_tuples):
        raise ValueError("inconsistent index tuple arity")
    design = np.column_stack(
        [np.asarray([t[k] for t in index_tuples], dtype=float) for k in range(arity)]
        + [np.ones(len(index_tuples))]
    )
    observations = np.asarray(values, dtype=float)
    solution, *_ = np.linalg.lstsq(design, observations, rcond=None)
    coefficients = tuple(float(c) for c in solution[:-1])
    intercept = float(solution[-1])

    snap = max(_SNAP_TOLERANCE, epsilon)
    snapped = MultilinearForm(
        tuple(nice_round(c, tolerance=snap) for c in coefficients),
        nice_round(intercept, tolerance=snap),
    )
    if snapped.satisfies(index_tuples, values, epsilon):
        return snapped
    raw = MultilinearForm(coefficients, intercept)
    if raw.satisfies(index_tuples, values, epsilon):
        return raw
    return None
