"""Trigonometric closed-form fitting: ``offset + a * sin(b*i + c)``.

Z3 does not support transcendental functions, so the paper implements a
dedicated non-linear least-squares solver (iterative SVD refinement) for the
sinusoidal family and judges fits by R².  We do the same with numpy:

* for a *fixed* frequency ``b`` the model is linear in
  ``(offset, a*cos(c), a*sin(c))`` because
  ``a*sin(b*i + c) = a*cos(c)*sin(b*i) + a*sin(c)*cos(b*i)``, so we solve
  that linear system by SVD (``lstsq``);
* the frequency itself is found by scanning the natural candidate
  frequencies of a length-``n`` design (multiples of ``360/n`` and of
  ``360/(n+1)``, plus harmonics) and then refining the best candidate with a
  local Gauss–Newton iteration.

Phases and frequencies are reported in degrees, matching the programs the
paper prints (``Sin (90 * i + 315)``).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.solvers.forms import SinusoidForm
from repro.solvers.rational import nice_round


def _solve_fixed_frequency(
    indices: np.ndarray, values: np.ndarray, frequency_degrees: float
) -> Tuple[float, float, float, float]:
    """Best (offset, amplitude, phase_degrees, residual) for a fixed frequency."""
    radians = np.radians(frequency_degrees * indices)
    design = np.column_stack([np.ones_like(indices), np.sin(radians), np.cos(radians)])
    solution, *_ = np.linalg.lstsq(design, values, rcond=None)
    offset, coefficient_sin, coefficient_cos = solution
    amplitude = math.hypot(coefficient_sin, coefficient_cos)
    phase = math.degrees(math.atan2(coefficient_cos, coefficient_sin)) % 360.0
    predictions = design @ solution
    residual = float(np.max(np.abs(predictions - values))) if len(values) else 0.0
    return float(offset), float(amplitude), phase, residual


def _candidate_frequencies(count: int) -> List[float]:
    """Natural frequency candidates for a length-``count`` repetitive design."""
    candidates: List[float] = []
    for divisor in (count, count + 1, count - 1, 2 * count):
        if divisor and divisor > 0:
            base = 360.0 / divisor
            for harmonic in (1, 2, 3, 4):
                candidates.append(base * harmonic)
    # Common CAD angles regardless of the list length.
    candidates.extend([30.0, 36.0, 45.0, 60.0, 72.0, 90.0, 120.0, 180.0, 270.0])
    unique: List[float] = []
    for candidate in candidates:
        candidate = candidate % 360.0 or 360.0
        if 0.0 < candidate <= 360.0 and all(abs(candidate - c) > 1e-9 for c in unique):
            unique.append(candidate)
    return unique


def _refine_frequency(
    indices: np.ndarray, values: np.ndarray, frequency: float, rounds: int = 25
) -> float:
    """Local search refinement of the frequency around an initial guess."""
    best_frequency = frequency
    _, _, _, best_residual = _solve_fixed_frequency(indices, values, frequency)
    step = max(frequency * 0.05, 0.5)
    for _ in range(rounds):
        improved = False
        for candidate in (best_frequency - step, best_frequency + step):
            if candidate <= 0.0 or candidate > 720.0:
                continue
            _, _, _, residual = _solve_fixed_frequency(indices, values, candidate)
            if residual < best_residual - 1e-12:
                best_residual = residual
                best_frequency = candidate
                improved = True
        if not improved:
            step /= 2.0
            if step < 1e-6:
                break
    return best_frequency


def fit_sinusoid(
    values: Sequence[float],
    epsilon: float,
    *,
    extra_frequencies: Iterable[float] = (),
) -> Optional[SinusoidForm]:
    """Fit ``offset + a*sin(b*i + c)`` within ``epsilon`` (degrees).

    Returns ``None`` when no candidate frequency produces a fit within the
    tolerance, or when the data is too short to constrain the model (fewer
    than 4 points: any 3 points lie on some sinusoid, which would make the
    solver claim spurious structure).
    """
    values = list(values)
    if len(values) < 4:
        return None
    indices = np.arange(len(values), dtype=float)
    observations = np.asarray(values, dtype=float)

    best: Optional[SinusoidForm] = None
    best_residual = math.inf
    candidates = list(extra_frequencies) + _candidate_frequencies(len(values))
    for frequency in candidates:
        offset, amplitude, phase, residual = _solve_fixed_frequency(
            indices, observations, frequency
        )
        if residual < best_residual:
            best_residual = residual
            best = SinusoidForm(amplitude, frequency, phase, offset)

    if best is None:
        return None

    refined_frequency = _refine_frequency(indices, observations, best.frequency)
    offset, amplitude, phase, residual = _solve_fixed_frequency(
        indices, observations, refined_frequency
    )
    if residual < best_residual:
        best = SinusoidForm(amplitude, refined_frequency, phase, offset)
        best_residual = residual

    # Snap the parameters to nice values when that keeps the fit feasible.
    snapped = SinusoidForm(
        nice_round(best.amplitude, tolerance=max(5e-3, epsilon)),
        nice_round(best.frequency, tolerance=max(5e-3, epsilon)),
        nice_round(best.phase, tolerance=max(5e-3, epsilon)) % 360.0,
        nice_round(best.offset, tolerance=max(5e-3, epsilon)),
    )
    if snapped.satisfies(values, epsilon):
        return snapped
    if best.satisfies(values, epsilon):
        return best
    return None
