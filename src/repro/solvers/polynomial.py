"""Polynomial closed-form fitting under an epsilon tolerance.

This module replaces Z3 in the original system (see DESIGN.md).  The original
encodes, for each observation ``x_j`` at index ``i_j``::

    (a*i_j + b) - eps <= x_j <= (a*i_j + b) + eps        (degree 1)
    (a*i_j^2 + b*i_j + c) - eps <= x_j <= ... + eps       (degree 2)

and asks Z3 for a model of ``a, b(, c)``.  For fixed observations this is a
bounded linear feasibility problem; we decide it by

1. solving the unconstrained least-squares problem (Vandermonde / lstsq),
2. snapping each coefficient to a nearby nice rational (Z3's models are exact
   rationals, which is where the paper's readable ``2*(i+1)`` coefficients
   come from), and
3. explicitly checking every residual against ``epsilon`` — first for the
   snapped coefficients, then for the raw least-squares ones.

If neither passes, the constraint system is (almost certainly) infeasible and
we report no solution, exactly as the paper's pipeline would fall through to
the next solver.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.solvers.forms import ConstantForm, LinearForm, QuadraticForm
from repro.solvers.rational import nice_round

#: Tolerance used when snapping fitted coefficients to nice rationals.  This
#: is deliberately larger than machine epsilon: decompiler noise on the order
#: of 1e-3 should still snap to the intended integer coefficients.
_SNAP_TOLERANCE = 5e-3


def fit_constant(values: Sequence[float], epsilon: float) -> Optional[ConstantForm]:
    """Fit a constant function, if all values agree within ``epsilon``."""
    values = list(values)
    if not values:
        return None
    center = nice_round(float(np.mean(values)), tolerance=_SNAP_TOLERANCE)
    form = ConstantForm(center)
    if form.satisfies(values, epsilon):
        return form
    # The mean may sit outside the epsilon band even when a feasible constant
    # exists (e.g. one outlier-free tight cluster): try the midrange.
    midrange = (max(values) + min(values)) / 2.0
    form = ConstantForm(nice_round(midrange, tolerance=_SNAP_TOLERANCE))
    if form.satisfies(values, epsilon):
        return form
    return None


def _least_squares(indices: np.ndarray, values: np.ndarray, degree: int) -> np.ndarray:
    """Least-squares polynomial coefficients, highest degree first."""
    vandermonde = np.vander(indices, degree + 1)
    coefficients, *_ = np.linalg.lstsq(vandermonde, values, rcond=None)
    return coefficients


def fit_linear(values: Sequence[float], epsilon: float) -> Optional[LinearForm]:
    """Fit ``a*i + b`` within ``epsilon``, preferring nice coefficients."""
    values = list(values)
    if len(values) < 2:
        return None
    indices = np.arange(len(values), dtype=float)
    observations = np.asarray(values, dtype=float)
    a_raw, b_raw = _least_squares(indices, observations, 1)

    snapped = LinearForm(
        nice_round(float(a_raw), tolerance=max(_SNAP_TOLERANCE, epsilon)),
        nice_round(float(b_raw), tolerance=max(_SNAP_TOLERANCE, epsilon)),
    )
    if snapped.satisfies(values, epsilon):
        return snapped
    raw = LinearForm(float(a_raw), float(b_raw))
    if raw.satisfies(values, epsilon):
        return raw
    return None


def fit_quadratic(values: Sequence[float], epsilon: float) -> Optional[QuadraticForm]:
    """Fit ``a*i^2 + b*i + c`` within ``epsilon``, preferring nice coefficients."""
    values = list(values)
    if len(values) < 3:
        return None
    indices = np.arange(len(values), dtype=float)
    observations = np.asarray(values, dtype=float)
    a_raw, b_raw, c_raw = _least_squares(indices, observations, 2)

    snap = max(_SNAP_TOLERANCE, epsilon)
    snapped = QuadraticForm(
        nice_round(float(a_raw), tolerance=snap),
        nice_round(float(b_raw), tolerance=snap),
        nice_round(float(c_raw), tolerance=snap),
    )
    if snapped.satisfies(values, epsilon):
        return snapped
    raw = QuadraticForm(float(a_raw), float(b_raw), float(c_raw))
    if raw.satisfies(values, epsilon):
        return raw
    return None
