"""Model selection across the closed-form solvers.

``solve_component`` tries, in order, the constant, degree-1, degree-2, and
trigonometric families, keeps every feasible fit (max residual within
epsilon), and returns the one with the best coefficient of determination —
ties broken by the *simplest* rendered expression, so a constant beats an
equivalent degree-2 fit.  ``solve_vectors`` solves the three components of a
list of 3-vectors independently, which is exactly how the paper's function
inference decomposes the problem (Section 4.1).

The rotation heuristic from the paper is applied here: when the solved
component feeds a ``Rotate``, a feasible linear fit ``a*i + b`` whose step
divides 360 is re-expressed as ``360 * (i [+1]) / n`` (a
:class:`~repro.solvers.forms.RotationForm`), which surfaces the loop bound
(e.g. the gear's 60 teeth) directly in the program text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.lang.term import Term
from repro.solvers.forms import (
    ClosedForm,
    ConstantForm,
    LinearForm,
    RotationForm,
    SinusoidForm,
)
from repro.solvers.polynomial import fit_constant, fit_linear, fit_quadratic
from repro.solvers.rational import as_int_if_close
from repro.solvers.trig import fit_sinusoid


@dataclass(frozen=True)
class SolverConfig:
    """Knobs of the arithmetic component."""

    #: Tolerance on every observation (the paper's epsilon = 0.001).
    epsilon: float = 1e-3
    #: Whether to attempt the trigonometric family at all.
    enable_trig: bool = True
    #: Whether to rewrite rotation fits into the 360*(i+shift)/n shape.
    rotation_heuristic: bool = True
    #: Maximum loop bound considered by the rotation heuristic.
    max_rotation_count: int = 720


@dataclass
class ComponentSolution:
    """A feasible closed form together with its goodness of fit."""

    form: ClosedForm
    r_squared: float

    @property
    def kind(self) -> str:
        return self.form.kind


def _rotation_normalize(
    form: LinearForm, values: Sequence[float], config: SolverConfig
) -> Optional[RotationForm]:
    """Convert a linear rotation fit into the periodic 360/n shape."""
    step = as_int_if_close(form.a, tolerance=max(1e-6, config.epsilon))
    if step is None or step == 0:
        return None
    if 360 % abs(step) != 0:
        return None
    count = 360 // abs(step)
    if count < 2 or count > config.max_rotation_count:
        return None
    intercept = as_int_if_close(form.b, tolerance=max(1e-6, config.epsilon))
    if intercept is None:
        return None
    if intercept == 0:
        candidate = RotationForm(count=count, shift=0)
    elif intercept == step:
        candidate = RotationForm(count=count, shift=1)
    else:
        candidate = RotationForm(count=count, shift=0, offset=float(intercept))
    if step < 0:
        # Negative steps stay as plain linear forms; a negative "count" would
        # read worse than -6*i.
        return None
    if candidate.satisfies(values, config.epsilon):
        return candidate
    return None


def solve_component(
    values: Sequence[float],
    config: Optional[SolverConfig] = None,
    *,
    is_rotation: bool = False,
) -> Optional[ComponentSolution]:
    """Find the best closed form for one vector component."""
    config = config or SolverConfig()
    values = [float(v) for v in values]
    if not values:
        return None

    # The paper tries the polynomial families first and only falls back to
    # the trigonometric solver when no polynomial fits (Section 4.1).  This
    # ordering also keeps noisy-but-constant data from being "explained" by a
    # sinusoid that interpolates the noise.
    candidates: List[ClosedForm] = []

    constant = fit_constant(values, config.epsilon)
    if constant is not None:
        candidates.append(constant)

    linear = fit_linear(values, config.epsilon)
    if linear is not None:
        if is_rotation and config.rotation_heuristic:
            rotation = _rotation_normalize(linear, values, config)
            if rotation is not None:
                candidates.append(rotation)
        candidates.append(linear)

    quadratic = fit_quadratic(values, config.epsilon)
    if quadratic is not None:
        candidates.append(quadratic)

    feasible = [c for c in candidates if c.satisfies(values, config.epsilon)]

    if not feasible and config.enable_trig and len(set(values)) >= 2:
        sinusoid = fit_sinusoid(values, config.epsilon)
        if sinusoid is not None and sinusoid.satisfies(values, config.epsilon):
            feasible = [sinusoid]

    if not feasible:
        return None

    def rank(form: ClosedForm) -> Tuple[float, int, int]:
        # Maximize R^2 (so sort on its negation), then — for rotation
        # components — prefer the periodic 360/n shape (the paper's rotation
        # heuristic), then prefer simpler terms.
        rotation_preference = 0 if (is_rotation and isinstance(form, RotationForm)) else 1
        return (-round(form.r_squared(values), 9), rotation_preference, form.complexity())

    best = min(feasible, key=rank)
    return ComponentSolution(form=best, r_squared=best.r_squared(values))


@dataclass
class VectorFunction:
    """Closed forms for the x, y, z components of an affine-vector list."""

    x: ClosedForm
    y: ClosedForm
    z: ClosedForm
    r_squared: float = 1.0

    def to_terms(self, index: Term) -> Tuple[Term, Term, Term]:
        """Render the three component expressions over the index variable."""
        return (self.x.to_term(index), self.y.to_term(index), self.z.to_term(index))

    def predict(self, index: int) -> Tuple[float, float, float]:
        return (self.x.predict(index), self.y.predict(index), self.z.predict(index))

    def kinds(self) -> Tuple[str, str, str]:
        return (self.x.kind, self.y.kind, self.z.kind)

    def dominant_kind(self) -> str:
        """The most "interesting" function class across components.

        Table 1's ``f`` column reports one label per loop; a trigonometric
        component outranks polynomials, and degree 2 outranks degree 1.
        """
        kinds = set(self.kinds())
        if "theta" in kinds:
            return "theta"
        if "d2" in kinds:
            return "d2"
        return "d1"

    def is_constant(self) -> bool:
        """True when all three components are constants."""
        return all(isinstance(f, ConstantForm) for f in (self.x, self.y, self.z))

    def describe(self) -> str:
        return f"({self.x.describe()}, {self.y.describe()}, {self.z.describe()})"


class FunctionSolver:
    """Facade over the component solvers, operating on lists of 3-vectors."""

    def __init__(self, config: Optional[SolverConfig] = None):
        self.config = config or SolverConfig()

    def solve(
        self, vectors: Sequence[Sequence[float]], *, is_rotation: bool = False
    ) -> Optional[VectorFunction]:
        """Find closed forms for every component of ``vectors`` or ``None``."""
        if not vectors:
            return None
        columns = list(zip(*[tuple(v) for v in vectors]))
        if len(columns) != 3:
            raise ValueError("expected 3-component vectors")
        solutions = []
        for column in columns:
            solution = solve_component(column, self.config, is_rotation=is_rotation)
            if solution is None:
                return None
            solutions.append(solution)
        overall_r2 = min(s.r_squared for s in solutions)
        return VectorFunction(
            x=solutions[0].form,
            y=solutions[1].form,
            z=solutions[2].form,
            r_squared=overall_r2,
        )


def solve_vectors(
    vectors: Sequence[Sequence[float]],
    config: Optional[SolverConfig] = None,
    *,
    is_rotation: bool = False,
) -> Optional[VectorFunction]:
    """Module-level convenience wrapper around :class:`FunctionSolver`."""
    return FunctionSolver(config).solve(vectors, is_rotation=is_rotation)
