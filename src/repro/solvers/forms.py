"""Closed-form function classes.

A :class:`ClosedForm` is an inferred function of the list index ``i``.  It
can predict values (for residual / R² checks), render itself as a LambdaCAD
arithmetic term (for the synthesized program), and describe itself with the
Table 1 label of its class (``d1``, ``d2``, or ``theta``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.cad.build import add, div, mul, sin, sub
from repro.lang.term import Term
from repro.solvers.rational import as_int_if_close, nice_round


def _coefficient_term(value: float) -> Term:
    """A numeric literal term, preferring exact ints for integral values."""
    as_int = as_int_if_close(value, tolerance=1e-9)
    if as_int is not None:
        return Term.num(as_int)
    return Term.num(value)


def _simplified_linear_term(a: float, b: float, index: Term) -> Term:
    """Render ``a*i + b`` with the obvious simplifications applied."""
    a = nice_round(a)
    b = nice_round(b)
    if a == 0.0:
        return _coefficient_term(b)
    # Prefer the a*(i+1) form when b == a: this is how the paper prints
    # formulas like 2 * (i + 1).
    if b == a:
        shifted = add(index, Term.num(1))
        if a == 1.0:
            return shifted
        return mul(_coefficient_term(a), shifted)
    scaled = index if a == 1.0 else mul(_coefficient_term(a), index)
    if b == 0.0:
        return scaled
    if b < 0.0:
        return sub(scaled, _coefficient_term(-b))
    return add(scaled, _coefficient_term(b))


class ClosedForm:
    """Base class for inferred closed forms of the index."""

    #: Table 1 function-class label: "d1", "d2", or "theta".
    kind: str = "?"

    def predict(self, index: int) -> float:
        raise NotImplementedError

    def predictions(self, count: int) -> List[float]:
        return [self.predict(i) for i in range(count)]

    def max_residual(self, values: Sequence[float]) -> float:
        """Largest absolute error against the observed values."""
        return max(
            (abs(self.predict(i) - v) for i, v in enumerate(values)), default=0.0
        )

    def r_squared(self, values: Sequence[float]) -> float:
        """Coefficient of determination against the observed values."""
        values = list(values)
        if not values:
            return 1.0
        mean = sum(values) / len(values)
        ss_total = sum((v - mean) ** 2 for v in values)
        ss_residual = sum((self.predict(i) - v) ** 2 for i, v in enumerate(values))
        if ss_total == 0.0:
            return 1.0 if ss_residual <= 1e-18 else 0.0
        return 1.0 - ss_residual / ss_total

    def satisfies(self, values: Sequence[float], epsilon: float) -> bool:
        """True when every observation is within ``epsilon`` of the form."""
        return self.max_residual(values) <= epsilon

    def to_term(self, index: Term) -> Term:
        """Render the form as a LambdaCAD arithmetic expression of ``index``."""
        raise NotImplementedError

    def complexity(self) -> int:
        """Node count of the rendered term (used to break ties)."""
        return self.to_term(Term("i")).size()

    def describe(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.describe()


@dataclass
class ConstantForm(ClosedForm):
    """A constant function ``c`` (the function for an unvarying component)."""

    value: float
    kind: str = "d1"

    def predict(self, index: int) -> float:
        return self.value

    def to_term(self, index: Term) -> Term:
        return _coefficient_term(nice_round(self.value))

    def describe(self) -> str:
        return f"{nice_round(self.value):g}"


@dataclass
class LinearForm(ClosedForm):
    """A first-degree polynomial ``a*i + b``."""

    a: float
    b: float
    kind: str = "d1"

    def predict(self, index: int) -> float:
        return self.a * index + self.b

    def to_term(self, index: Term) -> Term:
        return _simplified_linear_term(self.a, self.b, index)

    def describe(self) -> str:
        return f"{nice_round(self.a):g}*i + {nice_round(self.b):g}"


@dataclass
class RotationForm(ClosedForm):
    """A rotation-normalized linear form ``360 * (i + shift) / count``.

    The paper's rotation heuristic (Section 4.1, "Rotation") converts linear
    fits over rotation angles into the periodic ``2*pi*(i+1)/b`` shape, which
    exposes the loop bound (e.g. the tooth count 60) directly in the program.
    """

    count: int
    shift: int = 0  # 0 renders as i, 1 renders as (i + 1)
    offset: float = 0.0
    kind: str = "d1"

    def predict(self, index: int) -> float:
        return 360.0 * (index + self.shift) / self.count + self.offset

    def to_term(self, index: Term) -> Term:
        shifted = index if self.shift == 0 else add(index, Term.num(self.shift))
        core = div(mul(Term.num(360), shifted), Term.num(self.count))
        if self.offset == 0.0:
            return core
        return add(core, _coefficient_term(nice_round(self.offset)))

    def describe(self) -> str:
        inner = "i" if self.shift == 0 else f"(i + {self.shift})"
        text = f"360*{inner}/{self.count}"
        if self.offset:
            text += f" + {nice_round(self.offset):g}"
        return text


@dataclass
class QuadraticForm(ClosedForm):
    """A second-degree polynomial ``a*i^2 + b*i + c``."""

    a: float
    b: float
    c: float
    kind: str = "d2"

    def predict(self, index: int) -> float:
        return self.a * index * index + self.b * index + self.c

    def to_term(self, index: Term) -> Term:
        a = nice_round(self.a)
        quadratic_part = mul(_coefficient_term(a), mul(index, index))
        if a == 1.0:
            quadratic_part = mul(index, index)
        linear_part = _simplified_linear_term(self.b, self.c, index)
        if a == 0.0:
            return linear_part
        if nice_round(self.b) == 0.0 and nice_round(self.c) == 0.0:
            return quadratic_part
        return add(quadratic_part, linear_part)

    def describe(self) -> str:
        return (
            f"{nice_round(self.a):g}*i^2 + {nice_round(self.b):g}*i + "
            f"{nice_round(self.c):g}"
        )


@dataclass
class SinusoidForm(ClosedForm):
    """A trigonometric form ``offset + a * sin(b*i + c)`` (degrees)."""

    amplitude: float
    frequency: float
    phase: float
    offset: float = 0.0
    kind: str = "theta"

    def predict(self, index: int) -> float:
        angle = math.radians(self.frequency * index + self.phase)
        return self.offset + self.amplitude * math.sin(angle)

    def to_term(self, index: Term) -> Term:
        frequency = nice_round(self.frequency, tolerance=1e-6)
        phase = nice_round(self.phase, tolerance=1e-6) % 360.0
        amplitude = nice_round(self.amplitude, tolerance=1e-6)
        offset = nice_round(self.offset, tolerance=1e-6)
        angle = _simplified_linear_term(frequency, phase, index)
        wave = sin(angle)
        if amplitude != 1.0:
            wave = mul(_coefficient_term(amplitude), wave)
        if offset == 0.0:
            return wave
        return add(_coefficient_term(offset), wave)

    def describe(self) -> str:
        return (
            f"{nice_round(self.offset):g} + {nice_round(self.amplitude):g}*"
            f"sin({nice_round(self.frequency):g}*i + {nice_round(self.phase):g})"
        )
