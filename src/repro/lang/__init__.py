"""Generic language infrastructure shared by CSG and LambdaCAD.

This package provides the immutable :class:`~repro.lang.term.Term`
representation used everywhere in the reproduction, an s-expression
reader/printer compatible with the serialization format the paper uses
(Janestreet-style s-expressions), and the semantic-normalization pipeline
(:mod:`repro.lang.normal`) the cache keys, fingerprints, and determinizer
share.
"""

from repro.lang.canon import (
    canonical_term_text,
    fingerprint_bytes,
    fingerprint_text,
    normalized_term_text,
    payload_fingerprint,
    semantic_fingerprint,
    term_fingerprint,
    term_from_canonical,
)
from repro.lang.normal import (
    AFFINE_OPS,
    COMMUTATIVE_OPS,
    DEFAULT_PASSES,
    NormalizationPass,
    affine_signature,
    canonical_number,
    canonical_number_value,
    normalize,
    signature_sort_key,
    term_order_key,
)
from repro.lang.sexp import Sexp, parse_sexp, parse_many, format_sexp, SexpError
from repro.lang.term import Term, TermError

__all__ = [
    "Sexp",
    "SexpError",
    "parse_sexp",
    "parse_many",
    "format_sexp",
    "Term",
    "TermError",
    "canonical_term_text",
    "term_from_canonical",
    "term_fingerprint",
    "fingerprint_bytes",
    "fingerprint_text",
    "payload_fingerprint",
    "normalized_term_text",
    "semantic_fingerprint",
    "AFFINE_OPS",
    "COMMUTATIVE_OPS",
    "DEFAULT_PASSES",
    "NormalizationPass",
    "affine_signature",
    "canonical_number",
    "canonical_number_value",
    "normalize",
    "signature_sort_key",
    "term_order_key",
]
