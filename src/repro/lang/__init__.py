"""Generic language infrastructure shared by CSG and LambdaCAD.

This package provides the immutable :class:`~repro.lang.term.Term`
representation used everywhere in the reproduction, plus an s-expression
reader/printer compatible with the serialization format the paper uses
(Janestreet-style s-expressions).
"""

from repro.lang.canon import (
    canonical_term_text,
    fingerprint_bytes,
    fingerprint_text,
    payload_fingerprint,
    term_fingerprint,
    term_from_canonical,
)
from repro.lang.sexp import Sexp, parse_sexp, parse_many, format_sexp, SexpError
from repro.lang.term import Term, TermError

__all__ = [
    "Sexp",
    "SexpError",
    "parse_sexp",
    "parse_many",
    "format_sexp",
    "Term",
    "TermError",
    "canonical_term_text",
    "term_from_canonical",
    "term_fingerprint",
    "fingerprint_bytes",
    "fingerprint_text",
    "payload_fingerprint",
]
