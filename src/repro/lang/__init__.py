"""Generic language infrastructure shared by CSG and LambdaCAD.

This package provides the immutable :class:`~repro.lang.term.Term`
representation used everywhere in the reproduction, plus an s-expression
reader/printer compatible with the serialization format the paper uses
(Janestreet-style s-expressions).
"""

from repro.lang.sexp import Sexp, parse_sexp, parse_many, format_sexp, SexpError
from repro.lang.term import Term, TermError

__all__ = [
    "Sexp",
    "SexpError",
    "parse_sexp",
    "parse_many",
    "format_sexp",
    "Term",
    "TermError",
]
