"""Immutable term representation shared by CSG and LambdaCAD.

Both the input language (flat CSG, paper Fig. 6 right) and the output
language (LambdaCAD, paper Fig. 6 left) are ordinary first-order term
languages, so the whole reproduction works over a single generic
:class:`Term` type: an operator symbol applied to child terms, where numeric
leaves are terms with a numeric operator and no children.

Terms are hash-consed-friendly: they are frozen, cache their hash, and
compare structurally, which is what the e-graph's ``add`` path and the
evaluators need to be fast.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Union

from repro.lang.sexp import Sexp, format_sexp, parse_sexp


class TermError(ValueError):
    """Raised when terms are constructed or converted incorrectly."""


#: Operators may be symbols (strings) or numeric literals.
Operator = Union[str, int, float]


class Term:
    """An immutable operator applied to zero or more child terms.

    ``Term("Translate", (x, y, z, child))`` — note children are stored as a
    tuple.  Numeric leaves are ``Term(2.0)`` / ``Term(3)``; symbolic leaves
    (like primitive names ``Cube`` or variables ``i``) are ``Term("Cube")``.
    """

    __slots__ = ("op", "children", "_hash")

    def __init__(self, op: Operator, children: Sequence["Term"] = ()):
        if isinstance(op, bool):
            raise TermError("booleans are not valid term operators")
        if not isinstance(op, (str, int, float)):
            raise TermError(f"invalid operator: {op!r}")
        kids = tuple(children)
        for child in kids:
            if not isinstance(child, Term):
                raise TermError(f"child {child!r} is not a Term")
        if isinstance(op, (int, float)) and kids:
            raise TermError("numeric literals cannot have children")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "children", kids)
        object.__setattr__(self, "_hash", hash((op, kids)))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Term is immutable")

    def __reduce__(self):
        # Pickle via the constructor: the default slot-based protocol would
        # call __setattr__ (which raises), and rebuilding through __init__
        # also revalidates and recomputes the cached hash in the receiving
        # process.  This is what lets synthesis results cross the batch
        # service's worker-process boundary.
        return (Term, (self.op, self.children))

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def leaf(op: Operator) -> "Term":
        """Construct a leaf term (no children)."""
        return Term(op)

    @staticmethod
    def num(value: Union[int, float]) -> "Term":
        """Construct a numeric literal term."""
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TermError(f"not a number: {value!r}")
        return Term(value)

    def with_children(self, children: Sequence["Term"]) -> "Term":
        """Return a copy of this term with ``children`` substituted."""
        return Term(self.op, children)

    # -- predicates ------------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        """True when the term has no children."""
        return not self.children

    @property
    def is_number(self) -> bool:
        """True when the term is a numeric literal."""
        return isinstance(self.op, (int, float))

    @property
    def value(self) -> Union[int, float]:
        """The numeric value of a literal term."""
        if not self.is_number:
            raise TermError(f"term {self.op!r} is not a numeric literal")
        return self.op

    # -- structural queries ----------------------------------------------------

    def size(self) -> int:
        """Number of AST nodes (the paper's default cost metric)."""
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        """Height of the AST (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def count(self, op: Operator) -> int:
        """Count nodes whose operator equals ``op``."""
        own = 1 if self.op == op else 0
        return own + sum(child.count(op) for child in self.children)

    def operators(self) -> set:
        """The set of all operators appearing in the term."""
        ops = {self.op}
        for child in self.children:
            ops |= child.operators()
        return ops

    def subterms(self) -> Iterator["Term"]:
        """Yield every subterm, pre-order."""
        yield self
        for child in self.children:
            yield from child.subterms()

    def map_children(self, fn) -> "Term":
        """Return a term with ``fn`` applied to each child."""
        return Term(self.op, tuple(fn(child) for child in self.children))

    def map_bottom_up(self, fn) -> "Term":
        """Rewrite the term bottom-up: children first, then ``fn`` on the node."""
        rebuilt = Term(self.op, tuple(c.map_bottom_up(fn) for c in self.children))
        return fn(rebuilt)

    # -- conversion ------------------------------------------------------------

    @staticmethod
    def from_sexp(sexp: Sexp) -> "Term":
        """Build a term from a parsed s-expression.

        ``(Translate 1 2 3 Cube)`` becomes ``Term("Translate", (1, 2, 3, Cube))``.
        A bare atom becomes a leaf.  An empty list is rejected.
        """
        if isinstance(sexp, list):
            if not sexp:
                raise TermError("cannot convert empty list to a term")
            head = sexp[0]
            if isinstance(head, list):
                raise TermError(f"operator position holds a list: {head!r}")
            children = tuple(Term.from_sexp(child) for child in sexp[1:])
            return Term(head, children)
        return Term(sexp)

    @staticmethod
    def parse(text: str) -> "Term":
        """Parse a term from s-expression text."""
        return Term.from_sexp(parse_sexp(text))

    def to_sexp(self) -> Sexp:
        """Convert the term back to a nested-list s-expression."""
        if not self.children:
            return self.op
        return [self.op] + [child.to_sexp() for child in self.children]

    def pretty(self, width: int = 80) -> str:
        """Pretty-print the term as an s-expression."""
        return format_sexp(self.to_sexp(), width=width)

    # -- dunder ----------------------------------------------------------------

    def __iter__(self) -> Iterator["Term"]:
        return iter(self.children)

    def __len__(self) -> int:
        return len(self.children)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        if self._hash != other._hash:
            return False
        return self.op == other.op and self.children == other.children

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self.children:
            return f"Term({self.op!r})"
        return f"Term({self.op!r}, {list(self.children)!r})"

    def __str__(self) -> str:
        return format_sexp(self.to_sexp(), width=10 ** 9)


def make(op: Operator, *children: Term) -> Term:
    """Convenience constructor: ``make("Union", a, b)``."""
    return Term(op, children)


def nums(values: Iterable[Union[int, float]]) -> tuple:
    """Build a tuple of numeric literal terms."""
    return tuple(Term.num(v) for v in values)
