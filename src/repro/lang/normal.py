"""Semantic normalization: the shared canonical-form layer for terms.

Szalinski's premise is that syntactically different CSG programs are often
semantically equal; this module writes that premise down as reusable code.
It provides a pipeline of composable, idempotent passes over
:class:`~repro.lang.term.Term`\\ s — each pass maps semantically equal
spellings of a construct onto one canonical spelling — plus the
affine-chain signature helpers the determinizer shares.

The default pipeline (:data:`DEFAULT_PASSES`, applied by :func:`normalize`)
runs, in order:

1. **numeric-literals** — every integral-valued float literal becomes the
   int spelling (``1.0`` -> ``1``, ``-0.0`` -> ``0``); non-integral floats
   are untouched (their ``repr`` round-trips exactly).  This mirrors the
   e-graph's :class:`~repro.egraph.symbols.SymbolTable`, which already
   interns ``1`` and ``1.0`` as one symbol.
2. **affine-canonical** — nested affine transformations are rewritten to
   the canonical chain the rewrite rules themselves can derive: adjacent
   same-operator layers are fused (translation vectors added, scale
   factors multiplied, same-axis rotation angles summed — Fig. 8c),
   ``Scale`` and axis-aligned ``Rotate`` layers are commuted below
   ``Translate`` with their vectors recomputed (Fig. 8b), and identity
   layers (``Translate 0 0 0`` / ``Scale 1 1 1`` / ``Rotate 0 0 0``) are
   dropped.  Arithmetic lands on the same 9-decimal grid the dynamic
   rules' ``_add_number`` uses, so normalization never invents values the
   e-graph would not.
3. **alpha-rename** — ``Fun``-bound parameter names (and their
   ``(Var name)`` references) become positional de Bruijn-style names
   ``$0``, ``$1``, ... numbered by binder position, so alpha-equivalent
   programs render identically.  Free names — primitives, loop-free
   symbols, ``External`` placeholders — are never touched: two differently
   named opaque solids are semantically distinct.
4. **commutative-sort** — chains of the commutative set operators
   (``Union``/``Inter``) are flattened through nested same-operator
   applications, sorted under a total term order (:func:`term_order_key`:
   numeric leaves by value, symbols lexically, composites by operator then
   children), and rebuilt right-nested (the ``union_all`` shape the
   fold-introduction rules look for).  Ordering numerals *by value* rather
   than by rendered text matters: lexicographic text puts ``10`` before
   ``2``, which scrambles the arithmetic progressions the loop solvers
   read off element chains.  ``Diff`` is not commutative and is left
   alone.

The pass *order* is what makes the whole pipeline idempotent, not just
each pass: alpha-renaming runs before the sort so operand order is decided
by names no later pass will change (binder numbering depends only on
``Fun`` nesting depth, never on operand order inside a body, so sorting
cannot un-canonicalize the names).  ``tests/test_normal.py`` pins
idempotence of every pass and of the pipeline, plus semantics
preservation over the bundled models.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple, Union

from repro.lang.term import Term

#: Affine transformation operators: three numeric arguments plus a child.
#: This is the vocabulary's single source of truth — ``repro.csg.ops``
#: re-exports it.
AFFINE_OPS: Tuple[str, ...] = ("Translate", "Scale", "Rotate")

#: The commutative binary set operators (``Diff`` is order-sensitive).
COMMUTATIVE_OPS: Tuple[str, ...] = ("Union", "Inter")

#: Prefix of the canonical (de Bruijn-style) bound-parameter names.  The
#: ``$`` sigil cannot appear in names produced by the OpenSCAD frontend or
#: the loop-inference components, so renaming into this namespace cannot
#: capture a free program variable.
CANONICAL_PARAM_PREFIX = "$"

#: Identity argument vectors per affine operator (dropping the layer is a
#: semantic no-op).
_IDENTITY_VECTOR: Dict[str, Tuple[float, float, float]] = {
    "Translate": (0.0, 0.0, 0.0),
    "Scale": (1.0, 1.0, 1.0),
    "Rotate": (0.0, 0.0, 0.0),
}


# ---------------------------------------------------------------------------
# Numeric spelling
# ---------------------------------------------------------------------------


def canonical_number_value(value: Union[int, float]) -> Union[int, float]:
    """The canonical spelling of a numeric value: int when integral.

    ``1.0`` -> ``1``, ``-0.0`` -> ``0``, ``2.5`` -> ``2.5``.  Mirrors the
    e-graph symbol table's ``1 == 1.0`` sharing, so a term and its image in
    the e-graph agree about which literals are the same.
    """
    if isinstance(value, float) and value == int(value) and abs(value) < 1e16:
        return int(value)
    return value


def canonical_number(value: Union[int, float]) -> Term:
    """A numeric literal term in canonical spelling."""
    return Term(canonical_number_value(value))


def _grid(value: float) -> Union[int, float]:
    """Round to the dynamic rules' 9-decimal grid, canonically spelled."""
    return canonical_number_value(round(value, 9))


# ---------------------------------------------------------------------------
# Affine-chain queries (shared with the determinizer)
# ---------------------------------------------------------------------------


def is_affine_node(term: Term) -> bool:
    """True for a structurally well-formed affine application."""
    return term.op in AFFINE_OPS and len(term.children) == 4


def _numeric_vector(term: Term):
    """The (x, y, z) float vector of an affine node, or None if symbolic."""
    values = []
    for child in term.children[:3]:
        if not child.is_number:
            return None
        values.append(float(child.value))
    return tuple(values)


def affine_signature(term: Term) -> Tuple[str, ...]:
    """The affine-operator chain of a term, outermost first.

    Descent stops at the first non-affine node *or* the first affine node
    with a symbolic (non-numeric) vector — the layer-by-layer vector
    extraction the signature exists for cannot see past either.
    """
    signature: List[str] = []
    current = term
    while is_affine_node(current) and _numeric_vector(current) is not None:
        signature.append(str(current.op))
        current = current.children[3]
    return tuple(signature)


def signature_sort_key(signature: Sequence[str]) -> Tuple[int, Tuple[str, ...]]:
    """Sort key ordering affine signatures longest-first, then lexically.

    Longer signatures expose more layers to the function solvers (a
    ``Translate . Rotate . Scale`` chain gives three solvable layers; its
    collapsed variants give fewer), so the determinizer tries them first.
    """
    signature = tuple(signature)
    return (-len(signature), signature)


# ---------------------------------------------------------------------------
# The pass framework
# ---------------------------------------------------------------------------


class NormalizationPass:
    """One named, idempotent term-to-term transformation."""

    def __init__(self, name: str, fn: Callable[[Term], Term]):
        self.name = name
        self._fn = fn

    def __call__(self, term: Term) -> Term:
        return self._fn(term)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NormalizationPass({self.name!r})"


# -- pass 1: numeric literal unification --------------------------------------


def _numeric_literals(term: Term) -> Term:
    def unify(node: Term) -> Term:
        if node.is_number:
            canonical = canonical_number_value(node.value)
            # ``1.0 == 1`` yet the spellings are distinct terms for the
            # exact tier; rebuild only when the spelling actually changes.
            if type(canonical) is not type(node.op):
                return Term(canonical)
        return node

    return term.map_bottom_up(unify)


# -- pass 2: affine canonical forms -------------------------------------------


def _is_identity(op: str, vector: Tuple[float, float, float]) -> bool:
    return vector == _IDENTITY_VECTOR[op]


def _rotation_axis(vector: Tuple[float, float, float]):
    """The single active axis index of an axis-aligned rotation, or None."""
    active = [i for i, component in enumerate(vector) if component != 0.0]
    return active[0] if len(active) == 1 else None


def _rotate_vector(axis: int, theta: float, vector: Tuple[float, float, float]):
    """Rotate ``vector`` by ``theta`` degrees around coordinate ``axis``."""
    radians = math.radians(theta)
    c, s = math.cos(radians), math.sin(radians)
    x, y, z = vector
    if axis == 0:
        return (x, y * c - z * s, y * s + z * c)
    if axis == 1:
        return (x * c + z * s, y, -x * s + z * c)
    return (x * c - y * s, x * s + y * c, z)


def _affine(op: str, vector: Sequence[float], child: Term) -> Term:
    coords = tuple(Term(_grid(component)) for component in vector)
    return Term(op, coords + (child,))


def _canonical_affine_step(node: Term):
    """One local affine rewrite at ``node``, or None when already canonical.

    Only transformations the rewrite-rule database itself derives (plus
    identity elimination) are performed, so the canonical form stays inside
    the e-classes saturation explores anyway.
    """
    if not is_affine_node(node):
        return None
    vector = _numeric_vector(node)
    if vector is None:
        return None
    op = str(node.op)
    child = node.children[3]
    if _is_identity(op, vector):
        return child

    if is_affine_node(child):
        child_vector = _numeric_vector(child)
        if child_vector is not None:
            child_op = str(child.op)
            grandchild = child.children[3]
            # Fig. 8c: fuse adjacent same-operator layers.
            if child_op == op == "Translate":
                return _affine(op, [a + b for a, b in zip(vector, child_vector)], grandchild)
            if child_op == op == "Scale":
                return _affine(op, [a * b for a, b in zip(vector, child_vector)], grandchild)
            if child_op == op == "Rotate":
                axis = _rotation_axis(vector)
                if axis is not None and axis == _rotation_axis(child_vector):
                    summed = [0.0, 0.0, 0.0]
                    summed[axis] = vector[axis] + child_vector[axis]
                    return _affine(op, summed, grandchild)
            # Fig. 8b: push Translate outward (the orientations with no
            # division, mirroring reorder-scale-translate and
            # reorder-rotate*-translate).
            if op == "Scale" and child_op == "Translate":
                inner = _affine("Scale", vector, grandchild)
                return _affine(
                    "Translate", [s * t for s, t in zip(vector, child_vector)], inner
                )
            if op == "Rotate" and child_op == "Translate":
                axis = _rotation_axis(vector)
                if axis is not None:
                    inner = _affine("Rotate", vector, grandchild)
                    return _affine(
                        "Translate", _rotate_vector(axis, vector[axis], child_vector), inner
                    )
    return None


def _affine_canonical(term: Term) -> Term:
    def step(node: Term) -> Term:
        # Iterate locally: a fused or commuted layer can expose the next
        # opportunity at the same position (e.g. the Translate surfaced by
        # a swap meeting the Translate above it).
        while True:
            rewritten = _canonical_affine_step(node)
            if rewritten is None:
                return node
            node = rewritten

    # Bottom-up with a local fixpoint at each node handles almost every
    # chain in one traversal; the outer loop catches rewrites that expose
    # work *above* an already-visited position.  Termination: every step
    # either shrinks the term or strictly moves a Translate outward past a
    # non-Translate layer, and no step does the reverse.
    for _ in range(term.size() + 8):
        rewritten = term.map_bottom_up(step)
        if rewritten == term:
            return term
        term = rewritten
    return term  # pragma: no cover - unreachable by the termination measure


# -- pass 3: alpha-renaming of bound parameters --------------------------------


def _alpha_rename(term: Term) -> Term:
    def rename(node: Term, env: Dict[str, str], depth: int) -> Term:
        if node.op == "Fun" and len(node.children) >= 2:
            *params, body = node.children
            scope = dict(env)
            renamed_params: List[Term] = []
            level = depth
            for param in params:
                if param.is_leaf and isinstance(param.op, str):
                    canonical = f"{CANONICAL_PARAM_PREFIX}{level}"
                    scope[param.op] = canonical
                    renamed_params.append(Term(canonical))
                    level += 1
                else:  # malformed binder; leave it alone
                    renamed_params.append(rename(param, env, depth))
            return Term("Fun", tuple(renamed_params) + (rename(body, scope, level),))
        if (
            node.op == "Var"
            and len(node.children) == 1
            and node.children[0].is_leaf
            and isinstance(node.children[0].op, str)
        ):
            bound = env.get(node.children[0].op)
            if bound is not None and bound != node.children[0].op:
                return Term("Var", (Term(bound),))
            return node
        if node.is_leaf:
            return node
        return Term(node.op, tuple(rename(child, env, depth) for child in node.children))

    return rename(term, {}, 0)


# -- pass 4: commutative-operand sorting ---------------------------------------


def term_order_key(term: Term) -> tuple:
    """A total-order sort key over terms.

    Numeric leaves order by value, before everything else; symbols and
    composites order by operator text, then recursively by children.  Key
    equality coincides with term equality up to the ``-0.0``/``0.0``
    identification, so a stable sort under this key is deterministic.

    The key has two levels.  The primary level reads every numeral on a
    2-decimal grid — an order of magnitude above the solvers' default 1e-3
    noise tolerance, so scan noise cannot straddle it — which keeps a noisy
    scanned model (the paper's reverse-engineered inputs) in the row-major
    element order of its *latent* grid positions: deciding on exact values
    would let sub-epsilon noise flip near-equal leading coordinates and
    scramble the arithmetic progressions the solvers read off element
    chains.  The secondary level re-reads the whole term exactly (values,
    then int-before-float spelling), so the order stays total and
    input-order independent — sorting is deterministic and idempotent even
    among terms the grid cannot tell apart.
    """
    return (_rounded_key(term), _exact_key(term))


def _rounded_key(term: Term) -> tuple:
    if term.is_number:
        return (0, round(float(term.value), 2))
    return (1, str(term.op), tuple(_rounded_key(child) for child in term.children))


def _exact_key(term: Term) -> tuple:
    if term.is_number:
        return (0, float(term.value), 0 if isinstance(term.op, int) else 1)
    return (1, str(term.op), tuple(_exact_key(child) for child in term.children))


def _flatten_chain(term: Term, op) -> List[Term]:
    """All operands of a nested binary ``op`` application, left to right."""
    operands: List[Term] = []
    stack = [term]
    while stack:
        node = stack.pop()
        if node.op == op and len(node.children) == 2:
            stack.append(node.children[1])
            stack.append(node.children[0])
        else:
            operands.append(node)
    return operands


def _commutative_sort(term: Term) -> Term:
    def sort(node: Term) -> Term:
        if node.op in COMMUTATIVE_OPS and len(node.children) == 2:
            operands = [sort(operand) for operand in _flatten_chain(node, node.op)]
            operands.sort(key=term_order_key)
            result = operands[-1]
            for operand in reversed(operands[:-1]):
                result = Term(node.op, (operand, result))
            return result
        if node.is_leaf:
            return node
        return Term(node.op, tuple(sort(child) for child in node.children))

    return sort(term)


# ---------------------------------------------------------------------------
# The default pipeline
# ---------------------------------------------------------------------------

NUMERIC_LITERALS = NormalizationPass("numeric-literals", _numeric_literals)
AFFINE_CANONICAL = NormalizationPass("affine-canonical", _affine_canonical)
ALPHA_RENAME = NormalizationPass("alpha-rename", _alpha_rename)
COMMUTATIVE_SORT = NormalizationPass("commutative-sort", _commutative_sort)

#: The full pipeline, in the order the module docstring motivates.
DEFAULT_PASSES: Tuple[NormalizationPass, ...] = (
    NUMERIC_LITERALS,
    AFFINE_CANONICAL,
    ALPHA_RENAME,
    COMMUTATIVE_SORT,
)


def normalize(term: Term, passes: Sequence[NormalizationPass] = DEFAULT_PASSES) -> Term:
    """Apply the normalization pipeline (idempotent as a whole)."""
    for normalization_pass in passes:
        term = normalization_pass(term)
    return term
