"""Canonical serialization and content-addressed fingerprints of terms.

The batch synthesis service caches results under a key derived from the
*content* of the input: a canonical, deterministic s-expression rendering of
the flat CSG term, hashed with SHA-256.  Python's built-in ``hash`` cannot
play this role — it is salted per process (``PYTHONHASHSEED``), so a key
minted by one worker would never be found again by another process or a
later run.  The fingerprints here depend only on term structure and are
stable across processes, platforms, and sessions.

Two properties matter and are locked down by ``tests/test_canon.py``:

* **structural determinism** — equal terms (however they were constructed)
  render to the same canonical text and therefore the same fingerprint;
* **exact round-trip** — ``term_from_canonical(canonical_term_text(t)) == t``
  including float values (non-integral floats are rendered with ``repr``,
  which round-trips exactly in Python 3) and the int/float distinction
  (``5`` and ``5.0`` render differently).

One deliberate asymmetry: because Python numeric equality is typeless,
``Term(0) == Term(0.0)`` even though their canonical texts (and hence
fingerprints) differ.  Fingerprint equality coincides with canonical-*text*
equality, which is slightly finer than ``==`` on terms.  That is the safe
direction for a cache key — the int and float spellings of a model render
differently in output programs, so collapsing them could serve a cached
result whose pretty-printed form differs from a fresh run's; keeping them
apart costs at most a spurious miss.

On top of the exact tier sits the *semantic* tier: :func:`semantic_fingerprint`
hashes the term after the :mod:`repro.lang.normal` pipeline has run, so
spellings the normalization passes identify — reordered commutative
operands, alpha-renamed parameters, ``1`` vs ``1.0`` literals, collapsed
affine chains — share one fingerprint.  The result cache consults it only
after the exact key misses (see :mod:`repro.service.cache`), so the exact
tier's behavior is unchanged.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.lang.sexp import format_sexp
from repro.lang.term import Term

#: Width passed to the s-expression printer so canonical text never wraps:
#: the canonical form of a term is always a single line.
_SINGLE_LINE = 10 ** 9


def canonical_term_text(term: Term) -> str:
    """The canonical single-line s-expression rendering of ``term``.

    This is the serialization the disk cache stores and the worker protocol
    ships across process boundaries; it parses back to an equal term via
    :func:`term_from_canonical`.
    """
    return format_sexp(term.to_sexp(), width=_SINGLE_LINE)


def term_from_canonical(text: str) -> Term:
    """Parse a term from its canonical text (inverse of the above)."""
    return Term.parse(text)


def fingerprint_bytes(data: bytes) -> str:
    """Hex SHA-256 digest of raw bytes (the primitive all keys reduce to)."""
    return hashlib.sha256(data).hexdigest()


def fingerprint_text(text: str) -> str:
    """Hex SHA-256 digest of a unicode string (UTF-8 encoded)."""
    return fingerprint_bytes(text.encode("utf-8"))


def term_fingerprint(term: Term) -> str:
    """Content-address of a term: the digest of its canonical text."""
    return fingerprint_text(canonical_term_text(term))


def normalized_term_text(term: Term) -> str:
    """Canonical text of the semantically normalized term.

    The key material of the cache's semantic tier: every spelling the
    :mod:`repro.lang.normal` passes identify renders to this one text.
    """
    from repro.lang.normal import normalize

    return canonical_term_text(normalize(term))


def semantic_fingerprint(term: Term, config) -> str:
    """Content-address of a (term, config) pair modulo normalization.

    ``sha256(normalized text fingerprint : config fingerprint)`` — the same
    shape as the exact cache key, with the term fingerprint replaced by the
    normalized one.  ``config`` is any object with a ``fingerprint()`` of
    its semantic fields (:class:`~repro.core.config.SynthesisConfig`; typed
    loosely so the language layer does not import the core layer).
    """
    return fingerprint_text(
        f"{fingerprint_text(normalized_term_text(term))}:{config.fingerprint()}"
    )


def payload_fingerprint(payload: Any) -> str:
    """Content-address of a JSON-able payload (dicts, lists, scalars).

    Keys are sorted and separators fixed so logically equal payloads hash
    identically regardless of insertion order; used to fold the semantically
    relevant configuration fields into a cache key.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return fingerprint_text(text)
