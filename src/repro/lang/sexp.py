"""S-expression reader and printer.

The paper serializes both CSG inputs and LambdaCAD outputs as s-expressions
(via Janestreet's ``@deriving sexp``).  We use the same concrete syntax so
programs round-trip cleanly:

* an *atom* is a symbol (``Union``, ``Translate``, ``x``), an integer, or a
  float;
* a *list* is a parenthesized, whitespace-separated sequence of s-expressions;
* line comments start with ``;`` and run to end of line.

The reader is hand-written (no dependencies) and reports positions in error
messages.  The printer produces either a compact single-line rendering or a
width-limited pretty rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Union

#: A parsed s-expression: an atom (``str``, ``int``, ``float``) or a nested
#: list of s-expressions.
Sexp = Union[str, int, float, list]


class SexpError(ValueError):
    """Raised when s-expression text cannot be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


_DELIMITERS = "()"
_WHITESPACE = " \t\r\n"


@dataclass
class _Token:
    """A lexical token with its source position."""

    kind: str  # "(", ")", or "atom"
    text: str
    line: int
    column: int


def _tokenize(text: str) -> Iterator[_Token]:
    """Yield tokens from ``text``, tracking line/column for error messages."""
    line = 1
    column = 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
        elif ch in _WHITESPACE:
            column += 1
            i += 1
        elif ch == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif ch in _DELIMITERS:
            yield _Token(ch, ch, line, column)
            column += 1
            i += 1
        else:
            start = i
            start_col = column
            while i < n and text[i] not in _WHITESPACE + _DELIMITERS + ";":
                i += 1
                column += 1
            yield _Token("atom", text[start:i], line, start_col)


def _parse_atom(text: str) -> Sexp:
    """Interpret an atom token as an int, float, or symbol string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_many(text: str) -> list:
    """Parse all s-expressions in ``text`` and return them as a list."""
    results: list = []
    stack: list = []
    last_line = 1
    last_col = 1
    for token in _tokenize(text):
        last_line, last_col = token.line, token.column
        if token.kind == "(":
            stack.append([])
        elif token.kind == ")":
            if not stack:
                raise SexpError("unbalanced ')'", token.line, token.column)
            finished = stack.pop()
            if stack:
                stack[-1].append(finished)
            else:
                results.append(finished)
        else:
            atom = _parse_atom(token.text)
            if stack:
                stack[-1].append(atom)
            else:
                results.append(atom)
    if stack:
        raise SexpError("unbalanced '(': unexpected end of input", last_line, last_col)
    return results


def parse_sexp(text: str) -> Sexp:
    """Parse exactly one s-expression from ``text``.

    Raises :class:`SexpError` when the text is empty, malformed, or contains
    more than one top-level expression.
    """
    results = parse_many(text)
    if not results:
        raise SexpError("empty input")
    if len(results) > 1:
        raise SexpError(f"expected a single s-expression, found {len(results)}")
    return results[0]


def _format_atom(atom: Sexp) -> str:
    if isinstance(atom, bool):
        return "true" if atom else "false"
    if isinstance(atom, float):
        # Render floats without exponent noise where possible; keep integral
        # floats distinguishable from ints (the languages treat both as R).
        if atom == int(atom) and abs(atom) < 1e16:
            # IEEE negative zero compares equal to 0.0 (and hashes the same),
            # so Term(-0.0) == Term(0.0); rendering the sign would give two
            # equal terms distinct canonical texts — and therefore distinct
            # cache fingerprints — violating structural determinism.
            if atom == 0.0:
                return "0.0"
            return f"{atom:.1f}"
        return repr(atom)
    return str(atom)


def format_sexp(sexp: Sexp, *, width: int = 80, indent: int = 0) -> str:
    """Render ``sexp`` back to text.

    The renderer prefers a single line; when a list does not fit in ``width``
    columns, it breaks after the head symbol and indents the arguments by two
    spaces, which matches how the paper typesets its programs.
    """
    flat = _format_flat(sexp)
    if len(flat) + indent <= width:
        return flat
    if not isinstance(sexp, list) or not sexp:
        return flat
    head = _format_flat(sexp[0])
    pad = " " * (indent + 2)
    parts = [
        format_sexp(child, width=width, indent=indent + 2) for child in sexp[1:]
    ]
    body = ("\n" + pad).join(parts)
    return f"({head}\n{pad}{body})"


def _format_flat(sexp: Sexp) -> str:
    if isinstance(sexp, list):
        return "(" + " ".join(_format_flat(child) for child in sexp) + ")"
    return _format_atom(sexp)
