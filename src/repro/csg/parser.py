"""Parsing CSG (and LambdaCAD) programs from s-expression text.

The concrete syntax is shared with LambdaCAD: the parser builds plain
:class:`~repro.lang.term.Term` values and, when asked to parse specifically a
*flat CSG*, checks the result against the CSG grammar of paper Fig. 6.
"""

from __future__ import annotations

from repro.csg.validate import CsgValidationError, validate_flat_csg
from repro.lang.sexp import SexpError, parse_sexp
from repro.lang.term import Term, TermError


class CsgSyntaxError(ValueError):
    """Raised when CSG text cannot be parsed or does not fit the grammar."""


def parse_term(text: str) -> Term:
    """Parse any term (CSG or LambdaCAD) from s-expression text."""
    try:
        return Term.from_sexp(parse_sexp(text))
    except (SexpError, TermError) as exc:
        raise CsgSyntaxError(str(exc)) from exc


def parse_csg(text: str, *, strict: bool = True) -> Term:
    """Parse a flat CSG program.

    With ``strict=True`` (the default), the parsed term must conform to the
    flat CSG grammar — primitives, affine transformations with numeric
    vectors, and binary booleans only.  ``strict=False`` skips the check,
    which is convenient for inputs containing ``External`` placeholders or
    already partially-structured programs.
    """
    term = parse_term(text)
    if strict:
        try:
            validate_flat_csg(term)
        except CsgValidationError as exc:
            raise CsgSyntaxError(str(exc)) from exc
    return term
