"""Structural metrics over terms — the columns of the paper's Table 1.

Table 1 reports, for each benchmark, the number of AST nodes (#i-ns / #o-ns),
the number of 3D primitive shapes (#i-p / #o-p), and the AST depth (#i-d /
#o-d) of the input and output programs.  This module computes those metrics
for any CSG or LambdaCAD term.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.csg.ops import CSG_PRIMITIVES
from repro.lang.term import Term

#: Primitive names counted by the "#p" columns; ``Empty`` is a unit for
#: Union rather than a shape, so it is excluded, matching how the paper
#: counts "3D primitive shapes".
_SHAPE_PRIMITIVES = tuple(name for name in CSG_PRIMITIVES if name != "Empty")


def ast_size(term: Term) -> int:
    """Number of AST nodes (the paper's default cost function)."""
    return term.size()


def ast_depth(term: Term) -> int:
    """Depth of the AST (a leaf counts as depth 1)."""
    return term.depth()


def primitive_count(term: Term) -> int:
    """Number of 3D primitive shape occurrences in the term.

    For structured LambdaCAD programs, a primitive under ``Repeat (p, n)``
    still counts once — that is precisely how the paper's #o-p column shows a
    reduction (e.g. the gear's 63 input primitives become 5 in the output).
    """
    own = 1 if term.is_leaf and term.op in _SHAPE_PRIMITIVES else 0
    return own + sum(primitive_count(child) for child in term.children)


@dataclass(frozen=True)
class TermMetrics:
    """A bundle of the three structural metrics for one program."""

    nodes: int
    primitives: int
    depth: int

    def size_reduction_vs(self, other: "TermMetrics") -> float:
        """Fractional node-count reduction of ``self`` relative to ``other``.

        ``other`` is the *input*; a positive value means ``self`` is smaller.
        """
        if other.nodes == 0:
            return 0.0
        return 1.0 - self.nodes / other.nodes


def measure(term: Term) -> TermMetrics:
    """Compute all Table 1 structural metrics for a term."""
    return TermMetrics(
        nodes=ast_size(term),
        primitives=primitive_count(term),
        depth=ast_depth(term),
    )
