"""Validation of flat CSG terms against the grammar of paper Fig. 6 (right).

A *flat* CSG contains only primitives, affine transformations with literal
numeric vectors, binary boolean operators, and (optionally) ``External``
placeholders.  Anything from the LambdaCAD extension — lists, folds, maps,
functions, variables — makes a term non-flat.
"""

from __future__ import annotations

from repro.csg.ops import AFFINE_OPS, BOOLEAN_OPS, CSG_PRIMITIVES, EXTERNAL_OP
from repro.lang.term import Term


class CsgValidationError(ValueError):
    """Raised when a term is not a well-formed flat CSG."""


def validate_flat_csg(term: Term, *, allow_external: bool = True) -> None:
    """Raise :class:`CsgValidationError` unless ``term`` is flat CSG."""
    op = term.op

    if isinstance(op, (int, float)):
        raise CsgValidationError(
            f"numeric literal {op!r} cannot appear as a solid expression"
        )

    if op in CSG_PRIMITIVES:
        if term.children:
            raise CsgValidationError(f"primitive {op} must not have children")
        return

    if op == EXTERNAL_OP:
        if not allow_external:
            raise CsgValidationError("External placeholders are not allowed here")
        return

    if op in AFFINE_OPS:
        if len(term.children) != 4:
            raise CsgValidationError(
                f"{op} expects 4 arguments (x, y, z, child), got {len(term.children)}"
            )
        for index, child in enumerate(term.children[:3]):
            if not child.is_number:
                raise CsgValidationError(
                    f"{op} argument {index} must be a numeric literal, got {child.op!r}"
                )
        validate_flat_csg(term.children[3], allow_external=allow_external)
        return

    if op in BOOLEAN_OPS:
        if len(term.children) != 2:
            raise CsgValidationError(
                f"{op} expects 2 arguments, got {len(term.children)}"
            )
        for child in term.children:
            validate_flat_csg(child, allow_external=allow_external)
        return

    raise CsgValidationError(f"operator {op!r} is not part of the flat CSG language")


def is_flat_csg(term: Term, *, allow_external: bool = True) -> bool:
    """Boolean form of :func:`validate_flat_csg`."""
    try:
        validate_flat_csg(term, allow_external=allow_external)
    except CsgValidationError:
        return False
    return True
