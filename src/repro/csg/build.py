"""Ergonomic constructors for CSG terms.

These mirror how the paper writes programs (``Translate (125, 0, 0, Tooth)``)
and are used heavily by the benchmark-suite model generators, the examples,
and the tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.lang.term import Term

Number = Union[int, float]


def _num(value: Number) -> Term:
    return Term.num(value)


# -- primitives ---------------------------------------------------------------

def empty() -> Term:
    """The empty solid."""
    return Term("Empty")


def cube() -> Term:
    """The canonical unit cube (``Cube``)."""
    return Term("Cube")


def unit() -> Term:
    """The canonical unit cube under its alternative name (``Unit``)."""
    return Term("Unit")


def cylinder() -> Term:
    """The canonical unit cylinder."""
    return Term("Cylinder")


def sphere() -> Term:
    """The canonical unit sphere."""
    return Term("Sphere")


def hexagon() -> Term:
    """The canonical unit hexagonal prism."""
    return Term("Hexagon")


# -- affine transformations ---------------------------------------------------

def translate(x: Number, y: Number, z: Number, child: Term) -> Term:
    """``Translate (x, y, z, child)``."""
    return Term("Translate", (_num(x), _num(y), _num(z), child))


def scale(x: Number, y: Number, z: Number, child: Term) -> Term:
    """``Scale (x, y, z, child)``."""
    return Term("Scale", (_num(x), _num(y), _num(z), child))


def rotate(x: Number, y: Number, z: Number, child: Term) -> Term:
    """``Rotate (x, y, z, child)`` with angles in degrees."""
    return Term("Rotate", (_num(x), _num(y), _num(z), child))


# -- boolean operators --------------------------------------------------------

def union(left: Term, right: Term) -> Term:
    """``Union (left, right)``."""
    return Term("Union", (left, right))


def diff(left: Term, right: Term) -> Term:
    """``Diff (left, right)`` — left minus right."""
    return Term("Diff", (left, right))


def inter(left: Term, right: Term) -> Term:
    """``Inter (left, right)``."""
    return Term("Inter", (left, right))


def union_all(parts: Sequence[Term]) -> Term:
    """Right-nested union of a sequence of solids.

    This is exactly the shape flat CSG traces have (``Union (a, Union (b,
    Union (c, d)))``) and the shape the Fold-introduction rewrites look for.
    An empty sequence yields ``Empty``; a single element is returned as-is.
    """
    parts = list(parts)
    if not parts:
        return empty()
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = union(part, result)
    return result


def external(name: str = "External") -> Term:
    """A placeholder node for features Szalinski does not interpret."""
    return Term(name)
