"""Pretty-printing of CSG / LambdaCAD terms.

Two renderings are provided: the canonical s-expression form used everywhere
for round-tripping, and an OpenSCAD-like functional notation close to how the
paper typesets programs (``Translate (1, 2, 3, Cube)``), which reads better in
examples and docs.
"""

from __future__ import annotations

from repro.lang.sexp import format_sexp
from repro.lang.term import Term


def format_term(term: Term, *, width: int = 80) -> str:
    """Render a term as an s-expression (the canonical concrete syntax)."""
    return format_sexp(term.to_sexp(), width=width)


def _format_atom(term: Term) -> str:
    if term.is_number:
        value = term.value
        if isinstance(value, float) and value == int(value) and abs(value) < 1e16:
            return f"{value:g}"
        return f"{value}"
    return str(term.op)


def format_openscad_like(term: Term, *, indent: int = 0, width: int = 72) -> str:
    """Render a term in the paper's ``Op (arg, arg, ...)`` notation."""
    if term.is_leaf:
        return _format_atom(term)
    args = [format_openscad_like(c, indent=indent + 2, width=width) for c in term.children]
    single_line = f"{term.op} ({', '.join(args)})"
    if len(single_line) + indent <= width and "\n" not in single_line:
        return single_line
    pad = " " * (indent + 2)
    joined = (",\n" + pad).join(args)
    return f"{term.op}\n{' ' * indent}( {joined})"


def line_count(term: Term, *, width: int = 72) -> int:
    """Number of lines in the OpenSCAD-like rendering.

    The paper quotes program sizes informally in "lines" (a 300-line gear CSG
    becomes a 16-line LambdaCAD program); this helper lets the examples and
    the experiment report make the same comparison.
    """
    return format_openscad_like(term, width=width).count("\n") + 1
