"""The flat CSG input language ("Caddy", paper Fig. 6 right).

Flat CSG programs consist of solid primitives, the three affine
transformations (``Translate``, ``Scale``, ``Rotate`` — all taking a 3-vector
and a child solid), and the binary boolean operators (``Union``, ``Diff``,
``Inter``).  They contain no loops, functions, or variables: a flat CSG is a
single unrolled trace of the structured design Szalinski recovers.

This package provides term constructors, a parser and pretty-printer over the
shared s-expression syntax, structural metrics (the columns of the paper's
Table 1), and validation that a term really is flat CSG.
"""

from repro.csg.ops import (
    AFFINE_OPS,
    BOOLEAN_OPS,
    CSG_PRIMITIVES,
    affine_vector,
    affine_child,
    is_affine,
    is_boolean,
    is_csg_primitive,
)
from repro.csg.build import (
    cube,
    cylinder,
    sphere,
    hexagon,
    empty,
    translate,
    scale,
    rotate,
    union,
    diff,
    inter,
    union_all,
)
from repro.csg.parser import parse_csg, CsgSyntaxError
from repro.csg.pretty import format_term, format_openscad_like
from repro.csg.metrics import ast_size, ast_depth, primitive_count, TermMetrics, measure
from repro.csg.validate import validate_flat_csg, is_flat_csg, CsgValidationError

__all__ = [
    "AFFINE_OPS",
    "BOOLEAN_OPS",
    "CSG_PRIMITIVES",
    "affine_vector",
    "affine_child",
    "is_affine",
    "is_boolean",
    "is_csg_primitive",
    "cube",
    "cylinder",
    "sphere",
    "hexagon",
    "empty",
    "translate",
    "scale",
    "rotate",
    "union",
    "diff",
    "inter",
    "union_all",
    "parse_csg",
    "CsgSyntaxError",
    "format_term",
    "format_openscad_like",
    "ast_size",
    "ast_depth",
    "primitive_count",
    "TermMetrics",
    "measure",
    "validate_flat_csg",
    "is_flat_csg",
    "CsgValidationError",
]
