"""Operator vocabulary of the CSG language and helpers to query terms.

Keeping the operator sets in one place means the rewrite rules, the
determinizer, the evaluators, and the validators all agree on what counts as
an affine transformation, a boolean operator, or a primitive.
"""

from __future__ import annotations

from typing import Tuple

# Affine transformations (each takes three numeric arguments and a child)
# are defined once, by the semantic-normalization layer — its canonical-form
# passes encode their algebra — and re-exported here for the rewrite rules,
# determinizer, evaluators, and validators.
from repro.lang.normal import AFFINE_OPS  # noqa: F401  (re-export)
from repro.lang.term import Term

#: Solid primitives (canonicalized: unit size, at the origin, axis-aligned).
CSG_PRIMITIVES: Tuple[str, ...] = (
    "Empty",
    "Unit",
    "Cube",
    "Cylinder",
    "Sphere",
    "Hexagon",
)

#: Binary boolean (set) operators.
BOOLEAN_OPS: Tuple[str, ...] = ("Union", "Diff", "Inter")

#: Placeholder for features Szalinski does not interpret (Hull, Mirror, ...).
EXTERNAL_OP = "External"


def is_csg_primitive(term: Term) -> bool:
    """True for a leaf term naming a solid primitive."""
    return term.is_leaf and term.op in CSG_PRIMITIVES


def is_affine(term: Term) -> bool:
    """True for ``Translate``/``Scale``/``Rotate`` applications."""
    return term.op in AFFINE_OPS and len(term.children) == 4


def is_boolean(term: Term) -> bool:
    """True for ``Union``/``Diff``/``Inter`` applications."""
    return term.op in BOOLEAN_OPS and len(term.children) == 2


def affine_vector(term: Term) -> Tuple[float, float, float]:
    """The (x, y, z) argument vector of an affine node, as floats."""
    if not is_affine(term):
        raise ValueError(f"not an affine term: {term.op!r}")
    values = []
    for child in term.children[:3]:
        if not child.is_number:
            raise ValueError(
                f"affine argument of {term.op} is not a number: {child.op!r}"
            )
        values.append(float(child.value))
    return (values[0], values[1], values[2])


def affine_child(term: Term) -> Term:
    """The solid being transformed by an affine node."""
    if not is_affine(term):
        raise ValueError(f"not an affine term: {term.op!r}")
    return term.children[3]


def affine_chain(term: Term):
    """Decompose nested affine transformations.

    Returns ``(layers, core)`` where ``layers`` is the outermost-first list of
    ``(op, (x, y, z))`` pairs and ``core`` is the first non-affine descendant.
    The function-inference component works layer by layer over exactly this
    decomposition (paper Section 4.1, "Nested Affine Transformations").
    """
    layers = []
    current = term
    while is_affine(current):
        layers.append((current.op, affine_vector(current)))
        current = affine_child(current)
    return layers, current
