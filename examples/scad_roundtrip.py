#!/usr/bin/env python3
"""Round trip through the whole toolchain: OpenSCAD -> flat CSG -> LambdaCAD -> OpenSCAD/STL.

This mirrors the paper's evaluation setup end to end: a Thingiverse-style
OpenSCAD design with loops is flattened to loop-free CSG (what a mesh
decompiler would give you), Szalinski re-discovers the loops, the result is
validated by unrolling, and finally the program is emitted back to OpenSCAD
and tessellated to an STL mesh for printing.

Run with:  python examples/scad_roundtrip.py
"""

from pathlib import Path

from repro import SynthesisConfig, synthesize, unroll
from repro.csg.metrics import measure
from repro.csg.pretty import format_openscad_like
from repro.geometry.stl import read_stl, write_stl_ascii
from repro.geometry.tessellate import tessellate_csg
from repro.scad.emit import emit_openscad
from repro.scad.flatten import flatten_source
from repro.verify.validate import validate_synthesis

DESIGN = """
// A connector strip: a base plate with 9 evenly spaced pin holes.
pin_count = 9;
difference() {
    cube([100, 20, 8]);
    for (i = [0 : pin_count - 1])
        translate([8 + i * 10.5, 10, -1])
            cylinder(h = 10, r = 2.5);
}
"""


def main() -> None:
    # OpenSCAD -> flat CSG (the paper's flattening translator).
    flat = flatten_source(DESIGN)
    print(f"Flattened OpenSCAD design: {measure(flat).nodes} AST nodes, "
          f"{measure(flat).primitives} primitives")

    # Flat CSG -> LambdaCAD (Szalinski).
    result = synthesize(flat, SynthesisConfig())
    best = result.best_structured() or result.best
    print(f"\nSynthesized ({result.seconds:.2f}s), loops {result.loop_summary()}:")
    print(format_openscad_like(best.term))

    # Validation: unroll and compare.
    report = validate_synthesis(flat, best.term)
    print(f"\nValidation: {'OK' if report.valid else 'FAILED'}")

    # LambdaCAD -> OpenSCAD and STL.
    out_dir = Path("examples/output")
    out_dir.mkdir(parents=True, exist_ok=True)
    scad_path = out_dir / "connector.scad"
    scad_path.write_text(emit_openscad(best.term))
    mesh = tessellate_csg(unroll(best.term))
    stl_path = out_dir / "connector.stl"
    write_stl_ascii(mesh, stl_path)
    round_tripped = read_stl(stl_path)
    print(f"\nWrote {scad_path} and {stl_path}; STL round-trips with "
          f"{len(round_tripped)} triangles.")


if __name__ == "__main__":
    main()
