#!/usr/bin/env python3
"""Handling noisy, mesh-decompiled inputs (paper Section 6.4, Fig. 16).

Flat CSGs produced by mesh decompilers carry floating-point round-off.  This
example runs Szalinski on the paper's noisy three-hexagon model and then on a
clean model perturbed by our decompiler-noise simulator, showing that the
epsilon-tolerant solvers still recover the underlying closed forms.

Run with:  python examples/noisy_decompile.py
"""

from repro import SynthesisConfig, synthesize
from repro.benchsuite.models import fig16_noisy_hexagons, linear_array
from repro.benchsuite.noise import add_decompiler_noise, noise_floor
from repro.csg.build import scale, unit
from repro.csg.metrics import measure
from repro.csg.pretty import format_openscad_like
from repro.verify.validate import validate_synthesis


def main() -> None:
    # Part 1: the paper's decompiled hexagon model (Fig. 16).
    noisy = fig16_noisy_hexagons()
    print(f"Fig. 16 input: {measure(noisy).nodes} nodes, "
          f"noise floor {noise_floor(noisy):.2e}")
    result = synthesize(noisy, SynthesisConfig())
    best = result.best_structured() or result.best
    print(f"Synthesized in {result.seconds:.2f}s; structured rank "
          f"{result.structured_rank()}, {measure(best.term).nodes} nodes:")
    print(format_openscad_like(best.term))
    print()

    # Part 2: take a clean 8-element array, add synthetic decompiler noise at
    # increasing magnitudes, and watch where inference stops recovering the loop.
    clean = linear_array(8, (5.0, 0.0, 0.0), scale(2.0, 3.0, 1.0, unit()))
    for magnitude in (0.0, 1e-4, 5e-4, 2e-3, 1e-2):
        noisy_model = add_decompiler_noise(clean, magnitude=magnitude, seed=11)
        res = synthesize(noisy_model, SynthesisConfig(epsilon=1e-3))
        structured = res.exposes_structure()
        validation = validate_synthesis(noisy_model, res.output_term())
        print(f"noise {magnitude:7.0e}: structure recovered = {structured!s:5} "
              f"(validation {'OK' if validation.valid else 'FAILED'}, "
              f"{res.output_metrics().nodes} nodes)")
    print("\nNoise within the paper's epsilon (1e-3) still yields loops; well "
          "beyond it, Szalinski falls back to (correct) flat output.")


if __name__ == "__main__":
    main()
