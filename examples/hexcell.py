#!/usr/bin/env python3
"""Solution diversity: the hex-cell generator (paper Figs. 18 and 19).

The 2x2 pattern of cells removed from a plate admits two useful structured
descriptions: a doubly-nested loop (best for adding rows/columns) and a
trigonometric one (the centres lie on a circle — best for turning the grid
into a flower pattern).  This example runs Szalinski, shows the candidates it
returns, and then performs both of the paper's edits programmatically:
growing the grid, and generating a 10-cell flower from the trigonometric
form.

Run with:  python examples/hexcell.py
"""

from repro import SynthesisConfig, synthesize, unroll
from repro.benchsuite.models import circular_pattern, fig18_hexcell_plate
from repro.cad.build import add, fold_union, fun, mapi, mul, repeat, sin
from repro.csg.build import diff, scale, translate, unit
from repro.csg.metrics import measure
from repro.csg.pretty import format_openscad_like
from repro.lang.term import Term
from repro.verify.geometric import occupancy_agreement


def trig_hexcell(count: int, step_degrees: float) -> Term:
    """The Fig. 19 program: cells placed by a sine/cosine closed form."""
    cells = mapi(
        fun(
            ("i", "c"),
            translate(
                add(10.0, mul(7.07, sin(add(mul(step_degrees, Term("i")), 315.0)))),
                add(10.0, mul(7.07, sin(add(mul(step_degrees, Term("i")), 225.0)))),
                0.0,
                Term("c"),
            ),
        ),
        repeat(unit(), count),
    )
    plate = scale(20.0, 20.0, 3.0, unit())
    return diff(plate, fold_union(cells))


def main() -> None:
    flat = fig18_hexcell_plate(rows=2, columns=2)
    print("Input: plate with a 2x2 pattern of cells "
          f"({measure(flat).nodes} AST nodes)\n")

    result = synthesize(flat, SynthesisConfig(top_k=5))
    print(f"Top-{len(result.candidates)} candidates ({result.seconds:.2f}s):")
    for candidate in result.candidates:
        marker = "loops" if candidate.has_loops else "flat "
        print(f"  rank {candidate.rank}  cost {candidate.cost:6.1f}  [{marker}]")
    best = result.best_structured() or result.best
    print("\nBest structured candidate:")
    print(format_openscad_like(best.term))

    # Edit 1 (loop form): grow the grid to 2x3 by regenerating with new bounds.
    bigger = fig18_hexcell_plate(rows=2, columns=3)
    print(f"\nEdit 1 - grow the grid to 2x3: {measure(bigger).nodes} nodes of flat CSG "
          "would need hand-editing; in the loop form it is a one-number change.")

    # Edit 2 (trigonometric form): a 10-cell flower pattern (Fig. 19 right).
    flower = trig_hexcell(count=10, step_degrees=36.0)
    flower_flat = unroll(flower)
    print("\nEdit 2 - the trigonometric form turned into a 10-cell flower "
          f"(unrolls to {measure(flower_flat).nodes} nodes).")

    # Sanity-check the flower against an explicitly constructed circular pattern.
    reference = diff(
        scale(20.0, 20.0, 3.0, unit()),
        circular_pattern(10, 7.07, unit(), center=(10.0, 10.0, 0.0)),
    )
    report = occupancy_agreement(flower_flat, reference, resolution=20)
    print(f"Geometric agreement with an explicit circular pattern: "
          f"{report.agreement * 100.0:.1f}%")


if __name__ == "__main__":
    main()
