#!/usr/bin/env python3
"""Drive the batch synthesis service from Python.

Runs a benchsuite selection through :class:`SynthesisService` twice against
the same on-disk cache — cold with two worker processes, then warm — and
streams the structured progress events, e.g.::

    python examples/batch_service.py /tmp/szalinski-cache gear sander dice

The second pass should report every job as a cache hit and finish in
milliseconds.  The equivalent CLI invocation is::

    szalinski batch --bench gear --bench sander --bench dice \\
        --jobs 2 --cache /tmp/szalinski-cache
"""

import sys

from repro.benchsuite.suite import BENCHMARKS, get_benchmark
from repro.benchsuite.table1 import benchmark_jobs
from repro.service import ResultCache, SynthesisService


def run_once(label: str, jobs, cache_dir) -> None:
    service = SynthesisService(
        worker_count=2, cache=ResultCache(cache_dir), on_event=lambda e: print(f"  {e}")
    )
    report = service.run_batch(jobs)
    print(
        f"{label}: {len(report.succeeded)}/{len(report.results)} jobs in "
        f"{report.seconds:.2f}s, cache hit rate {report.hit_rate:.0%}"
    )


def main() -> None:
    if len(sys.argv) < 2:
        print(__doc__)
        raise SystemExit(2)
    cache_dir, names = sys.argv[1], sys.argv[2:]
    selection = [get_benchmark(name) for name in names] if names else BENCHMARKS
    for label in ("cold", "warm"):
        # Fresh jobs per pass: identical content produces identical cache keys.
        jobs, build_failures = benchmark_jobs(selection)
        for failure in build_failures:
            print(f"  could not build {failure.name}: {failure.error_summary()}")
        run_once(label, jobs, cache_dir)


if __name__ == "__main__":
    main()
