#!/usr/bin/env python3
"""The gear case study (paper Figs. 1, 3, 4).

Starting from the ~300-line flat CSG of a 60-tooth spur gear, Szalinski
synthesizes a ~16-line LambdaCAD program whose loop exposes the tooth count.
This example also exercises the rest of the toolchain the paper describes:
the synthesized program is unrolled back to flat CSG (translation
validation), rendered to OpenSCAD, and exported as an STL mesh.

Run with:  python examples/gear.py [tooth_count]
"""

import sys
from pathlib import Path

from repro import SynthesisConfig, synthesize, unroll
from repro.benchsuite.models import gear_model
from repro.csg.metrics import measure
from repro.csg.pretty import format_openscad_like, line_count
from repro.geometry.stl import write_stl_ascii
from repro.geometry.tessellate import tessellate_csg
from repro.scad.emit import emit_openscad
from repro.verify.validate import validate_synthesis


def main() -> None:
    teeth = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    flat = gear_model(teeth=teeth)
    input_metrics = measure(flat)
    print(f"Gear with {teeth} teeth: flat CSG has {input_metrics.nodes} AST nodes, "
          f"{input_metrics.primitives} primitives, ~{line_count(flat)} lines")

    result = synthesize(flat, SynthesisConfig())
    best = result.best_structured() or result.best
    output_metrics = result.output_metrics()

    print(f"\nSynthesized in {result.seconds:.1f}s "
          f"(structured program at rank {result.structured_rank()}):")
    print(format_openscad_like(best.term))
    print(f"\n{output_metrics.nodes} AST nodes (~{line_count(best.term)} lines), "
          f"loops {result.loop_summary()}, functions {result.function_summary()}, "
          f"size reduction {result.size_reduction() * 100.0:.0f}%")

    # Translation validation: unroll and compare against the input.
    report = validate_synthesis(flat, best.term)
    print(f"\nValidation: {'OK' if report.valid else 'FAILED'} "
          f"(exact={report.exact_match}, reorder={report.reorder_match})")

    # The downstream fabrication path: OpenSCAD source and an STL mesh.
    out_dir = Path("examples/output")
    out_dir.mkdir(parents=True, exist_ok=True)
    scad_path = out_dir / f"gear_{teeth}.scad"
    scad_path.write_text(emit_openscad(best.term))
    mesh = tessellate_csg(unroll(best.term), segments=48)
    stl_path = out_dir / f"gear_{teeth}.stl"
    write_stl_ascii(mesh, stl_path, solid_name="szalinski_gear")
    print(f"\nWrote {scad_path} and {stl_path} ({len(mesh)} triangles)")

    # The whole point: retargeting the design is now a one-number edit.
    print("\nTo change the tooth count, edit the single Repeat bound in the "
          "synthesized program — the rotation function follows automatically.")


if __name__ == "__main__":
    main()
