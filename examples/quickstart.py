#!/usr/bin/env python3
"""Quickstart: synthesize a parameterized program for a row of cubes.

This is the running example from Fig. 2 of the paper: the flat CSG is a
union of five unit cubes translated along the x axis; Szalinski recovers the
loop, producing

    Fold (Union, Empty,
      Mapi (Fun (i, c) -> Translate (2 * (i + 1), 0, 0, c),
        Repeat (Unit, 5)))

Run with:  python examples/quickstart.py
"""

from repro import SynthesisConfig, synthesize, unroll
from repro.csg.build import translate, union_all, unit
from repro.csg.pretty import format_openscad_like
from repro.verify.structural import equivalent_modulo_reordering


def main() -> None:
    # 1. Build (or parse) a flat CSG: five cubes spaced 2 units apart.
    flat = union_all([translate(2.0 * (i + 1), 0.0, 0.0, unit()) for i in range(5)])
    print("Input (flat CSG):")
    print(format_openscad_like(flat))
    print()

    # 2. Run Szalinski.  The defaults match the paper: epsilon = 0.001, top-5
    #    candidates, AST-size cost function.
    result = synthesize(flat, SynthesisConfig())

    # 3. Inspect the candidates.
    print(f"Synthesized {len(result.candidates)} candidates in {result.seconds:.2f}s:")
    for candidate in result.candidates:
        marker = "loops" if candidate.has_loops else "flat "
        print(f"  rank {candidate.rank}  cost {candidate.cost:5.1f}  [{marker}]")
    print()

    best = result.best_structured() or result.best
    print("Best structured program:")
    print(format_openscad_like(best.term))
    print()

    # 4. Validate by unrolling the synthesized program back to flat CSG.
    unrolled = unroll(best.term)
    assert equivalent_modulo_reordering(flat, unrolled, epsilon=1e-6)
    print("Validation: the synthesized program unrolls back to the input. OK")
    print(f"Size reduction: {result.size_reduction() * 100.0:.1f}% "
          f"({result.input_metrics().nodes} -> {result.output_metrics().nodes} AST nodes)")


if __name__ == "__main__":
    main()
