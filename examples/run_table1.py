#!/usr/bin/env python3
"""Reproduce Table 1 over the full 16-model benchmark suite.

Prints the same columns as the paper's Table 1 and the two headline
aggregates (average size reduction, fraction of models with structure
exposed).  Expect a few minutes of runtime; pass benchmark names as
arguments to run a subset, e.g.::

    python examples/run_table1.py gear hc-bits dice
"""

import sys

from repro.benchsuite.suite import BENCHMARKS, get_benchmark
from repro.benchsuite.table1 import format_table, run_table1


def main() -> None:
    names = sys.argv[1:]
    benchmarks = [get_benchmark(name) for name in names] if names else BENCHMARKS
    rows = run_table1(benchmarks)
    print(format_table(rows))
    print()
    print("Paper reference points: 64% average size reduction, structure "
          "exposed for 81% of models, every structured program within the "
          "top-5 candidates.")


if __name__ == "__main__":
    main()
