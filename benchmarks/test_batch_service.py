"""Batch synthesis service throughput: workers and the warm cache.

Runs the full 16-model Table 1 suite three ways through the service —
serially in-process, fanned out across worker processes against a fresh
content-addressed cache, and again warm against the populated cache — and
records the measured multi-worker wall-clock speedup plus the warm-cache
hit rate under the ``batch_service`` key of ``BENCH_saturation.json``.

Row parity across all three paths and the 100% warm hit rate are hard
assertions.  The wall-clock *speedup* assertion only arms on machines with
at least two CPU cores: process parallelism cannot beat serial execution on
a single core (this container has one; CI runners have more), and on shared
runners the ratio wobbles — the bench-smoke CI job that runs this file is
non-blocking for that reason.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.benchsuite.table1 import run_table1_batch
from repro.service.cache import ResultCache

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_saturation.json"

#: Wall-clock speedup the worker pool must demonstrate on a multi-core box.
REQUIRED_PARALLEL_SPEEDUP = 1.3

#: A warm cache must beat even the parallel cold run by at least this much.
REQUIRED_WARM_SPEEDUP = 3.0


def _record(payload: dict) -> None:
    existing = {}
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except (OSError, ValueError):
            existing = {}
    existing.update(payload)
    BENCH_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def _mask_seconds(rows):
    return [replace(row, seconds=0.0) for row in rows]


@pytest.mark.figure
def test_batch_service_parallel_speedup_and_warm_cache(tmp_path):
    cpu_count = os.cpu_count() or 1
    worker_count = max(2, min(4, cpu_count))
    cache_dir = tmp_path / "cache"

    start = time.perf_counter()
    serial = run_table1_batch(worker_count=0)
    serial_seconds = time.perf_counter() - start
    assert not serial.failures

    start = time.perf_counter()
    parallel = run_table1_batch(worker_count=worker_count, cache=ResultCache(cache_dir))
    parallel_seconds = time.perf_counter() - start
    assert not parallel.failures
    assert parallel.batch.hit_rate == 0.0

    start = time.perf_counter()
    warm = run_table1_batch(worker_count=worker_count, cache=ResultCache(cache_dir))
    warm_seconds = time.perf_counter() - start
    assert not warm.failures

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    warm_speedup = parallel_seconds / max(warm_seconds, 1e-9)
    _record(
        {
            "batch_service": {
                "models": len(serial.rows),
                "cpu_count": cpu_count,
                "worker_count": worker_count,
                "serial_seconds": serial_seconds,
                "parallel_seconds": parallel_seconds,
                "parallel_speedup": speedup,
                "warm_cache": {
                    "seconds": warm_seconds,
                    "hit_rate": warm.batch.hit_rate,
                    "speedup_vs_cold_parallel": warm_speedup,
                },
            }
        }
    )

    # Correctness gates: identical rows on every path, 100% warm hit rate.
    assert _mask_seconds(parallel.rows) == _mask_seconds(serial.rows)
    assert _mask_seconds(warm.rows) == _mask_seconds(serial.rows)
    assert warm.batch.hit_rate == 1.0
    assert all(result.cached for result in warm.batch.results)

    # Throughput gates.
    assert warm_speedup >= REQUIRED_WARM_SPEEDUP, (
        f"warm cache only {warm_speedup:.1f}x faster than the cold parallel run "
        f"({warm_seconds:.2f}s vs {parallel_seconds:.2f}s)"
    )
    if cpu_count >= 2:
        assert speedup >= REQUIRED_PARALLEL_SPEEDUP, (
            f"{worker_count} workers only {speedup:.2f}x faster than serial "
            f"({parallel_seconds:.2f}s vs {serial_seconds:.2f}s)"
        )
