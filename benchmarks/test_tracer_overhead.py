"""Tracer overhead: the disabled path must be free, the enabled path cheap.

The observability layer (:mod:`repro.obs`) instruments the saturation hot
path — every iteration enters ``search``/``apply``/``rebuild`` spans — so
the *disabled* tracer (the default) must cost nothing measurable.  The
null tracer hands every call site one shared ``_NullSpan`` whose
``__enter__`` returns ``None``: no allocation, no timestamp, no branch
beyond the context-manager protocol itself.

This benchmark pins that claim with numbers recorded under the
``tracer_overhead`` key of ``BENCH_saturation.json``:

* ``null_span_ns`` — micro-benchmarked cost of one disabled span entry;
* ``disabled_overhead_fraction`` — that cost times the spans an
  end-to-end run would enter, as a fraction of the run's wall time.  This
  is the deterministic "disabled tracing < 2%" gate (the CI bench-smoke
  lane re-checks the recorded value): a per-span timer scaled by the real
  span count is immune to the run-to-run noise that makes a direct
  disabled-vs-disabled wall-clock diff meaningless.
* ``enabled_overhead_ratio`` — interleaved min-of-reps wall clock of a
  fully traced run versus the default run, as the advisory cost of
  turning tracing ON (lenient in-test bound; it is not the gated number).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.benchsuite.suite import get_benchmark
from repro.core.config import SynthesisConfig
from repro.core.pipeline import synthesize
from repro.obs.trace import NULL_TRACER, Tracer

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_saturation.json"

#: Fast, deterministic models; the daemon-smoke subset minus the slow ones.
WORKLOAD = ("sander", "soldering", "hc-bits")
REPS = 3

#: The ISSUE's acceptance bound for tracing-off overhead.
DISABLED_OVERHEAD_CEILING = 0.02
#: Lenient advisory bound for tracing-on (wall clock on shared machines).
ENABLED_RATIO_CEILING = 1.5


def _record(payload: dict) -> None:
    existing = {}
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except (OSError, ValueError):
            existing = {}
    existing.update(payload)
    BENCH_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def _null_span_seconds(iterations: int = 200_000) -> float:
    """Seconds per disabled-span entry (enter + exit of the shared null span)."""
    span = NULL_TRACER.span  # the exact attribute lookup call sites pay
    start = time.perf_counter()
    for _ in range(iterations):
        with span("x"):
            pass
    return (time.perf_counter() - start) / iterations


def _run_workload(tracer) -> float:
    start = time.perf_counter()
    for name in WORKLOAD:
        benchmark = get_benchmark(name)
        config = SynthesisConfig(cost_function=benchmark.cost_function)
        synthesize(benchmark.build(), config, tracer=tracer)
    return time.perf_counter() - start


def test_disabled_tracer_overhead_is_negligible():
    # How many spans would an end-to-end traced run of this workload enter?
    spans_per_run = 0
    for name in WORKLOAD:
        benchmark = get_benchmark(name)
        tracer = Tracer()
        config = SynthesisConfig(cost_function=benchmark.cost_function)
        synthesize(benchmark.build(), config, tracer=tracer)
        assert tracer.open_spans == 0
        spans_per_run += len(tracer.export())
    assert spans_per_run > 0

    # Interleave disabled/enabled reps so machine drift hits both equally.
    disabled_times, enabled_times = [], []
    for _ in range(REPS):
        disabled_times.append(_run_workload(None))  # the default path
        enabled_times.append(_run_workload(Tracer()))
    disabled_seconds = min(disabled_times)
    enabled_seconds = min(enabled_times)

    null_span_seconds = _null_span_seconds()
    disabled_overhead_fraction = spans_per_run * null_span_seconds / disabled_seconds
    enabled_overhead_ratio = enabled_seconds / disabled_seconds

    _record(
        {
            "tracer_overhead": {
                "workload": list(WORKLOAD),
                "reps": REPS,
                "spans_per_run": spans_per_run,
                "null_span_ns": null_span_seconds * 1e9,
                "disabled_seconds": disabled_seconds,
                "enabled_seconds": enabled_seconds,
                "disabled_overhead_fraction": disabled_overhead_fraction,
                "enabled_overhead_ratio": enabled_overhead_ratio,
            }
        }
    )

    # The gated claim: with tracing off (the default), the instrumentation's
    # total cost is under 2% of end-to-end wall time.
    assert disabled_overhead_fraction < DISABLED_OVERHEAD_CEILING, (
        f"disabled tracer costs {disabled_overhead_fraction:.2%} "
        f"({spans_per_run} spans x {null_span_seconds * 1e9:.0f}ns "
        f"over {disabled_seconds:.3f}s)"
    )
    # Advisory: even fully enabled, tracing must not dominate the pipeline.
    assert enabled_overhead_ratio < ENABLED_RATIO_CEILING, (
        f"enabled tracing ratio {enabled_overhead_ratio:.3f} "
        f"(disabled {disabled_seconds:.3f}s, enabled {enabled_seconds:.3f}s)"
    )
