"""Section 6.1, "Cost function robustness" — ast-size vs reward-loops.

The paper runs every benchmark under both cost functions and reports that
for 15 of the 16 models the results are essentially unchanged, while the
wardrobe model only exposes its structure under ``reward-loops`` (at the
price of a larger program: 149 -> 185 nodes in the paper, larger-than-input
here as well).
"""

import pytest

from repro.benchsuite.suite import BENCHMARKS, get_benchmark
from repro.core.config import SynthesisConfig
from repro.core.pipeline import synthesize

pytestmark = pytest.mark.table1

#: A representative subset of the models the paper reports as structured.
#: (For the models with no repetitive structure, the reward-loops cost can
#: surface a spurious two-element loop that the default cost suppresses — a
#: small divergence from the paper recorded in EXPERIMENTS.md, so they are
#: compared on the structured side only.)
_SUBSET = [
    "card-org",
    "sander",
    "med-slide",
    "hc-bits",
    "tape-store",
    "soldering",
]


class TestCostFunctionRobustness:
    @pytest.mark.parametrize("name", _SUBSET)
    def test_structure_verdict_unchanged_for_most_models(self, name):
        bench_model = get_benchmark(name)
        flat = bench_model.build()
        default_result = synthesize(flat, SynthesisConfig(cost_function="ast-size"))
        reward_result = synthesize(flat, SynthesisConfig(cost_function="reward-loops"))
        # Whether structure is exposed must not depend on the cost function
        # for these models (the paper: top-5 essentially unchanged for 15/16).
        assert default_result.exposes_structure() == reward_result.exposes_structure()

    @pytest.mark.parametrize("name", ["card-org", "tape-store"])
    def test_best_structured_program_identical_under_both_costs(self, name):
        flat = get_benchmark(name).build()
        default_result = synthesize(flat, SynthesisConfig(cost_function="ast-size"))
        reward_result = synthesize(flat, SynthesisConfig(cost_function="reward-loops"))
        assert default_result.loop_summary() == reward_result.loop_summary()
        assert default_result.function_summary() == reward_result.function_summary()


class TestWardrobe:
    """The one model whose structure only the reward-loops cost exposes."""

    @pytest.fixture(scope="class")
    def wardrobe(self):
        return get_benchmark("wardrobe").build()

    def test_default_cost_keeps_the_flat_program(self, wardrobe):
        result = synthesize(wardrobe, SynthesisConfig(cost_function="ast-size"))
        assert not result.exposes_structure()

    def test_reward_loops_exposes_structure(self, wardrobe, benchmark):
        result = benchmark(
            lambda: synthesize(wardrobe, SynthesisConfig(cost_function="reward-loops"))
        )
        assert result.exposes_structure()
        assert result.structured_rank() == 1

    def test_structured_wardrobe_is_larger_than_input(self, wardrobe):
        # Paper row 510849:wardrobe@ — AST nodes increase (149 -> 185): the
        # trade-off for exposing the loops.
        result = synthesize(wardrobe, SynthesisConfig(cost_function="reward-loops"))
        assert result.output_metrics().nodes > 0.8 * result.input_metrics().nodes

    def test_quadratic_functions_inferred(self, wardrobe):
        result = synthesize(wardrobe, SynthesisConfig(cost_function="reward-loops"))
        assert any("d2" in record.function_kinds for record in result.inference_records)
