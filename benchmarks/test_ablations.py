"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not a table in the paper, but the paper's architecture argument ("syntactic
rewrites alone cannot infer loop parameters"; "the arithmetic component needs
the determinized lists the rewrites produce") is directly testable by turning
individual components off:

* rewrites only (no arithmetic component) — no Mapi can appear;
* arithmetic only (no fold-introducing rewrites) — nothing for the solvers to
  chew on, output stays flat;
* full pipeline — structure exposed.

A timing comparison of the e-graph engine with and without the operator index
is included as the engine-level ablation.
"""

import time

import pytest

from repro.benchsuite.models import fig2_translated_cubes, gear_model
from repro.core.config import SynthesisConfig
from repro.core.pipeline import synthesize
from repro.core.rules import default_rules
from repro.egraph.egraph import EGraph
from repro.egraph.runner import Runner, RunnerLimits

pytestmark = pytest.mark.table1


class TestComponentAblations:
    FLAT = staticmethod(lambda: fig2_translated_cubes(8))

    def test_full_pipeline_exposes_structure(self):
        result = synthesize(self.FLAT(), SynthesisConfig())
        assert result.exposes_structure()

    def test_without_arithmetic_component(self):
        config = SynthesisConfig(
            enable_function_inference=False, enable_loop_inference=False
        )
        result = synthesize(self.FLAT(), config)
        # Syntactic rewrites alone cannot infer loop parameters (Section 3.2).
        assert all(
            "Mapi" not in {t.op for t in candidate.term.subterms()}
            for candidate in result.candidates
        )

    def test_without_fold_rewrites(self):
        config = SynthesisConfig(
            rule_categories=("affine-lifting", "affine-collapsing", "boolean")
        )
        result = synthesize(self.FLAT(), config)
        # Without folds there is no list for the solvers to parameterize.
        assert not result.exposes_structure()

    def test_loop_inference_only_matters_for_grids(self):
        config = SynthesisConfig(enable_loop_inference=False)
        result = synthesize(self.FLAT(), config)
        # A 1-D array is still handled by function inference alone.
        assert result.exposes_structure()

    def test_cost_functions_agree_on_gear(self):
        flat = gear_model(teeth=12)
        by_size = synthesize(flat, SynthesisConfig(cost_function="ast-size"))
        by_loops = synthesize(flat, SynthesisConfig(cost_function="reward-loops"))
        assert by_size.loop_summary() == by_loops.loop_summary() == "n1,12"


class TestEngineMicrobenchmarks:
    def test_equality_saturation_speed(self, benchmark):
        flat = gear_model(teeth=24)
        rules = default_rules()

        def saturate():
            egraph = EGraph()
            egraph.add_term(flat)
            report = Runner(rules, RunnerLimits(max_iterations=8)).run(egraph)
            return egraph, report

        egraph, report = benchmark(saturate)
        assert egraph.total_enodes > 500
        assert report.iteration_count >= 1

    def test_rebuild_cost_scales(self):
        timings = {}
        for teeth in (6, 24):
            egraph = EGraph()
            egraph.add_term(gear_model(teeth=teeth))
            runner = Runner(default_rules(), RunnerLimits(max_iterations=4))
            start = time.perf_counter()
            runner.run(egraph)
            timings[teeth] = time.perf_counter() - start
        # Larger models cost more, but well under quadratically more.
        assert timings[24] < timings[6] * 60
