"""Figure 2 — the running example: five translated cubes become one Mapi.

The paper's workflow figure turns

    Union (Trans (2,0,0,Unit), ... Trans (10,0,0,Unit))

into ``Fold (Union, Empty, Mapi (Fun (i, c) -> Trans (2*(i+1), 0, 0, c),
Repeat (Unit, 5)))``.  The benchmark checks exactly that program shape is the
top candidate and times the end-to-end synthesis.
"""

import pytest

from repro.benchsuite.models import fig2_translated_cubes
from repro.cad.evaluator import unroll
from repro.core.config import SynthesisConfig
from repro.core.pipeline import synthesize
from repro.verify.structural import equivalent_modulo_reordering

pytestmark = pytest.mark.figure


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return synthesize(fig2_translated_cubes(5), SynthesisConfig())

    def test_top_candidate_is_the_mapi_program(self, result):
        best = result.best
        ops = {t.op for t in best.term.subterms()}
        assert {"Fold", "Mapi", "Fun", "Repeat"} <= ops
        assert result.loop_summary() == "n1,5"
        assert result.function_summary() == "d1"

    def test_function_is_two_times_i_plus_one(self, result):
        # Unrolling must reproduce the 2, 4, ..., 10 positions exactly.
        flat = unroll(result.best.term)
        assert equivalent_modulo_reordering(flat, fig2_translated_cubes(5), epsilon=1e-9)

    def test_scales_with_count(self):
        for count in (3, 10, 20):
            result = synthesize(fig2_translated_cubes(count), SynthesisConfig())
            assert result.loop_summary() == f"n1,{count}"

    def test_benchmark_timing(self, benchmark):
        flat = fig2_translated_cubes(5)
        result = benchmark(lambda: synthesize(flat, SynthesisConfig()))
        assert result.exposes_structure()
