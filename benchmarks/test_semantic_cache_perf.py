"""Semantic cache tier: variant warm runs over the full Table 1 suite.

Runs the 16-model suite cold against a fresh content-addressed cache, then
re-runs it over *semantically respelled variants* of every model (renamed
binders, reordered commutative operands, int/float literal flips).  Every
variant must be served from the warm cache at the semantic level — zero
exact hits, 100% hit rate — with rows identical to the cold run, and the
measured warm speedup is recorded under the ``semantic_cache`` key of
``BENCH_saturation.json`` for the CI regression gate.

The hit-rate and row-parity assertions are deterministic; only the
speedup floor depends on wall clock (a cache read versus a full synthesis
run, so the margin is enormous even on shared runners).
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.benchsuite.table1 import run_table1_batch
from repro.benchsuite.variants import semantic_variant
from repro.service.cache import ResultCache

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_saturation.json"

#: Serving respelled inputs from the cache must beat resynthesizing them.
REQUIRED_WARM_SPEEDUP = 3.0


def _record(payload: dict) -> None:
    existing = {}
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except (OSError, ValueError):
            existing = {}
    existing.update(payload)
    BENCH_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def _mask_seconds(rows):
    return [replace(row, seconds=0.0) for row in rows]


@pytest.mark.figure
def test_semantic_cache_serves_variants_warm(tmp_path):
    cache_dir = tmp_path / "cache"

    start = time.perf_counter()
    cold = run_table1_batch(cache=ResultCache(cache_dir))
    cold_seconds = time.perf_counter() - start
    assert not cold.failures
    assert cold.batch.hit_rate == 0.0

    start = time.perf_counter()
    warm = run_table1_batch(cache=ResultCache(cache_dir), mutate=semantic_variant)
    warm_seconds = time.perf_counter() - start
    assert not warm.failures

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    _record(
        {
            "semantic_cache": {
                "models": len(cold.rows),
                "cold_seconds": cold_seconds,
                "variant_warm_seconds": warm_seconds,
                "hit_rate": warm.batch.hit_rate,
                "exact_hits": warm.batch.exact_hits,
                "semantic_hits": warm.batch.semantic_hits,
                "speedup_vs_cold": speedup,
            }
        }
    )

    # Correctness gates: every respelled model is served from the cache at
    # the semantic level (the exact tier cannot see it), and the served
    # rows are byte-identical to the cold run's.
    assert warm.batch.hit_rate == 1.0
    assert warm.batch.exact_hits == 0
    assert warm.batch.semantic_hits == len(cold.rows)
    assert all(r.cache_tier == "semantic" for r in warm.batch.results)
    assert _mask_seconds(warm.rows) == _mask_seconds(cold.rows)

    # Throughput gate.
    assert speedup >= REQUIRED_WARM_SPEEDUP, (
        f"variant warm run only {speedup:.1f}x faster than cold "
        f"({warm_seconds:.2f}s vs {cold_seconds:.2f}s)"
    )
