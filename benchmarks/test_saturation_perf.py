"""Saturation-engine performance: two-phase runner + worklist extraction.

Compares the current engine against a faithful copy of the *seed* engine on
the largest bundled benchmark model (the 60-tooth spur gear, 861 AST nodes)
with the full rule database including the expansive boolean rules:

* **seed loop** — rules run interleaved (each searches and immediately
  applies), node/time limits are checked only once per iteration, and top-k
  extraction is a whole-graph fixpoint that materializes ``Term`` objects
  for every class in every round;
* **two-phase loop** — all rules search a frozen rebuilt graph, matches are
  applied in a batch with limits enforced between applications, a backoff
  scheduler bans rules whose match counts explode, and extraction runs a
  parent-driven worklist over a DAG candidate table.

Both sides get the *same* node budget.  The seed loop cannot actually honor
it — the budget check runs only after a full interleaved iteration, by which
point the expansive rules have blown the graph up several-fold — and it then
pays again during extraction, which scales with the bloated graph.  The
assertions require the two-phase engine to (a) stay within a small factor of
the budget, (b) reach the same best extraction cost, and (c) be at least 2x
faster end to end.  Timings are recorded in ``BENCH_saturation.json`` at the
repository root.

The speedup assertion is this change's acceptance gate and intentionally
runs in the default collection; the measured margin is ~3x, but on a heavily
loaded machine wall-clock ratios can wobble — CI runs this file in a
non-blocking job for that reason.

A second comparison (PR 2) measures the *search phase* alone: the naive
per-rule e-matching sweep vs the compiled-trie incremental matcher
(``Runner(..., incremental=True)``) on search-dominated workloads, recorded
under the ``incremental_search`` key of ``BENCH_saturation.json``.

A third comparison (PR 4) measures the *extraction phase* alone: post-hoc
single-best fixpoints (one :class:`Extractor` worklist per query, the way
the determinizer uses them inside the arithmetic components) vs the
incremental :class:`CostAnalysis` maintained during saturation, which turns
each query into an O(answer) witness walk.  Recorded under the
``extraction`` key of ``BENCH_saturation.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import List, Optional, Tuple

import pytest

from repro.benchsuite.models import gear_model, linear_array
from repro.core.rules import all_rules, default_rules
from repro.csg.build import cube, scale
from repro.egraph.egraph import EGraph
from repro.egraph.extract import CostAnalysis, Extractor, TopKExtractor, ast_size_cost
from repro.egraph.runner import BackoffConfig, Runner, RunnerLimits
from repro.lang.term import Term

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_saturation.json"

#: The speedup the two-phase engine must demonstrate over the seed loop.
REQUIRED_SPEEDUP = 2.0

#: The search-phase speedup the incremental trie matcher must demonstrate
#: over the naive per-rule sweep (PR 2's acceptance gate).
REQUIRED_SEARCH_SPEEDUP = 2.0


# ---------------------------------------------------------------------------
# Frozen copies of the seed engine (the baseline being measured against).
# ---------------------------------------------------------------------------


class SeedRunner:
    """The seed saturation loop: interleaved rules, per-iteration limit checks."""

    def __init__(self, rules, limits: RunnerLimits):
        self.rules = list(rules)
        self.limits = limits

    def run(self, egraph: EGraph) -> str:
        start = time.perf_counter()
        for _ in range(self.limits.max_iterations):
            version_before = egraph.version
            for rule in self.rules:
                rule.run(egraph)  # search + apply, immediately visible to later rules
            egraph.rebuild()
            if egraph.version == version_before:
                return "saturated"
            if egraph.total_enodes > self.limits.max_enodes:
                return "node-limit"
            if time.perf_counter() - start > self.limits.max_seconds:
                return "time-limit"
        return "iteration-limit"


class SeedTopKExtractor:
    """The seed top-k extraction: whole-graph fixpoint over materialized terms."""

    def __init__(self, egraph, cost_function, k=5, max_rounds=1000, roots=None):
        self.egraph = egraph
        self.cost_function = cost_function
        self.k = k
        self.max_rounds = max_rounds
        self._table = {}
        self._restrict = self._reachable(roots) if roots is not None else None
        self._compute()

    def _reachable(self, roots):
        seen, stack = set(), [self.egraph.find(r) for r in roots]
        while stack:
            class_id = stack.pop()
            if class_id in seen:
                continue
            seen.add(class_id)
            for enode in self.egraph.nodes(class_id):
                for arg in enode.args:
                    arg = self.egraph.find(arg)
                    if arg not in seen:
                        stack.append(arg)
        return seen

    def _compute(self):
        for _ in range(self.max_rounds):
            changed = False
            for eclass in self.egraph.classes():
                class_id = self.egraph.find(eclass.id)
                if self._restrict is not None and class_id not in self._restrict:
                    continue
                candidates = {t: c for (c, t) in self._table.get(class_id, [])}
                for enode in eclass.nodes:
                    for cost, term in self._enode_candidates(enode):
                        previous = candidates.get(term)
                        if previous is None or cost < previous:
                            candidates[term] = cost
                ranked = sorted(
                    ((c, t) for t, c in candidates.items()), key=lambda r: r[0]
                )[: self.k]
                if ranked != self._table.get(class_id, []):
                    self._table[class_id] = ranked
                    changed = True
            if not changed:
                break

    def _enode_candidates(self, enode) -> List[Tuple[float, Term]]:
        if not enode.args:
            return [(self.cost_function(enode.op, ()), Term(enode.op))]
        child_lists = []
        for arg in enode.args:
            entries = self._table.get(self.egraph.find(arg))
            if not entries:
                return []
            child_lists.append(entries)
        results = []
        for indices in self._bounded_index_tuples([len(c) for c in child_lists]):
            chosen = [child_lists[i][j] for i, j in enumerate(indices)]
            cost = self.cost_function(enode.op, [c[0] for c in chosen])
            results.append((cost, Term(enode.op, tuple(c[1] for c in chosen))))
        return results

    def _bounded_index_tuples(self, lengths):
        budget, results = self.k - 1, []

        def go(position, remaining, prefix):
            if position == len(lengths):
                results.append(prefix)
                return
            limit = min(lengths[position] - 1, remaining)
            for index in range(limit + 1):
                go(position + 1, remaining - index, prefix + (index,))

        go(0, budget, ())
        return results

    def best_cost(self, class_id) -> Optional[float]:
        entries = self._table.get(self.egraph.find(class_id))
        return entries[0][0] if entries else None


# ---------------------------------------------------------------------------
# Measurement helpers
# ---------------------------------------------------------------------------


def _measure_seed(model: Term, rules, limits: RunnerLimits) -> dict:
    egraph = EGraph()
    root = egraph.add_term(model)
    start = time.perf_counter()
    stop = SeedRunner(rules, limits).run(egraph)
    saturated = time.perf_counter()
    extractor = SeedTopKExtractor(egraph, ast_size_cost, k=5, roots=[root])
    done = time.perf_counter()
    return {
        "engine": "seed",
        "stop_reason": stop,
        "saturate_seconds": saturated - start,
        "extract_seconds": done - saturated,
        "total_seconds": done - start,
        "enodes": egraph.total_enodes,
        "classes": len(egraph),
        "best_cost": extractor.best_cost(root),
    }


def _measure_two_phase(
    model: Term, rules, limits: RunnerLimits, backoff: BackoffConfig
) -> dict:
    egraph = EGraph()
    root = egraph.add_term(model)
    start = time.perf_counter()
    report = Runner(rules, limits, backoff=backoff).run(egraph)
    saturated = time.perf_counter()
    extractor = TopKExtractor(egraph, ast_size_cost, k=5, roots=[root])
    best = extractor.extract_top_k(root)[0]
    done = time.perf_counter()
    return {
        "engine": "two-phase",
        "stop_reason": report.stop_reason.value,
        "saturate_seconds": saturated - start,
        "extract_seconds": done - saturated,
        "total_seconds": done - start,
        "enodes": egraph.total_enodes,
        "classes": len(egraph),
        "best_cost": best.cost,
        "iterations": [
            {
                "index": it.index,
                "matches": sum(it.matches.values()),
                "firings": it.total_firings,
                "banned": it.banned,
                "enodes_after": it.enodes_after,
                "search_seconds": it.search_seconds,
                "apply_seconds": it.apply_seconds,
                "rebuild_seconds": it.rebuild_seconds,
            }
            for it in report.iterations
        ],
    }


def _record(payload: dict) -> None:
    existing = {}
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except (OSError, ValueError):
            existing = {}
    existing.update(payload)
    BENCH_PATH.write_text(json.dumps(existing, indent=2) + "\n")


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------


@pytest.mark.figure
def test_two_phase_engine_at_least_2x_faster_than_seed_loop():
    """Seed loop vs two-phase loop on the gear with an enforced node budget."""
    model = gear_model()
    rules = all_rules()  # includes the expansive boolean rules
    limits = RunnerLimits(max_iterations=12, max_enodes=5_000, max_seconds=30.0)
    backoff = BackoffConfig(match_limit=1_000, ban_length=5)

    seed = _measure_seed(model, rules, limits)
    two_phase = _measure_two_phase(model, rules, limits, backoff)
    speedup = seed["total_seconds"] / max(two_phase["total_seconds"], 1e-9)

    _record(
        {
            "model": "3362402:gear",
            "model_nodes": model.size(),
            "node_budget": limits.max_enodes,
            "seed": seed,
            "two_phase": two_phase,
            "speedup": speedup,
        }
    )

    # Same extraction quality out of both engines.
    assert two_phase["best_cost"] == seed["best_cost"]
    # The seed loop blows straight through the budget (limits are only
    # checked between iterations); the two-phase loop must respect it up to
    # a single application's worth of overshoot.
    assert seed["enodes"] > limits.max_enodes
    assert two_phase["enodes"] <= limits.max_enodes + 100
    assert speedup >= REQUIRED_SPEEDUP, (
        f"two-phase engine only {speedup:.2f}x faster than the seed loop "
        f"(seed {seed['total_seconds']:.2f}s vs {two_phase['total_seconds']:.2f}s)"
    )


@pytest.mark.figure
def test_two_phase_engine_parity_on_default_rules():
    """With the paper's default rule set both engines find the same best."""
    model = gear_model()
    limits = RunnerLimits(max_iterations=8, max_enodes=200_000, max_seconds=60.0)

    seed = _measure_seed(model, default_rules(), limits)
    two_phase = _measure_two_phase(
        model, default_rules(), limits, BackoffConfig()
    )

    _record({"default_rules": {"seed": seed, "two_phase": two_phase}})

    assert two_phase["best_cost"] == seed["best_cost"]
    # No bans expected at the default threshold.
    assert all(not it["banned"] for it in two_phase["iterations"])


# ---------------------------------------------------------------------------
# Incremental e-matching (PR 2): naive sweep vs compiled-trie dirty search
# ---------------------------------------------------------------------------


def _measure_matcher(model: Term, rules, limits, backoff, incremental: bool) -> dict:
    """One saturation run; returns timings with the search phase broken out."""
    egraph = EGraph()
    root = egraph.add_term(model)
    start = time.perf_counter()
    report = Runner(rules, limits, backoff=backoff, incremental=incremental).run(egraph)
    total = time.perf_counter() - start
    best = TopKExtractor(egraph, ast_size_cost, k=5, roots=[root]).extract_top_k(root)[0]
    return {
        "matcher": "incremental-trie" if incremental else "naive",
        "stop_reason": report.stop_reason.value,
        "iterations": len(report.iterations),
        "search_seconds": sum(it.search_seconds for it in report.iterations),
        "total_seconds": total,
        "best_cost": best.cost,
        "enodes": egraph.total_enodes,
        "classes": len(egraph),
        "dirty_profile": [
            {"index": it.index, "dirty": it.dirty_classes, "searched": it.searched_classes,
             "cached": it.cached_matches, "full_sweep": len(it.full_sweep_rules)}
            for it in report.iterations
        ] if incremental else None,
    }


#: Search-phase-dominated workloads: the expansive boolean rules on the
#: largest bundled model (bans keep the graph bounded while search keeps
#: paying for the whole rule database), and the incremental fold rules on a
#: long flat chain (many iterations, each dirtying only the fold frontier).
def _incremental_workloads():
    return [
        (
            "gear-expansive-boolean",
            gear_model(),
            all_rules(),
            RunnerLimits(max_iterations=12, max_enodes=5_000, max_seconds=30.0),
            BackoffConfig(match_limit=1_000, ban_length=5),
        ),
        (
            "chain-folds-80",
            linear_array(80, (3.0, 0.0, 0.0), scale(2.0, 2.0, 2.0, cube())),
            default_rules(),
            RunnerLimits(max_iterations=30, max_enodes=100_000, max_seconds=30.0),
            BackoffConfig(),
        ),
    ]


@pytest.mark.figure
def test_incremental_search_at_least_2x_faster_search_phase():
    """Naive sweep vs incremental trie on search-dominated workloads.

    The acceptance gate for the incremental e-matching subsystem: summed
    over both workloads the search phase must be >= 2x faster, with the
    extracted best costs (and final graph sizes) identical per workload.
    """
    naive_search = trie_search = 0.0
    recorded = {}
    for name, model, rules, limits, backoff in _incremental_workloads():
        naive = _measure_matcher(model, rules, limits, backoff, incremental=False)
        trie = _measure_matcher(model, rules, limits, backoff, incremental=True)
        assert trie["best_cost"] == naive["best_cost"], name
        assert trie["enodes"] == naive["enodes"], name
        assert trie["classes"] == naive["classes"], name
        naive_search += naive["search_seconds"]
        trie_search += trie["search_seconds"]
        recorded[name] = {
            "model_nodes": model.size(),
            "naive": naive,
            "incremental": trie,
            "search_speedup": naive["search_seconds"] / max(trie["search_seconds"], 1e-9),
        }
    speedup = naive_search / max(trie_search, 1e-9)
    _record({"incremental_search": {"workloads": recorded, "search_speedup": speedup}})
    assert speedup >= REQUIRED_SEARCH_SPEEDUP, (
        f"incremental search only {speedup:.2f}x faster "
        f"(naive {naive_search:.3f}s vs trie {trie_search:.3f}s)"
    )


# ---------------------------------------------------------------------------
# Incremental extraction (PR 4): post-hoc fixpoints vs the riding CostAnalysis
# ---------------------------------------------------------------------------

#: The extraction-phase speedup the incremental cost analysis must
#: demonstrate over post-hoc fixpoint extraction (PR 4's acceptance gate).
REQUIRED_EXTRACTION_SPEEDUP = 2.0

#: Single-best queries per saturated graph.  The pipeline's determinizer
#: constructs a fresh Extractor per determinization, so repeated queries —
#: each paying the full fixpoint without the analysis, each an O(answer)
#: walk with it — are the realistic workload.
_EXTRACTION_QUERIES = 5


def _measure_extraction(model: Term, *, incremental: bool) -> dict:
    """Saturate once, then run repeated single-best extraction queries."""
    analysis = CostAnalysis(ast_size_cost)
    egraph = EGraph()
    root = egraph.add_term(model)
    limits = RunnerLimits(max_iterations=12, max_enodes=5_000, max_seconds=30.0)
    backoff = BackoffConfig(match_limit=1_000, ban_length=5)
    saturate_start = time.perf_counter()
    report = Runner(
        all_rules(), limits, backoff=backoff,
        analyses=[analysis] if incremental else [],
    ).run(egraph)
    saturate_seconds = time.perf_counter() - saturate_start

    extract_start = time.perf_counter()
    costs = []
    term = None
    for _ in range(_EXTRACTION_QUERIES):
        extractor = Extractor(egraph, ast_size_cost)
        costs.append(extractor.cost_of(root))
        term = extractor.extract(root)
    extract_seconds = time.perf_counter() - extract_start
    assert len(set(costs)) == 1
    if incremental:
        # Prove the queries actually rode the analysis (no scratch fixpoint).
        assert Extractor(egraph, ast_size_cost)._analysis is analysis
    return {
        "mode": "incremental-analysis" if incremental else "post-hoc-fixpoint",
        "stop_reason": report.stop_reason.value,
        "saturate_seconds": saturate_seconds,
        "extract_seconds": extract_seconds,
        "extraction_queries": _EXTRACTION_QUERIES,
        "analysis_updates": sum(it.analysis_updates for it in report.iterations),
        "enodes": egraph.total_enodes,
        "classes": len(egraph),
        "best_cost": costs[0],
        "best_term_nodes": term.size(),
    }


@pytest.mark.figure
def test_incremental_extraction_at_least_2x_faster_extraction_phase():
    """Post-hoc fixpoint extraction vs the saturation-time cost analysis.

    Both sides saturate the gear identically (the analysis rides along on
    one of them); the extraction phase — repeated single-best queries, as
    the determinizer issues them — must be >= 2x faster with the analysis,
    with identical best costs.  The analysis's saturation overhead is
    recorded alongside so the trade stays honest.
    """
    model = gear_model()
    posthoc = _measure_extraction(model, incremental=False)
    riding = _measure_extraction(model, incremental=True)
    speedup = posthoc["extract_seconds"] / max(riding["extract_seconds"], 1e-9)

    _record(
        {
            "extraction": {
                "model": "3362402:gear",
                "model_nodes": model.size(),
                "post_hoc": posthoc,
                "incremental": riding,
                "extraction_speedup": speedup,
                "saturation_overhead_seconds": (
                    riding["saturate_seconds"] - posthoc["saturate_seconds"]
                ),
            }
        }
    )

    assert riding["best_cost"] == posthoc["best_cost"]
    assert riding["classes"] == posthoc["classes"]
    assert riding["analysis_updates"] > 0
    assert posthoc["analysis_updates"] == 0
    assert speedup >= REQUIRED_EXTRACTION_SPEEDUP, (
        f"incremental extraction only {speedup:.2f}x faster "
        f"(post-hoc {posthoc['extract_seconds']:.3f}s vs "
        f"analysis {riding['extract_seconds']:.3f}s)"
    )


# ---------------------------------------------------------------------------
# Apply-phase dedup (PR 5): re-apply every match vs the applied-match ledger
# ---------------------------------------------------------------------------

#: The apply-phase / end-to-end speedups the dedup ledger must demonstrate
#: on the match-heavy workload (PR 5's acceptance gate).
REQUIRED_APPLY_DEDUP_SPEEDUP = 5.0
REQUIRED_APPLY_DEDUP_E2E_SPEEDUP = 1.5


def _affine_tower_chain(count: int) -> Term:
    """A union chain whose elements are translate∘rotate∘scale towers.

    Every pair of towers feeds the (pure-dynamic) affine reorder/collapse
    rules and the guarded lifting rules, so the match population is large,
    dominated by deduplicable rules, and — because the small-step fold rules
    advance the chain one element per iteration — rediscovered for dozens of
    epochs after it last fired anything.  This is the "8k matches, zero
    firings, yet every match re-instantiated" shape the dedup ledger exists
    for.
    """
    from repro.csg.build import cube, rotate, scale, translate, union

    def element(index: int) -> Term:
        return translate(
            3.0 * index, 0.0, 0.0,
            rotate(0.0, 0.0, 15.0 * index, scale(2.0, 2.0, 2.0, cube())),
        )

    chain = element(count - 1)
    for index in range(count - 2, -1, -1):
        chain = union(element(index), chain)
    return chain


def _small_step_rules():
    """The default rule database minus the big-step chain-fold rules.

    The big-step rule folds a whole chain in one firing; without it the
    syntactic fold-cons rules advance one element per iteration, giving the
    run a long quiescent tail in which every other match is stale — the
    match-heavy regime this benchmark measures.  (The rule mix is otherwise
    the paper's, including the guarded lifting and pure-dynamic reorder /
    collapse rules.)
    """
    return [r for r in default_rules() if not r.name.startswith("fold-chain")]


def _measure_dedup(model: Term, rules, limits: RunnerLimits, *, dedup: bool) -> dict:
    egraph = EGraph()
    root = egraph.add_term(model)
    start = time.perf_counter()
    report = Runner(
        rules, limits, backoff=BackoffConfig(), incremental=True, dedup=dedup
    ).run(egraph)
    total = time.perf_counter() - start
    best = Extractor(egraph, ast_size_cost).cost_of(root)
    zero_firing_late = [
        it for it in report.iterations[1:] if it.total_firings == 0 and sum(it.matches.values()) > 0
    ]
    return {
        "mode": "dedup-ledger" if dedup else "re-apply-everything",
        "stop_reason": report.stop_reason.value,
        "iterations": len(report.iterations),
        "matches": sum(sum(it.matches.values()) for it in report.iterations),
        "applied_matches": sum(it.applied_matches for it in report.iterations),
        "skipped_applications": sum(it.skipped_applications for it in report.iterations),
        "apply_seconds": sum(it.apply_seconds for it in report.iterations),
        "search_seconds": sum(it.search_seconds for it in report.iterations),
        "rebuild_seconds": sum(it.rebuild_seconds for it in report.iterations),
        "total_seconds": total,
        "best_cost": best,
        "enodes": egraph.total_enodes,
        "classes": len(egraph),
        "zero_firing_iterations": len(zero_firing_late),
        "zero_firing_applied": sum(it.applied_matches for it in zero_firing_late),
        "zero_firing_matches": sum(sum(it.matches.values()) for it in zero_firing_late),
        "final_iteration": {
            "matches": sum(report.iterations[-1].matches.values()),
            "firings": report.iterations[-1].total_firings,
            "applied": report.iterations[-1].applied_matches,
            "skipped": report.iterations[-1].skipped_applications,
            "enodes_created": report.iterations[-1].enodes_created,
        },
    }


@pytest.mark.figure
def test_apply_dedup_at_least_5x_faster_apply_phase():
    """Re-apply-everything vs the applied-match ledger on match-heavy runs.

    The acceptance gate for the apply-phase overhaul: on the affine-tower
    chain (the headline match-heavy workload) the apply phase must be >= 5x
    faster and the whole saturation >= 1.5x faster with the ledger on, with
    byte-identical best costs and final graphs, and the late zero-firing
    iterations must perform ~zero instantiations (the final quiescent
    iteration allocates nothing at all).  The gear under the same rule set
    is recorded alongside as a second datapoint.
    """
    limits = RunnerLimits(max_iterations=60, max_enodes=200_000, max_seconds=60.0)
    workloads = {
        "affine-tower-chain-50": _affine_tower_chain(50),
        "gear-small-step": gear_model(),
    }
    rules = _small_step_rules()

    recorded = {}
    for name, model in workloads.items():
        off = _measure_dedup(model, rules, limits, dedup=False)
        on = _measure_dedup(model, rules, limits, dedup=True)
        assert on["best_cost"] == off["best_cost"], name
        assert on["enodes"] == off["enodes"], name
        assert on["classes"] == off["classes"], name
        assert on["stop_reason"] == off["stop_reason"], name
        recorded[name] = {
            "model_nodes": model.size(),
            "off": off,
            "on": on,
            "apply_speedup": off["apply_seconds"] / max(on["apply_seconds"], 1e-9),
            "e2e_speedup": off["total_seconds"] / max(on["total_seconds"], 1e-9),
        }

    headline = recorded["affine-tower-chain-50"]
    _record(
        {
            "apply_dedup": {
                "workloads": recorded,
                "apply_speedup": headline["apply_speedup"],
                "e2e_speedup": headline["e2e_speedup"],
            }
        }
    )

    on = headline["on"]
    # Late zero-firing iterations: thousands of matches, ~zero instantiations.
    assert on["zero_firing_matches"] > 1000
    assert on["zero_firing_applied"] <= on["zero_firing_matches"] * 0.02
    assert on["final_iteration"]["applied"] == 0
    assert on["final_iteration"]["enodes_created"] == 0
    assert on["final_iteration"]["skipped"] == on["final_iteration"]["matches"]

    assert headline["apply_speedup"] >= REQUIRED_APPLY_DEDUP_SPEEDUP, (
        f"apply dedup only {headline['apply_speedup']:.2f}x faster in the apply phase "
        f"(off {headline['off']['apply_seconds']:.3f}s vs on {on['apply_seconds']:.3f}s)"
    )
    assert headline["e2e_speedup"] >= REQUIRED_APPLY_DEDUP_E2E_SPEEDUP, (
        f"apply dedup only {headline['e2e_speedup']:.2f}x faster end to end "
        f"(off {headline['off']['total_seconds']:.3f}s vs on {on['total_seconds']:.3f}s)"
    )
