"""Saturation-engine performance: two-phase runner + worklist extraction.

Compares the current engine against a faithful copy of the *seed* engine on
the largest bundled benchmark model (the 60-tooth spur gear, 861 AST nodes)
with the full rule database including the expansive boolean rules:

* **seed loop** — rules run interleaved (each searches and immediately
  applies), node/time limits are checked only once per iteration, and top-k
  extraction is a whole-graph fixpoint that materializes ``Term`` objects
  for every class in every round;
* **two-phase loop** — all rules search a frozen rebuilt graph, matches are
  applied in a batch with limits enforced between applications, a backoff
  scheduler bans rules whose match counts explode, and extraction runs a
  parent-driven worklist over a DAG candidate table.

Both sides get the *same* node budget.  The seed loop cannot actually honor
it — the budget check runs only after a full interleaved iteration, by which
point the expansive rules have blown the graph up several-fold — and it then
pays again during extraction, which scales with the bloated graph.  The
assertions require the two-phase engine to (a) stay within a small factor of
the budget, (b) reach the same best extraction cost, and (c) be at least 2x
faster end to end.  Timings are recorded in ``BENCH_saturation.json`` at the
repository root.

The speedup assertion is this change's acceptance gate and intentionally
runs in the default collection; the measured margin is ~3x, but on a heavily
loaded machine wall-clock ratios can wobble — CI runs this file in a
non-blocking job for that reason.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import List, Optional, Tuple

import pytest

from repro.benchsuite.models import gear_model
from repro.core.rules import all_rules, default_rules
from repro.egraph.egraph import EGraph
from repro.egraph.extract import TopKExtractor, ast_size_cost
from repro.egraph.runner import BackoffConfig, Runner, RunnerLimits
from repro.lang.term import Term

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_saturation.json"

#: The speedup the two-phase engine must demonstrate over the seed loop.
REQUIRED_SPEEDUP = 2.0


# ---------------------------------------------------------------------------
# Frozen copies of the seed engine (the baseline being measured against).
# ---------------------------------------------------------------------------


class SeedRunner:
    """The seed saturation loop: interleaved rules, per-iteration limit checks."""

    def __init__(self, rules, limits: RunnerLimits):
        self.rules = list(rules)
        self.limits = limits

    def run(self, egraph: EGraph) -> str:
        start = time.perf_counter()
        for _ in range(self.limits.max_iterations):
            version_before = egraph.version
            for rule in self.rules:
                rule.run(egraph)  # search + apply, immediately visible to later rules
            egraph.rebuild()
            if egraph.version == version_before:
                return "saturated"
            if egraph.total_enodes > self.limits.max_enodes:
                return "node-limit"
            if time.perf_counter() - start > self.limits.max_seconds:
                return "time-limit"
        return "iteration-limit"


class SeedTopKExtractor:
    """The seed top-k extraction: whole-graph fixpoint over materialized terms."""

    def __init__(self, egraph, cost_function, k=5, max_rounds=1000, roots=None):
        self.egraph = egraph
        self.cost_function = cost_function
        self.k = k
        self.max_rounds = max_rounds
        self._table = {}
        self._restrict = self._reachable(roots) if roots is not None else None
        self._compute()

    def _reachable(self, roots):
        seen, stack = set(), [self.egraph.find(r) for r in roots]
        while stack:
            class_id = stack.pop()
            if class_id in seen:
                continue
            seen.add(class_id)
            for enode in self.egraph.nodes(class_id):
                for arg in enode.args:
                    arg = self.egraph.find(arg)
                    if arg not in seen:
                        stack.append(arg)
        return seen

    def _compute(self):
        for _ in range(self.max_rounds):
            changed = False
            for eclass in self.egraph.classes():
                class_id = self.egraph.find(eclass.id)
                if self._restrict is not None and class_id not in self._restrict:
                    continue
                candidates = {t: c for (c, t) in self._table.get(class_id, [])}
                for enode in eclass.nodes:
                    for cost, term in self._enode_candidates(enode):
                        previous = candidates.get(term)
                        if previous is None or cost < previous:
                            candidates[term] = cost
                ranked = sorted(
                    ((c, t) for t, c in candidates.items()), key=lambda r: r[0]
                )[: self.k]
                if ranked != self._table.get(class_id, []):
                    self._table[class_id] = ranked
                    changed = True
            if not changed:
                break

    def _enode_candidates(self, enode) -> List[Tuple[float, Term]]:
        if not enode.args:
            return [(self.cost_function(enode.op, ()), Term(enode.op))]
        child_lists = []
        for arg in enode.args:
            entries = self._table.get(self.egraph.find(arg))
            if not entries:
                return []
            child_lists.append(entries)
        results = []
        for indices in self._bounded_index_tuples([len(c) for c in child_lists]):
            chosen = [child_lists[i][j] for i, j in enumerate(indices)]
            cost = self.cost_function(enode.op, [c[0] for c in chosen])
            results.append((cost, Term(enode.op, tuple(c[1] for c in chosen))))
        return results

    def _bounded_index_tuples(self, lengths):
        budget, results = self.k - 1, []

        def go(position, remaining, prefix):
            if position == len(lengths):
                results.append(prefix)
                return
            limit = min(lengths[position] - 1, remaining)
            for index in range(limit + 1):
                go(position + 1, remaining - index, prefix + (index,))

        go(0, budget, ())
        return results

    def best_cost(self, class_id) -> Optional[float]:
        entries = self._table.get(self.egraph.find(class_id))
        return entries[0][0] if entries else None


# ---------------------------------------------------------------------------
# Measurement helpers
# ---------------------------------------------------------------------------


def _measure_seed(model: Term, rules, limits: RunnerLimits) -> dict:
    egraph = EGraph()
    root = egraph.add_term(model)
    start = time.perf_counter()
    stop = SeedRunner(rules, limits).run(egraph)
    saturated = time.perf_counter()
    extractor = SeedTopKExtractor(egraph, ast_size_cost, k=5, roots=[root])
    done = time.perf_counter()
    return {
        "engine": "seed",
        "stop_reason": stop,
        "saturate_seconds": saturated - start,
        "extract_seconds": done - saturated,
        "total_seconds": done - start,
        "enodes": egraph.total_enodes,
        "classes": len(egraph),
        "best_cost": extractor.best_cost(root),
    }


def _measure_two_phase(
    model: Term, rules, limits: RunnerLimits, backoff: BackoffConfig
) -> dict:
    egraph = EGraph()
    root = egraph.add_term(model)
    start = time.perf_counter()
    report = Runner(rules, limits, backoff=backoff).run(egraph)
    saturated = time.perf_counter()
    extractor = TopKExtractor(egraph, ast_size_cost, k=5, roots=[root])
    best = extractor.extract_top_k(root)[0]
    done = time.perf_counter()
    return {
        "engine": "two-phase",
        "stop_reason": report.stop_reason.value,
        "saturate_seconds": saturated - start,
        "extract_seconds": done - saturated,
        "total_seconds": done - start,
        "enodes": egraph.total_enodes,
        "classes": len(egraph),
        "best_cost": best.cost,
        "iterations": [
            {
                "index": it.index,
                "matches": sum(it.matches.values()),
                "firings": it.total_firings,
                "banned": it.banned,
                "enodes_after": it.enodes_after,
                "search_seconds": it.search_seconds,
                "apply_seconds": it.apply_seconds,
                "rebuild_seconds": it.rebuild_seconds,
            }
            for it in report.iterations
        ],
    }


def _record(payload: dict) -> None:
    existing = {}
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except (OSError, ValueError):
            existing = {}
    existing.update(payload)
    BENCH_PATH.write_text(json.dumps(existing, indent=2) + "\n")


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------


@pytest.mark.figure
def test_two_phase_engine_at_least_2x_faster_than_seed_loop():
    """Seed loop vs two-phase loop on the gear with an enforced node budget."""
    model = gear_model()
    rules = all_rules()  # includes the expansive boolean rules
    limits = RunnerLimits(max_iterations=12, max_enodes=5_000, max_seconds=30.0)
    backoff = BackoffConfig(match_limit=1_000, ban_length=5)

    seed = _measure_seed(model, rules, limits)
    two_phase = _measure_two_phase(model, rules, limits, backoff)
    speedup = seed["total_seconds"] / max(two_phase["total_seconds"], 1e-9)

    _record(
        {
            "model": "3362402:gear",
            "model_nodes": model.size(),
            "node_budget": limits.max_enodes,
            "seed": seed,
            "two_phase": two_phase,
            "speedup": speedup,
        }
    )

    # Same extraction quality out of both engines.
    assert two_phase["best_cost"] == seed["best_cost"]
    # The seed loop blows straight through the budget (limits are only
    # checked between iterations); the two-phase loop must respect it up to
    # a single application's worth of overshoot.
    assert seed["enodes"] > limits.max_enodes
    assert two_phase["enodes"] <= limits.max_enodes + 100
    assert speedup >= REQUIRED_SPEEDUP, (
        f"two-phase engine only {speedup:.2f}x faster than the seed loop "
        f"(seed {seed['total_seconds']:.2f}s vs {two_phase['total_seconds']:.2f}s)"
    )


@pytest.mark.figure
def test_two_phase_engine_parity_on_default_rules():
    """With the paper's default rule set both engines find the same best."""
    model = gear_model()
    limits = RunnerLimits(max_iterations=8, max_enodes=200_000, max_seconds=60.0)

    seed = _measure_seed(model, default_rules(), limits)
    two_phase = _measure_two_phase(
        model, default_rules(), limits, BackoffConfig()
    )

    _record({"default_rules": {"seed": seed, "two_phase": two_phase}})

    assert two_phase["best_cost"] == seed["best_cost"]
    # No bans expected at the default threshold.
    assert all(not it["banned"] for it in two_phase["iterations"])
