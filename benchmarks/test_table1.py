"""Table 1 — the main evaluation over the 16-model benchmark suite.

The paper reports, per model, the input/output sizes, primitive counts,
depths, loop structure, function class, synthesis time, and the rank of the
structured program; and in aggregate a 64% average size reduction with
structure exposed for 81% (13/16) of the models.  This harness re-runs the
whole suite and checks those aggregate shapes; per-model rows are printed so
they can be compared side by side with the paper's table (see
EXPERIMENTS.md).
"""

import pytest

from repro.benchsuite.suite import BENCHMARKS, get_benchmark
from repro.benchsuite.table1 import (
    average_size_reduction,
    format_table,
    run_benchmark,
    run_table1,
    structure_exposure_rate,
)

pytestmark = pytest.mark.table1

#: Models the paper reports as exposing structure under the default cost.
_STRUCTURED = [b for b in BENCHMARKS if b.expects_structure]
#: Models with no repetitive structure (output should stay flat).
_UNSTRUCTURED = [b for b in BENCHMARKS if not b.expects_structure]


@pytest.fixture(scope="module")
def table1_rows():
    """Run the full suite once and share the rows across assertions."""
    rows = run_table1()
    print()
    print(format_table(rows))
    return rows


class TestTable1Aggregates:
    def test_average_size_reduction_matches_paper_shape(self, table1_rows, benchmark):
        # Paper: 64% average reduction.  The suite is a re-creation, so we
        # check the shape: a large average reduction, well above 40%.
        reduction = benchmark(average_size_reduction, table1_rows)
        assert reduction >= 0.40

    def test_structure_exposed_for_most_models(self, table1_rows):
        # Paper: 81% (13 of 16).
        rate = structure_exposure_rate(table1_rows)
        assert rate >= 12 / 16

    def test_every_expectation_matches(self, table1_rows):
        mismatched = [row.name for row in table1_rows if not row.matches_expectation]
        assert not mismatched, f"structure expectation mismatches: {mismatched}"

    def test_structured_programs_rank_in_top5(self, table1_rows):
        # Paper: the structured program is always within the top-5 returned.
        ranked = [row for row in table1_rows if row.exposes_structure]
        assert ranked
        assert all(row.rank is not None and row.rank <= 5 for row in ranked)

    def test_output_depth_reduced_on_average(self, table1_rows):
        # Paper: mean output depth drops by ~40%.
        structured_rows = [r for r in table1_rows if r.exposes_structure]
        mean_input = sum(r.input_depth for r in structured_rows) / len(structured_rows)
        mean_output = sum(r.output_depth for r in structured_rows) / len(structured_rows)
        assert mean_output < mean_input

    def test_primitive_counts_reduced(self, table1_rows):
        # Paper: #o-p is ~65% smaller than #i-p on average.
        total_in = sum(r.input_primitives for r in table1_rows)
        total_out = sum(r.output_primitives for r in table1_rows)
        assert total_out < total_in * 0.7

    def test_runtime_bounded(self, table1_rows):
        # Paper: every model finishes within 5 minutes.
        assert all(row.seconds < 300.0 for row in table1_rows)


class TestIndividualRows:
    @pytest.mark.parametrize(
        "name", [b.name for b in _STRUCTURED], ids=[b.name for b in _STRUCTURED]
    )
    def test_structured_models_expose_structure(self, name, table1_rows):
        row = next(r for r in table1_rows if name in r.name)
        assert row.exposes_structure
        assert row.loops != "-"
        assert row.functions != "-"

    @pytest.mark.parametrize(
        "name", [b.name for b in _UNSTRUCTURED], ids=[b.name for b in _UNSTRUCTURED]
    )
    def test_unstructured_models_stay_flat(self, name, table1_rows):
        row = next(r for r in table1_rows if name in r.name)
        assert not row.exposes_structure
        # The paper reports identical (or near identical) sizes for these.
        assert row.output_nodes <= row.input_nodes

    def test_gear_row_shape(self, table1_rows):
        row = next(r for r in table1_rows if "gear" in r.name)
        assert row.loops == "n1,60"
        assert "d1" in row.functions
        assert row.rank == 1
        assert row.size_reduction > 0.85


class TestSingleModelTiming:
    """Per-model timing rows (pytest-benchmark) for a representative subset."""

    @pytest.mark.parametrize("name", ["card-org", "relay-box", "hc-bits"])
    def test_benchmark_single_model(self, benchmark, name):
        bench_model = get_benchmark(name)
        flat = bench_model.build()
        row = benchmark(lambda: run_benchmark(bench_model))
        assert row.exposes_structure == bench_model.expects_structure
