"""End-to-end latency SLO over the daemon-smoke workload.

Runs a real :class:`SynthesisDaemon` on a Unix socket, submits the CI
daemon-smoke model subset twice (cold, then warm — the second pass must be
served from the shared cache), and reads the daemon's ``stats`` frame: the
span-fed latency histograms must report non-zero per-phase percentiles,
and the end-to-end p95 must sit inside the SLO budget.

The measured numbers land under the ``latency_slo`` key of
``BENCH_saturation.json``; the CI bench-smoke gate re-checks
``e2e_p95_seconds <= slo_seconds`` from the recorded artifact.  The SLO
budget is deliberately generous (shared runners), but it is a *hard
ceiling*: a pipeline regression that pushes single-model synthesis past it
fails both this test and the CI gate.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from pathlib import Path

import pytest

from repro.benchsuite.suite import get_benchmark
from repro.csg.pretty import format_term
from repro.service import ResultCache, SynthesisDaemon
from repro.service.protocol import DaemonClient

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_saturation.json"

#: The CI daemon-smoke subset (fast, deterministic models).
WORKLOAD = ("sander", "soldering", "hc-bits", "relay-box", "compose")

#: Per-job end-to-end p95 budget, generous enough for shared CI runners
#: yet far below where a synthesis-pipeline regression would land.
SLO_SECONDS = 30.0

#: Every fresh job must run these phases; their percentiles must be non-zero.
REQUIRED_PHASES = ("job", "parse", "saturate", "extract", "determinize")


def _record(payload: dict) -> None:
    existing = {}
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except (OSError, ValueError):
            existing = {}
    existing.update(payload)
    BENCH_PATH.write_text(json.dumps(existing, indent=2) + "\n")


@pytest.fixture
def sock_dir():
    path = Path(tempfile.mkdtemp(prefix="szslo.", dir="/tmp"))
    yield path
    shutil.rmtree(path, ignore_errors=True)


def test_daemon_smoke_workload_meets_latency_slo(sock_dir):
    specs = [
        {"name": name, "term": format_term(get_benchmark(name).build())}
        for name in WORKLOAD
    ]
    daemon = SynthesisDaemon(
        sock_dir / "d.sock",
        worker_count=2,
        cache=ResultCache(sock_dir / "cache"),
    )
    daemon.start()
    try:
        with DaemonClient(daemon.socket_path, timeout=300.0) as client:
            cold = client.submit_and_wait(specs)
            warm = client.submit_and_wait(specs)
            stats = client.stats()
    finally:
        daemon.shutdown(drain=False)

    assert all(r["status"] == "succeeded" for r in cold), cold
    assert all(r["status"] == "succeeded" for r in warm), warm
    assert all(r["cached"] for r in warm), warm

    latency = stats["latency"]
    assert latency["jobs"]["count"] == 2 * len(WORKLOAD)

    phases = latency["phases"]
    for phase in REQUIRED_PHASES:
        assert phase in phases, f"missing phase series: {phase}"
        assert phases[phase]["count"] >= len(WORKLOAD)
        assert phases[phase]["p50"] > 0.0
        assert phases[phase]["p95"] > 0.0
    # The warm pass hit the cache, so the cache tiers split fresh vs served.
    assert latency["cache_tiers"]["fresh"]["count"] == len(WORKLOAD)
    served = sum(
        stats_["count"]
        for tier, stats_ in latency["cache_tiers"].items()
        if tier != "fresh"
    )
    assert served == len(WORKLOAD)

    e2e_p95 = latency["jobs"]["p95"]
    _record(
        {
            "latency_slo": {
                "workload": list(WORKLOAD),
                "jobs": latency["jobs"]["count"],
                "e2e_p50_seconds": latency["jobs"]["p50"],
                "e2e_p95_seconds": e2e_p95,
                "e2e_p99_seconds": latency["jobs"]["p99"],
                "slo_seconds": SLO_SECONDS,
                "phase_p95_seconds": {
                    phase: phases[phase]["p95"] for phase in REQUIRED_PHASES
                },
            }
        }
    )

    assert e2e_p95 <= SLO_SECONDS, (
        f"end-to-end p95 {e2e_p95:.3f}s exceeds the {SLO_SECONDS:.0f}s SLO"
    )
