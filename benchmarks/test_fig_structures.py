"""Figures 10, 13/14, 16, 17, 18/19 — the structure-inference case studies.

One benchmark class per figure:

* Fig. 10 — nested affine transformations become nested/merged ``Mapi``;
* Fig. 13/14 — m-factorization yields a doubly-nested loop for a 2x2 grid;
* Fig. 16 — decompiler noise is absorbed by the epsilon-tolerant solvers;
* Fig. 17 — the dice's six face gets the 2x3 loop its author wrote out flat;
* Figs. 18/19 — the hex-cell plate admits both a nested-loop and a
  trigonometric description (solution diversity).
"""

import pytest

from repro.benchsuite.models import (
    fig10_nested_affine,
    fig14_grid,
    fig16_noisy_hexagons,
    fig17_dice_six,
    fig18_hexcell_plate,
)
from repro.benchsuite.suite import get_benchmark
from repro.core.analysis import function_kinds
from repro.core.config import SynthesisConfig
from repro.core.loop_inference import m_factorizations, m_index_set
from repro.core.pipeline import synthesize
from repro.verify.validate import validate_synthesis

pytestmark = pytest.mark.figure

_REWARD = SynthesisConfig(cost_function="reward-loops")


class TestFig10NestedAffine:
    def test_triple_nesting_recovered(self, benchmark):
        flat = fig10_nested_affine(3)
        result = benchmark(lambda: synthesize(flat, _REWARD))
        best = result.best_structured().term
        ops = {t.op for t in best.subterms()}
        assert "Mapi" in ops and {"Translate", "Rotate", "Scale"} <= ops
        assert validate_synthesis(flat, best.term if hasattr(best, "term") else best).valid


class TestFig13Fig14Grid:
    def test_m_factorization_matches_paper_example(self):
        # The paper's example: 2-factorizations of 4 after dropping trivial
        # factors are (2, 2), giving index sets [[0,0,1,1],[0,1,0,1]].
        assert m_factorizations(4, 2) == [(2, 2)]
        assert m_index_set((2, 2)) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_grid_nested_loop(self, benchmark):
        flat = fig14_grid(2, 2)
        result = benchmark(lambda: synthesize(flat, _REWARD))
        assert result.loop_summary() == "n2,2,2"
        assert validate_synthesis(flat, result.output_term()).valid

    def test_larger_grid_under_default_cost(self):
        result = synthesize(fig14_grid(3, 4), SynthesisConfig())
        assert result.loop_summary().startswith("n2")


class TestFig16NoisyInput:
    def test_noise_absorbed_and_output_smaller(self, benchmark):
        flat = fig16_noisy_hexagons()
        result = benchmark(lambda: synthesize(flat, SynthesisConfig()))
        # Paper: 55-node input -> 46-node output with a loop, in 0.48 s.
        assert result.output_metrics().nodes <= result.input_metrics().nodes
        assert any(r.kind in ("mapi", "mapi-partial") for r in result.inference_records)
        assert result.seconds < 30.0

    def test_structured_output_validates(self):
        flat = fig16_noisy_hexagons()
        result = synthesize(flat, _REWARD)
        assert result.exposes_structure()
        assert validate_synthesis(flat, result.output_term()).valid


class TestFig17Dice:
    def test_two_by_three_loop(self, benchmark):
        flat = fig17_dice_six()
        result = benchmark(lambda: synthesize(flat, _REWARD))
        assert sorted(int(b) for b in result.loop_summary().split(",")[1:]) == [2, 3]
        assert validate_synthesis(flat, result.output_term()).valid

    def test_table1_dice_model_gets_three_by_three(self):
        # The full dice benchmark (Table 1 row) exposes the 3x3 pip grid.
        result = synthesize(get_benchmark("dice").build(), SynthesisConfig())
        assert result.loop_summary() == "n2,3,3"


class TestFig18Fig19Diversity:
    def test_loop_description(self, benchmark):
        flat = fig18_hexcell_plate()
        result = benchmark(lambda: synthesize(flat, _REWARD))
        assert result.loop_summary() == "n2,2,2"

    def test_trigonometric_description_for_hc_bits(self):
        # The Table 1 hc-bits variant (with decompiler noise) is the one the
        # trigonometric solver wins on.
        result = synthesize(get_benchmark("hc-bits").build(), SynthesisConfig())
        assert result.exposes_structure()
        kinds = function_kinds(result.output_term())
        assert "theta" in kinds
