"""Figures 1, 3, 4 — the gear case study.

The paper's headline example: a ~300-line flat CSG of a 60-tooth gear becomes
a ~16-line LambdaCAD program whose `Mapi` exposes the tooth count; Table 1
reports 621 -> 43 AST nodes, a single loop of 60, a degree-1 closed form, and
rank 1.  The benchmark regenerates that row and additionally sweeps the tooth
count to show synthesis time and output size scale the way the paper's
"AST-depth over 60 in under 5 minutes" claim implies.
"""

import pytest

from repro.benchsuite.models import gear_model
from repro.core.config import SynthesisConfig
from repro.core.pipeline import synthesize
from repro.csg.metrics import measure
from repro.csg.pretty import line_count
from repro.verify.validate import validate_synthesis

pytestmark = pytest.mark.figure


class TestGearFigure:
    @pytest.fixture(scope="class")
    def gear_result(self):
        flat = gear_model(teeth=60)
        return flat, synthesize(flat, SynthesisConfig())

    def test_loop_of_sixty_at_rank_one(self, gear_result):
        _flat, result = gear_result
        assert result.loop_summary() == "n1,60"
        assert result.function_summary() == "d1"
        assert result.structured_rank() == 1

    def test_order_of_magnitude_size_reduction(self, gear_result):
        flat, result = gear_result
        # Paper: 621 -> 43 nodes (93%); ~300 lines -> ~16 lines.
        assert result.size_reduction() > 0.85
        assert line_count(result.output_term()) < line_count(flat) / 5

    def test_primitives_collapse_to_a_handful(self, gear_result):
        _flat, result = gear_result
        # Paper: 63 input primitives -> 5 output primitives.
        assert measure(result.output_term()).primitives <= 6

    def test_translation_validation(self, gear_result):
        flat, result = gear_result
        assert validate_synthesis(flat, result.output_term()).valid

    def test_synthesis_time_under_paper_budget(self, gear_result):
        _flat, result = gear_result
        # Paper: 285 s on their machine; anything under 5 minutes preserves
        # the "under 5 minutes" claim.
        assert result.seconds < 300.0


class TestGearScaling:
    """Output size must stay flat as the tooth count grows (the whole point
    of parameterization), while the flat input grows linearly."""

    @pytest.mark.parametrize("teeth", [12, 24, 48])
    def test_output_size_independent_of_tooth_count(self, teeth):
        result = synthesize(gear_model(teeth=teeth), SynthesisConfig())
        assert result.exposes_structure()
        assert result.loop_summary() == f"n1,{teeth}"
        assert measure(result.output_term()).nodes < 80

    def test_benchmark_gear_24(self, benchmark):
        flat = gear_model(teeth=24)
        result = benchmark(lambda: synthesize(flat, SynthesisConfig()))
        assert result.exposes_structure()
