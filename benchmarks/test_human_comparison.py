"""Section 6.2 — comparison against human-written models.

The paper's claim: for every model whose human-written OpenSCAD used loops,
Szalinski infers the same loop from the flat trace; for the dice it infers a
loop the human author wrote out by hand.  The comparison here uses the
structured LambdaCAD references in :mod:`repro.benchsuite.human`.
"""

import pytest

from repro.benchsuite.human import human_reference
from repro.benchsuite.models import fig17_dice_six
from repro.cad.evaluator import unroll
from repro.core.config import SynthesisConfig
from repro.core.pipeline import synthesize
from repro.verify.structural import equivalent_modulo_reordering
from repro.verify.validate import validate_synthesis

pytestmark = pytest.mark.table1


class TestSameLoopsAsHumans:
    @pytest.mark.parametrize("name,bounds", [("gear", (60,)), ("tape-store", (10,))])
    def test_same_loop_bound_as_human(self, name, bounds):
        reference = human_reference(name)
        result = synthesize(reference.flat, SynthesisConfig())
        assert result.exposes_structure()
        summary = result.loop_summary()
        assert summary == f"n1,{bounds[0]}"

    def test_synthesized_program_equals_human_geometry(self, benchmark):
        # Both the synthesized program and the human-written one must unroll
        # to the same flat trace (the synthesized one may place the affine
        # transformations in a different but equivalent order, so the
        # comparison goes through the shared flat input and geometry).
        reference = human_reference("gear")
        result = benchmark(lambda: synthesize(reference.flat, SynthesisConfig()))
        assert validate_synthesis(reference.flat, result.output_term()).valid
        assert validate_synthesis(reference.flat, reference.structured).valid

    def test_hexcell_human_nested_loop_matched(self):
        reference = human_reference("hc-bits")
        result = synthesize(
            reference.flat, SynthesisConfig(cost_function="reward-loops")
        )
        assert result.exposes_structure()
        assert "2,2" in result.loop_summary()


class TestBeyondHumans:
    def test_dice_face_loop_that_the_human_did_not_write(self):
        # The human-written dice face is flat; Szalinski finds the 2x3 loop.
        reference = human_reference("dice-six")
        assert reference.loop_bounds == ()
        result = synthesize(
            fig17_dice_six(), SynthesisConfig(cost_function="reward-loops")
        )
        assert result.exposes_structure()
        assert sorted(int(b) for b in result.loop_summary().split(",")[1:]) == [2, 3]
