"""Section 6.4 — handling noisy (mesh-decompiled) inputs.

The paper fixes epsilon at 0.001 and reports that structure is still
recovered from decompiler output.  This benchmark sweeps the injected noise
magnitude around that tolerance: inside it, loops are recovered and the
output stays valid; far beyond it, Szalinski degrades gracefully to a
(correct) flat program rather than inventing wrong structure.
"""

import pytest

from repro.benchsuite.models import gear_model, linear_array
from repro.benchsuite.noise import add_decompiler_noise
from repro.csg.build import scale, unit
from repro.core.config import SynthesisConfig
from repro.core.pipeline import synthesize
from repro.verify.validate import validate_synthesis

pytestmark = pytest.mark.table1


def _noisy_array(magnitude: float):
    clean = linear_array(8, (5.0, 0.0, 0.0), scale(2.0, 3.0, 1.0, unit()))
    return add_decompiler_noise(clean, magnitude=magnitude, seed=11)


class TestNoiseWithinTolerance:
    @pytest.mark.parametrize("magnitude", [0.0, 1e-5, 1e-4, 5e-4])
    def test_structure_recovered(self, magnitude):
        flat = _noisy_array(magnitude)
        result = synthesize(flat, SynthesisConfig(epsilon=1e-3))
        assert result.exposes_structure()
        assert result.loop_summary() == "n1,8"
        assert validate_synthesis(flat, result.output_term(), epsilon=2e-3).valid

    def test_noisy_gear(self, benchmark):
        flat = add_decompiler_noise(gear_model(teeth=24), magnitude=4e-4, seed=3)
        result = benchmark(lambda: synthesize(flat, SynthesisConfig(epsilon=1e-3)))
        assert result.exposes_structure()
        assert result.loop_summary() == "n1,24"


class TestNoiseBeyondTolerance:
    @pytest.mark.parametrize("magnitude", [5e-2])
    def test_graceful_degradation(self, magnitude):
        flat = _noisy_array(magnitude)
        result = synthesize(flat, SynthesisConfig(epsilon=1e-3))
        # Whatever is produced must still be equivalent to the input; if no
        # closed form fits within epsilon the output simply stays flat.
        assert validate_synthesis(flat, result.output_term(), epsilon=1e-6).valid or \
            not result.exposes_structure()

    def test_widening_epsilon_recovers_structure(self):
        flat = _noisy_array(5e-3)
        strict = synthesize(flat, SynthesisConfig(epsilon=1e-3))
        loose = synthesize(flat, SynthesisConfig(epsilon=2e-2))
        assert loose.exposes_structure()
        # The strict run may or may not expose structure; the loose run must.
        assert loose.structured_rank() is not None
