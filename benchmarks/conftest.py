"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation (Section 6); see EXPERIMENTS.md for the experiment index and for
the paper-vs-measured comparison.  ``pytest-benchmark`` provides the timing
machinery; the assertions in each benchmark check the *shape* of the paper's
result (who wins, what structure is recovered), not absolute numbers.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest

from repro.core.config import SynthesisConfig


@pytest.fixture
def paper_config() -> SynthesisConfig:
    """The configuration matching the paper's evaluation setup."""
    return SynthesisConfig(epsilon=1e-3, top_k=5)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "table1: benchmarks reproducing rows of Table 1"
    )
    config.addinivalue_line(
        "markers", "figure: benchmarks reproducing figure examples"
    )
