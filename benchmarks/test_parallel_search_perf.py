"""Parallel saturation: multi-core e-matching vs the serial trie matcher.

PR 9's acceptance gate.  Runs search-dominated saturation workloads — the
expansive boolean rules on the 60-tooth gear (backoff bans keep the graph
bounded while search keeps paying for the whole rule database) and a long
affine-tower union chain (a large, repeatedly re-discovered match
population) — once serially (``search_workers=0``) and once with one
search worker per core, and compares the summed **search-phase** seconds.

Three things are recorded under the ``parallel_search`` key of
``BENCH_saturation.json``:

* the per-workload search/total seconds for both configurations plus the
  dispatch counters (parallel epochs, partitions, fallbacks),
* the summed search-phase speedup,
* the host's ``cpu_count`` — the CI regression gate applies its floor
  only when the measuring runner actually had >= 2 cores.

Correctness is asserted **unconditionally**: identical stop reasons, match
schedules, final graph sizes, and best extraction costs on every host,
single-core included (there the pool degenerates to one worker process
and the speedup assertion is skipped — IPC overhead with nothing to
overlap it is expected to lose).  The ``search_workers=0`` configuration
is additionally pinned to have created no pool at all: the feature costs
nothing when it is off.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict

import pytest

from repro.benchsuite.models import gear_model
from repro.core.rules import all_rules
from repro.csg.build import cube, rotate, scale, translate, union
from repro.egraph.egraph import EGraph
from repro.egraph.extract import Extractor, ast_size_cost
from repro.egraph.runner import BackoffConfig, Runner, RunnerLimits
from repro.lang.term import Term

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_saturation.json"

#: Search-phase floor the parallel fleet must clear at workers == cores on
#: a multi-core host.  (The CI regression gate re-checks a slightly lower
#: floor so shared-runner noise cannot flip an advisory job.)
REQUIRED_PARALLEL_SEARCH_SPEEDUP = 1.5


def _affine_tower_chain(count: int) -> Term:
    """A union chain of translate∘rotate∘scale towers (cf. the apply-dedup
    benchmark): a large affine match population rediscovered every epoch."""

    def element(index: int) -> Term:
        return translate(
            3.0 * index, 0.0, 0.0,
            rotate(0.0, 0.0, 15.0 * index, scale(2.0, 2.0, 2.0, cube())),
        )

    chain = element(0)
    for index in range(1, count):
        chain = union(chain, element(index))
    return chain


def _workloads():
    return [
        (
            "gear-expansive-boolean",
            gear_model(),
            all_rules(),
            RunnerLimits(max_iterations=12, max_enodes=5_000, max_seconds=60.0),
            BackoffConfig(match_limit=1_000, ban_length=5),
        ),
        (
            "affine-tower-24",
            _affine_tower_chain(24),
            all_rules(),
            RunnerLimits(max_iterations=10, max_enodes=20_000, max_seconds=60.0),
            BackoffConfig(match_limit=2_000, ban_length=5),
        ),
    ]


def _measure(model, rules, limits, backoff, workers: int) -> Dict:
    egraph = EGraph()
    root = egraph.add_term(model)
    runner = Runner(
        rules, limits, backoff=backoff, incremental=True, search_workers=workers
    )
    started = time.perf_counter()
    report = runner.run(egraph)
    total = time.perf_counter() - started
    best = Extractor(egraph, ast_size_cost).extract(root)
    return {
        "workers": workers,
        "search_seconds": sum(it.search_seconds for it in report.iterations),
        "total_seconds": total,
        "iterations": len(report.iterations),
        "stop": str(report.stop_reason),
        "matches": [it.matches for it in report.iterations],
        "enodes": egraph.total_enodes,
        "classes": len(egraph),
        "best_cost": best.size(),
        "parallel_epochs": sum(it.parallel_search_epochs for it in report.iterations),
        "fallback_epochs": sum(it.fallback_epochs for it in report.iterations),
        "partitions": sum(len(it.partition_seconds) for it in report.iterations),
    }


def _record(payload: dict) -> None:
    existing = {}
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except ValueError:
            existing = {}
    existing.update(payload)
    BENCH_PATH.write_text(json.dumps(existing, indent=2) + "\n")


@pytest.mark.figure
def test_parallel_search_speedup_at_workers_equals_cores():
    cores = os.cpu_count() or 1
    workers = max(1, cores)

    serial_search = parallel_search = 0.0
    recorded = {}
    for name, model, rules, limits, backoff in _workloads():
        serial = _measure(model, rules, limits, backoff, workers=0)
        parallel = _measure(model, rules, limits, backoff, workers=workers)

        # Byte-identical semantics on every host, regardless of core count:
        # same per-iteration match schedule (hence same scheduler bans),
        # same stop reason, same final graph, same best extraction cost.
        for key in ("stop", "matches", "iterations", "enodes", "classes", "best_cost"):
            assert parallel[key] == serial[key], (name, key)
        # The serial configuration must never have built a pool...
        assert serial["parallel_epochs"] == 0 and serial["partitions"] == 0, name
        # ...and the parallel one must have actually dispatched.
        assert parallel["parallel_epochs"] > 0, (name, parallel)

        serial_search += serial["search_seconds"]
        parallel_search += parallel["search_seconds"]
        recorded[name] = {
            "model_nodes": model.size(),
            "serial": serial,
            "parallel": parallel,
            "search_speedup": serial["search_seconds"]
            / max(parallel["search_seconds"], 1e-9),
        }

    speedup = serial_search / max(parallel_search, 1e-9)
    _record(
        {
            "parallel_search": {
                "cpu_count": cores,
                "workers": workers,
                "workloads": recorded,
                "serial_search_seconds": serial_search,
                "parallel_search_seconds": parallel_search,
                "search_speedup": speedup,
            }
        }
    )
    if cores >= 2:
        assert speedup >= REQUIRED_PARALLEL_SEARCH_SPEEDUP, (
            f"parallel search only {speedup:.2f}x faster at {workers} workers "
            f"(serial {serial_search:.3f}s vs parallel {parallel_search:.3f}s)"
        )
