"""Tests for the ``szalinski`` command-line interface."""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.cli import _config_from_args, build_parser, main
from repro.csg.build import translate, union_all, unit
from repro.csg.pretty import format_term


@pytest.fixture
def csg_file(tmp_path):
    flat = union_all([translate(2.0 * (i + 1), 0, 0, unit()) for i in range(4)])
    path = tmp_path / "cubes.csg"
    path.write_text(format_term(flat))
    return path


@pytest.fixture
def scad_file(tmp_path):
    path = tmp_path / "design.scad"
    path.write_text(
        "difference() { cube([30, 10, 5]); for (i = [0:2]) translate([5 + i*10, 5, -1]) cylinder(h=8, r=2); }"
    )
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_options(self):
        args = build_parser().parse_args(
            ["--epsilon", "0.01", "--top-k", "3", "--cost", "reward-loops", "list"]
        )
        assert args.epsilon == 0.01
        assert args.top_k == 3
        assert args.cost == "reward-loops"

    def test_bench_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "not-a-benchmark"])

    def test_engine_knobs_thread_into_the_config(self):
        args = build_parser().parse_args(
            [
                "--rewrite-iterations", "7",
                "--max-enodes", "12345",
                "--max-seconds", "9.5",
                "--no-incremental",
                "--rules", "folds,boolean,boolean-expansive",
                "list",
            ]
        )
        config = _config_from_args(args)
        assert config.rewrite_iterations == 7
        assert config.max_enodes == 12345
        assert config.max_seconds == 9.5
        assert config.incremental_search is False
        assert config.rule_categories == ("folds", "boolean", "boolean-expansive")

    def test_engine_knob_defaults_match_synthesis_config(self):
        from repro.core.config import SynthesisConfig

        args = build_parser().parse_args(["list"])
        assert _config_from_args(args) == SynthesisConfig()

    def test_rules_rejects_unknown_category(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--rules", "folds,not-a-category", "list"])

    def test_rules_plus_syntax_extends_the_defaults(self):
        from repro.core.config import SynthesisConfig

        args = build_parser().parse_args(["--rules", "+boolean-expansive", "list"])
        config = _config_from_args(args)
        assert config.rule_categories == (
            SynthesisConfig().rule_categories + ("boolean-expansive",)
        )

    def test_rules_rejects_mixed_replace_and_extend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--rules", "folds,+boolean-expansive", "list"])

    def test_batch_options(self):
        args = build_parser().parse_args(
            ["batch", "a.csg", "--bench", "gear", "--jobs", "3",
             "--cache", "/tmp/c", "--timeout", "2.5"]
        )
        assert args.inputs == ["a.csg"]
        assert args.bench == ["gear"]
        assert args.jobs == 3
        assert args.cache == "/tmp/c"
        assert args.timeout == 2.5
        assert args.cache_max_mb is None

    def test_topk_alias_threads_into_the_config(self):
        args = build_parser().parse_args(["--topk", "7", "list"])
        assert args.top_k == 7
        assert _config_from_args(args).top_k == 7

    def test_no_incremental_extraction_threads_into_the_config(self):
        args = build_parser().parse_args(["--no-incremental-extraction", "list"])
        config = _config_from_args(args)
        assert config.incremental_extraction is False
        # The knob is schedule-only: it must not change the cache identity.
        assert config.fingerprint() == _config_from_args(
            build_parser().parse_args(["list"])
        ).fingerprint()

    def test_no_apply_dedup_threads_into_the_config(self):
        args = build_parser().parse_args(["--no-apply-dedup", "list"])
        config = _config_from_args(args)
        assert config.apply_dedup is False
        # Schedule-only knob: it must not change the cache identity.
        assert config.fingerprint() == _config_from_args(
            build_parser().parse_args(["list"])
        ).fingerprint()

    def test_persistent_workers_flag_parses_on_batch_and_table1(self):
        args = build_parser().parse_args(["batch", "a.csg", "--persistent-workers"])
        assert args.persistent_workers is True
        args = build_parser().parse_args(["table1", "--jobs", "2", "--persistent-workers"])
        assert args.persistent_workers is True
        args = build_parser().parse_args(["table1"])
        assert args.persistent_workers is False

    def test_semantic_cache_flags_parse(self):
        from repro.cli import _build_cache

        args = build_parser().parse_args(
            ["batch", "a.csg", "--cache", "/tmp/c", "--no-semantic-cache"]
        )
        assert args.no_semantic_cache is True
        assert _build_cache(args).semantic is False
        args = build_parser().parse_args(["batch", "a.csg", "--cache", "/tmp/c"])
        assert args.no_semantic_cache is False
        assert _build_cache(args).semantic is True
        args = build_parser().parse_args(
            ["table1", "--semantic-variants", "--no-semantic-cache"]
        )
        assert args.semantic_variants is True and args.no_semantic_cache is True
        assert build_parser().parse_args(["table1"]).semantic_variants is False

    def test_run_is_an_alias_for_synth(self):
        args = build_parser().parse_args(["run", "model.csg"])
        assert args.input == "model.csg"

    def test_cache_max_mb_option(self):
        from repro.cli import _build_cache

        args = build_parser().parse_args(
            ["batch", "a.csg", "--cache", "/tmp/c", "--cache-max-mb", "1.5"]
        )
        assert args.cache_max_mb == 1.5
        cache = _build_cache(args)
        assert cache.max_bytes == int(1.5 * 1024 * 1024)

    def test_cache_max_mb_rejects_non_positive(self):
        from repro.cli import _build_cache

        args = build_parser().parse_args(
            ["batch", "a.csg", "--cache", "/tmp/c", "--cache-max-mb", "0"]
        )
        with pytest.raises(SystemExit):
            _build_cache(args)

    def test_cache_max_mb_requires_cache(self):
        from repro.cli import _build_cache

        args = build_parser().parse_args(["batch", "a.csg", "--cache-max-mb", "8"])
        with pytest.raises(SystemExit, match="requires --cache"):
            _build_cache(args)


class TestCommands:
    def test_synth_prints_candidates(self, csg_file, capsys):
        exit_code = main(["synth", str(csg_file), "--validate"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "rank 1" in captured
        assert "Mapi" in captured
        assert "validation: OK" in captured

    def test_synth_reports_loops_and_reduction(self, csg_file, capsys):
        main(["synth", str(csg_file)])
        captured = capsys.readouterr().out
        assert "loops n1,4" in captured
        assert "size reduction" in captured

    def test_flatten_outputs_flat_csg(self, scad_file, capsys):
        exit_code = main(["flatten", str(scad_file)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert captured.strip().startswith("(Diff")
        assert "Cylinder" in captured

    def test_list_names_all_benchmarks(self, capsys):
        exit_code = main(["list"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "gear" in captured and "wardrobe" in captured
        assert len([line for line in captured.splitlines() if line.strip()]) == 16

    def test_bench_runs_single_model(self, capsys):
        exit_code = main(["bench", "relay-box"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "relay-box" in captured
        assert "average size reduction" in captured

    def test_bench_isolates_a_crashing_model(self, capsys, monkeypatch):
        import repro.cli as cli_module
        from repro.benchsuite.suite import get_benchmark

        def explode():
            raise RuntimeError("synthetic builder crash")

        broken = dataclasses.replace(get_benchmark("relay-box"), build=explode)
        monkeypatch.setattr(cli_module, "get_benchmark", lambda name: broken)
        exit_code = main(["bench", "relay-box"])
        captured = capsys.readouterr().out
        assert exit_code == 1
        assert "FAILED relay-box" in captured
        assert "synthetic builder crash" in captured
        # The failure is a summary line, not a dumped traceback.
        assert "Traceback" not in captured


class TestBatchCommand:
    @pytest.fixture
    def csg_files(self, tmp_path):
        paths = []
        for n in (3, 4):
            flat = union_all([translate(2.0 * (i + 1), 0, 0, unit()) for i in range(n)])
            path = tmp_path / f"chain{n}.csg"
            path.write_text(format_term(flat))
            paths.append(str(path))
        return paths

    def test_batch_requires_inputs(self, capsys):
        exit_code = main(["batch"])
        assert exit_code == 2
        assert "nothing to do" in capsys.readouterr().out

    def test_batch_runs_files_and_reports(self, csg_files, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        exit_code = main(["batch", *csg_files, "--report", str(report_path)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "ok     chain3" in captured and "ok     chain4" in captured
        assert "2/2 jobs succeeded" in captured
        payload = json.loads(report_path.read_text())
        assert payload["succeeded"] == 2 and payload["failed"] == 0

    def test_batch_warm_cache_serves_every_job(self, csg_files, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["batch", *csg_files, "--cache", cache_dir]) == 0
        capsys.readouterr()
        assert main(["batch", *csg_files, "--cache", cache_dir]) == 0
        captured = capsys.readouterr().out
        assert "[cache-hit]" in captured
        assert "2 from cache (2 exact, 0 semantic; 100% hit rate)" in captured

    def _respelled(self, csg_files, tmp_path):
        """The same designs, spelled differently (variant literals/order)."""
        from repro.benchsuite.variants import semantic_variant
        from repro.lang.term import Term

        paths = []
        for index, original in enumerate(csg_files):
            variant = semantic_variant(Term.parse(Path(original).read_text()))
            path = tmp_path / f"respelled{index}.csg"
            path.write_text(format_term(variant))
            paths.append(str(path))
        return paths

    def test_batch_respelled_inputs_hit_the_semantic_level(
        self, csg_files, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        assert main(["batch", *csg_files, "--cache", cache_dir]) == 0
        capsys.readouterr()
        respelled = self._respelled(csg_files, tmp_path)
        assert main(["batch", *respelled, "--cache", cache_dir]) == 0
        captured = capsys.readouterr().out
        assert "[cache-hit]" in captured
        assert "2 from cache (0 exact, 2 semantic; 100% hit rate)" in captured

    def test_no_semantic_cache_downgrades_respelled_inputs_to_misses(
        self, csg_files, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        assert main(["batch", *csg_files, "--cache", cache_dir]) == 0
        capsys.readouterr()
        respelled = self._respelled(csg_files, tmp_path)
        assert (
            main(["batch", *respelled, "--cache", cache_dir, "--no-semantic-cache"])
            == 0
        )
        captured = capsys.readouterr().out
        assert "0 from cache (0 exact, 0 semantic; 0% hit rate)" in captured
        # Exact hits survive the flag: the unmodified files still hit.
        assert main(["batch", *csg_files, "--cache", cache_dir, "--no-semantic-cache"]) == 0
        captured = capsys.readouterr().out
        assert "2 from cache (2 exact, 0 semantic; 100% hit rate)" in captured

    def test_batch_isolates_a_bad_input_file(self, csg_files, tmp_path, capsys):
        bad = tmp_path / "bad.csg"
        bad.write_text("(Union (Cube)")  # unbalanced — fails at parse time
        exit_code = main(["batch", csg_files[0], str(bad)])
        captured = capsys.readouterr().out
        assert exit_code == 1
        assert "ok     chain3" in captured  # the good file still ran
        assert "FAILED bad" in captured
        assert "1/2 jobs succeeded" in captured

    def test_batch_bench_selection(self, capsys):
        exit_code = main(["batch", "--bench", "sander", "--bench", "soldering"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "ok     sander" in captured and "ok     soldering" in captured


class TestDaemonCLI:
    """The ``serve``/``submit`` pair: parser wiring plus one real daemon."""

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--socket", "/tmp/x.sock"])
        assert args.jobs == 2
        assert args.max_pending == 256
        assert args.cache is None and args.timeout is None

    def test_submit_requires_socket(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "a.csg"])

    def test_submit_control_flags_are_exclusive(self):
        args = build_parser().parse_args(
            ["submit", "--socket", "/tmp/x.sock", "--health", "--stats"]
        )
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["submit", "--socket", "/tmp/x.sock", "--health", "--stats"])
        assert args.health and args.stats  # parsing itself is fine

    def test_submit_nothing_to_do(self, capsys):
        import socket as socket_module
        import tempfile

        # A live socket with no jobs requested: the CLI should say so
        # without submitting anything.
        with tempfile.TemporaryDirectory(prefix="szc.", dir="/tmp") as tdir:
            path = f"{tdir}/d.sock"
            listener = socket_module.socket(
                socket_module.AF_UNIX, socket_module.SOCK_STREAM
            )
            listener.bind(path)
            listener.listen(1)
            try:
                exit_code = main(["submit", "--socket", path])
            finally:
                listener.close()
        assert exit_code == 2
        assert "nothing to do" in capsys.readouterr().out

    def test_serve_and_submit_end_to_end(self, capsys):
        """Full lifecycle over real processes: serve, submit cold, submit
        warm (cross-process cache hit), health, SIGTERM drain."""
        import json as json_module
        import os
        import signal
        import subprocess
        import sys
        import tempfile
        import time

        with tempfile.TemporaryDirectory(prefix="sze.", dir="/tmp") as tdir:
            sock = f"{tdir}/d.sock"
            model = Path(tdir) / "box.csg"
            model.write_text(
                format_term(
                    union_all(
                        [translate(2.0 * (i + 1), 0, 0, unit()) for i in range(3)]
                    )
                )
            )
            server = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "serve",
                    "--socket", sock, "--jobs", "1", "--cache", f"{tdir}/cache",
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=os.environ.copy(),
            )
            try:
                deadline = time.monotonic() + 30
                while not Path(sock).exists():
                    assert time.monotonic() < deadline, "daemon never bound its socket"
                    assert server.poll() is None, server.stdout.read()
                    time.sleep(0.05)

                # The in-process submit command talks to the subprocess daemon.
                assert main(["submit", "--socket", sock, str(model), "--wait"]) == 0
                cold_out = capsys.readouterr().out
                assert "ok     box" in cold_out and "0 from cache" in cold_out

                assert main(["submit", "--socket", sock, str(model), "--wait"]) == 0
                warm_out = capsys.readouterr().out
                assert "cache:exact" in warm_out and "1 from cache" in warm_out

                assert main(["submit", "--socket", sock, "--health"]) == 0
                health = json_module.loads(capsys.readouterr().out)
                assert health["ok"] and health["workers"]["crashes"] == 0
                assert health["jobs"]["exact_hits"] == 1

                server.send_signal(signal.SIGTERM)
                server.wait(timeout=30)
            finally:
                if server.poll() is None:
                    server.kill()
                    server.wait()
            output = server.stdout.read()
            assert server.returncode == 0
            assert "draining" in output and "daemon stopped" in output
            assert not Path(sock).exists()


class TestObservabilityCLI:
    """The `--trace` flags plus the `stats` and `trace` subcommands."""

    def test_stats_requires_socket(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats"])

    def test_trace_parser_defaults(self):
        args = build_parser().parse_args(["trace", "spans.jsonl"])
        assert args.input == "spans.jsonl"
        assert args.chrome is None

    def test_synth_trace_writes_wellformed_jsonl(self, csg_file, tmp_path, capsys):
        from repro.obs import read_trace_jsonl, validate_spans

        trace = tmp_path / "spans.jsonl"
        exit_code = main(["synth", str(csg_file), "--validate", "--trace", str(trace)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert f"appended to {trace}" in captured

        records = read_trace_jsonl(trace)
        assert validate_spans(records) == []
        names = {record["name"] for record in records}
        assert {"job", "parse", "saturate", "extract", "validate"} <= names
        roots = [r for r in records if r["parent_id"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "job"
        # Every record is stamped with the job identity for multi-job files.
        assert all(r["job_id"] == f"synth:{csg_file.stem}" for r in records)
        assert all(r["model"] == csg_file.stem for r in records)

    def test_synth_without_trace_flag_writes_nothing(self, csg_file, tmp_path, capsys):
        exit_code = main(["synth", str(csg_file)])
        assert exit_code == 0
        assert "trace" not in capsys.readouterr().out
        assert list(tmp_path.glob("*.jsonl")) == []

    def test_batch_trace_covers_every_job(self, csg_file, tmp_path, capsys):
        from repro.obs import read_trace_jsonl, validate_spans

        other = tmp_path / "pair.csg"
        other.write_text(
            format_term(
                union_all([translate(3.0 * (i + 1), 0, 0, unit()) for i in range(3)])
            )
        )
        trace = tmp_path / "batch.jsonl"
        exit_code = main(["batch", str(csg_file), str(other), "--trace", str(trace)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "span(s) appended" in captured

        records = read_trace_jsonl(trace)
        by_job = {}
        for record in records:
            by_job.setdefault(record["job_id"], []).append(record)
        assert len(by_job) == 2
        assert {spans[0]["model"] for spans in by_job.values()} == {
            csg_file.stem, "pair",
        }
        for spans in by_job.values():
            assert validate_spans(spans) == []

    def test_trace_command_summarizes_and_converts(self, csg_file, tmp_path, capsys):
        trace = tmp_path / "spans.jsonl"
        chrome = tmp_path / "chrome.json"
        main(["synth", str(csg_file), "--trace", str(trace)])
        capsys.readouterr()

        exit_code = main(["trace", str(trace), "--chrome", str(chrome)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "from 1 job(s)" in captured
        assert "end-to-end" in captured and "phases" in captured
        assert "saturate" in captured
        assert "perfetto" in captured.lower()

        payload = json.loads(chrome.read_text())
        events = payload["traceEvents"]
        phases = [e for e in events if e["ph"] == "X"]
        assert phases and all(e["dur"] >= 0 and e["ts"] >= 0 for e in phases)
        assert any(e["ph"] == "M" for e in events)

    def test_trace_command_rejects_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["trace", str(tmp_path / "nope.jsonl")])

    def test_stats_command_against_live_daemon(self, csg_file, capsys):
        import shutil
        import tempfile

        from repro.service import SynthesisDaemon
        from repro.service.protocol import DaemonClient

        tdir = Path(tempfile.mkdtemp(prefix="szs.", dir="/tmp"))
        daemon = SynthesisDaemon(tdir / "d.sock", worker_count=1)
        daemon.start()
        try:
            with DaemonClient(daemon.socket_path) as client:
                client.submit_and_wait(
                    [{"name": "cubes", "term": csg_file.read_text()}]
                )

            assert main(["stats", "--socket", str(daemon.socket_path)]) == 0
            frame = json.loads(capsys.readouterr().out)
            assert frame["latency"]["jobs"]["count"] == 1
            assert frame["latency"]["phases"]["saturate"]["p95"] > 0.0

            exit_code = main(
                ["stats", "--socket", str(daemon.socket_path), "--percentiles"]
            )
            rendered = capsys.readouterr().out
            assert exit_code == 0
            assert "end-to-end" in rendered
            assert "saturate" in rendered and "extract" in rendered
            assert "cubes" in rendered  # per-model series
        finally:
            daemon.shutdown(drain=False)
            shutil.rmtree(tdir, ignore_errors=True)

    def test_stats_unreachable_socket_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot reach daemon"):
            main(
                ["stats", "--socket", str(tmp_path / "missing.sock"),
                 "--connect-timeout", "1"]
            )
