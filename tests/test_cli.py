"""Tests for the ``szalinski`` command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.csg.build import translate, union_all, unit
from repro.csg.pretty import format_term


@pytest.fixture
def csg_file(tmp_path):
    flat = union_all([translate(2.0 * (i + 1), 0, 0, unit()) for i in range(4)])
    path = tmp_path / "cubes.csg"
    path.write_text(format_term(flat))
    return path


@pytest.fixture
def scad_file(tmp_path):
    path = tmp_path / "design.scad"
    path.write_text(
        "difference() { cube([30, 10, 5]); for (i = [0:2]) translate([5 + i*10, 5, -1]) cylinder(h=8, r=2); }"
    )
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_options(self):
        args = build_parser().parse_args(
            ["--epsilon", "0.01", "--top-k", "3", "--cost", "reward-loops", "list"]
        )
        assert args.epsilon == 0.01
        assert args.top_k == 3
        assert args.cost == "reward-loops"

    def test_bench_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "not-a-benchmark"])


class TestCommands:
    def test_synth_prints_candidates(self, csg_file, capsys):
        exit_code = main(["synth", str(csg_file), "--validate"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "rank 1" in captured
        assert "Mapi" in captured
        assert "validation: OK" in captured

    def test_synth_reports_loops_and_reduction(self, csg_file, capsys):
        main(["synth", str(csg_file)])
        captured = capsys.readouterr().out
        assert "loops n1,4" in captured
        assert "size reduction" in captured

    def test_flatten_outputs_flat_csg(self, scad_file, capsys):
        exit_code = main(["flatten", str(scad_file)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert captured.strip().startswith("(Diff")
        assert "Cylinder" in captured

    def test_list_names_all_benchmarks(self, capsys):
        exit_code = main(["list"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "gear" in captured and "wardrobe" in captured
        assert len([line for line in captured.splitlines() if line.strip()]) == 16

    def test_bench_runs_single_model(self, capsys):
        exit_code = main(["bench", "relay-box"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "relay-box" in captured
        assert "average size reduction" in captured
