"""Differential tests: apply-phase dedup ledger on vs off.

The dedup-off engine is the oracle.  Over randomized term populations and
rule schedules these tests assert that switching the applied-match ledger on
changes *nothing observable about the result*: per-iteration match counts,
stop reasons, iteration counts, final best costs, and final graph sizes are
identical, while the dedup run actually skips re-applications
(``skipped_applications``) instead of merging classes with themselves.

The ledger's merge-invalidation story — a fingerprint is dead as soon as a
union re-canonicalizes one of its participating ids — is driven directly by
hypothesis schedules over :meth:`RewriteMatch.fingerprint` and
:meth:`Runner._prune_ledgers`.
"""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.benchsuite.models import gear_model, linear_array
from repro.core.rules import default_rules
from repro.csg.build import cube, scale
from repro.egraph.egraph import EGraph
from repro.egraph.extract import Extractor, ast_size_cost
from repro.egraph.rewrite import RewriteMatch, dynamic_rewrite, rewrite
from repro.egraph.runner import BackoffConfig, Runner, RunnerLimits
from repro.lang.term import Term

# ---------------------------------------------------------------------------
# Randomized rule-schedule differential (dedup-off is the oracle)
# ---------------------------------------------------------------------------


def _rule_db():
    """Syntactic + guarded + dynamic (pure and impure) rules in one set."""

    def count_t(egraph: EGraph, class_id: int, sub):
        # Impure applier: reads class *structure*, so it must never be
        # skipped — the differential below would catch it if it were.
        hits = sum(1 for node in egraph.nodes(sub["a"]) if node.op == "T")
        if hits == 0:
            return None
        return egraph.add_term(Term("T", (Term("x"),)))

    def wrap_pair(egraph: EGraph, class_id: int, sub):
        # Pure applier: output depends only on the bound ids.
        from repro.egraph.egraph import ENode

        return egraph.add_enode(ENode("P", (egraph.find(sub["a"]), egraph.find(sub["b"]))))

    return [
        rewrite("comm", "(U ?a ?b)", "(U ?b ?a)"),
        rewrite("assoc", "(U (U ?a ?b) ?c)", "(U ?a (U ?b ?c))", bidirectional=True),
        rewrite("idem", "(U ?a ?a)", "?a"),
        rewrite("wrap", "(T ?a)", "(U ?a ?a)"),
        rewrite(
            "guarded",
            "(I ?a ?b)",
            "(I ?b ?a)",
            guard=lambda eg, cid, sub: eg.find(sub["a"]) != eg.find(sub["b"]),
        ),
        dynamic_rewrite("dyn-impure", "(I ?a x)", count_t),
        dynamic_rewrite("dyn-pure", "(I ?a ?b)", wrap_pair, pure=True),
    ]


def _random_term(rng: random.Random, depth: int = 4) -> Term:
    if depth == 0 or rng.random() < 0.3:
        return Term(rng.choice(["x", "y", "z", 1, 2]))
    op = rng.choice(["U", "U", "I", "T"])
    arity = 1 if op == "T" else 2
    return Term(op, tuple(_random_term(rng, depth - 1) for _ in range(arity)))


def _run(seed: int, dedup: bool, incremental: bool):
    rng = random.Random(seed)
    egraph = EGraph()
    roots = [egraph.add_term(_random_term(rng)) for _ in range(rng.randint(3, 8))]
    runner = Runner(
        _rule_db(),
        RunnerLimits(max_iterations=rng.randint(3, 8), max_enodes=50_000, max_seconds=20.0),
        backoff=BackoffConfig(),
        incremental=incremental,
        dedup=dedup,
    )
    report = runner.run(egraph)
    extractor = Extractor(egraph, ast_size_cost)
    costs = tuple(extractor.cost_of(root) for root in roots)
    return egraph, report, costs


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("incremental", [True, False])
def test_dedup_changes_nothing_observable(seed, incremental):
    """Match counts, stop reason, graph sizes, and best costs are identical."""
    eg_off, rep_off, costs_off = _run(seed, dedup=False, incremental=incremental)
    eg_on, rep_on, costs_on = _run(seed, dedup=True, incremental=incremental)

    assert rep_on.stop_reason == rep_off.stop_reason
    assert [it.index for it in rep_on.iterations] == [it.index for it in rep_off.iterations]
    for it_on, it_off in zip(rep_on.iterations, rep_off.iterations):
        # The search phase is untouched by dedup: identical match sets.
        assert it_on.matches == it_off.matches
        assert it_on.banned == it_off.banned
        # Skipping removes work (self-merges and their spurious version
        # bumps); it can never add firings the oracle did not have.
        assert it_on.total_firings <= it_off.total_firings
        assert it_on.enodes_after == it_off.enodes_after
        assert it_on.classes_after == it_off.classes_after
    assert len(eg_on) == len(eg_off)
    assert eg_on.total_enodes == eg_off.total_enodes
    assert costs_on == costs_off
    # No dedup run may ever skip anything for the off engine.
    assert all(it.skipped_applications == 0 for it in rep_off.iterations)


def test_multi_iteration_run_actually_skips():
    """On a saturating workload the ledger eliminates re-applications."""
    _, report, _ = _run(seed=3, dedup=True, incremental=True)
    if len(report.iterations) > 1:
        assert sum(it.skipped_applications for it in report.iterations) > 0


def test_quiescent_final_iteration_applies_nothing_syntactic():
    """A saturated final iteration re-applies nothing for guardless rules."""
    rules = [
        rewrite("comm", "(U ?a ?b)", "(U ?b ?a)"),
        rewrite("assoc", "(U (U ?a ?b) ?c)", "(U ?a (U ?b ?c))"),
    ]
    egraph = EGraph()
    term = Term("U", (Term("U", (Term("x"), Term("y"))), Term("z")))
    egraph.add_term(term)
    runner = Runner(rules, RunnerLimits(max_iterations=30, max_enodes=10_000), dedup=True)
    report = runner.run(egraph)
    assert report.stop_reason.value == "saturated"
    final = report.iterations[-1]
    total = sum(final.matches.values())
    assert total > 0
    assert final.total_firings == 0
    # The quiescent iteration instantiates nothing: no allocations, and
    # re-execution is confined to matches whose fingerprints the previous
    # (still merging) epoch invalidated.
    assert final.enodes_created == 0
    assert final.skipped_applications + final.applied_matches == total
    assert final.skipped_applications > final.applied_matches


def test_pipeline_parity_on_real_models():
    """Full saturation parity on bundled models with the real rule database."""
    for model in (gear_model(), linear_array(20, (3.0, 0.0, 0.0), scale(2.0, 2.0, 2.0, cube()))):
        results = {}
        for dedup in (False, True):
            egraph = EGraph()
            root = egraph.add_term(model)
            report = Runner(
                default_rules(),
                RunnerLimits(max_iterations=10, max_enodes=200_000, max_seconds=30.0),
                incremental=True,
                dedup=dedup,
            ).run(egraph)
            results[dedup] = (
                report.stop_reason,
                [it.matches for it in report.iterations],
                egraph.total_enodes,
                len(egraph),
                Extractor(egraph, ast_size_cost).cost_of(root),
            )
        assert results[True] == results[False]


# ---------------------------------------------------------------------------
# Content-keyed dedup for impure rules (the chain-fold case)
# ---------------------------------------------------------------------------


def test_content_keyed_rule_skips_when_content_is_unchanged():
    """An impure rule with a content_key quiesces once its reads stabilize."""
    calls = []

    def applier(egraph: EGraph, class_id: int, sub):
        calls.append(egraph.union_version)
        if len(calls) == 1:
            # Grow the graph *away* from the matched class so the run gets a
            # second epoch while the rule's content key stays unchanged.
            egraph.add_term(Term("side"))
        return None

    def content(egraph: EGraph, class_id: int, sub):
        return tuple(sorted(str(n.op) for n in egraph.nodes(sub["a"])))

    rule = dynamic_rewrite("peek", "(H ?a)", applier, content_key=content)
    assert rule.deduplicable and not rule.pure
    egraph = EGraph()
    egraph.add_term(Term("H", (Term("x"),)))
    report = Runner(
        [rule], RunnerLimits(max_iterations=6, max_enodes=10_000), dedup=True
    ).run(egraph)
    # First epoch examines the chain; every later epoch skips it because
    # nothing unioned into the matched class.
    assert len(calls) == 1
    assert sum(it.skipped_applications for it in report.iterations) >= 1


def test_content_change_refires_a_content_keyed_rule():
    """A class whose contents change is re-examined exactly until they stop."""
    calls = []

    def applier(egraph: EGraph, class_id: int, sub):
        calls.append(len(calls))
        if len(calls) < 3:
            # Mutate the matched class: its content key changes, so the
            # ledger must let the next epoch re-fire despite the identical
            # match fingerprint.
            egraph.merge(sub["a"], egraph.add_term(Term(f"leaf{len(calls)}")))
        return None

    def content(egraph: EGraph, class_id: int, sub):
        return tuple(sorted(str(n.op) for n in egraph.nodes(sub["a"])))

    rule = dynamic_rewrite("grow", "(H ?a)", applier, content_key=content)
    egraph = EGraph()
    egraph.add_term(Term("H", (Term("x"),)))
    report = Runner(
        [rule], RunnerLimits(max_iterations=10, max_enodes=10_000), dedup=True
    ).run(egraph)
    # Fired once per distinct content (x | x+leaf1 | x+leaf1+leaf2), then
    # quiesced — a plain fingerprint ledger would have stopped after one
    # firing and missed the mutations; no ledger at all would never skip.
    assert len(calls) == 3
    assert report.stop_reason.value == "saturated"


def test_chain_fold_skips_rescans_on_unchanged_chains():
    """The real fold-chain rule stops rescanning a chain that stopped growing."""
    model = linear_array(12, (3.0, 0.0, 0.0), cube())
    results = {}
    for dedup in (False, True):
        egraph = EGraph()
        root = egraph.add_term(model)
        report = Runner(
            [rule for rule in default_rules() if rule.name.startswith("fold-chain")],
            RunnerLimits(max_iterations=6, max_enodes=100_000),
            dedup=dedup,
        ).run(egraph)
        results[dedup] = (
            [it.matches for it in report.iterations],
            egraph.total_enodes,
            Extractor(egraph, ast_size_cost).cost_of(root),
        )
        if dedup:
            skipped = sum(it.skipped_applications for it in report.iterations)
            assert skipped > 0, "unchanged chains must be skipped, not re-walked"
    assert results[True] == results[False]


def test_dict_ledger_prune_keeps_values_for_canonical_fingerprints():
    """_prune_ledgers on a content ledger preserves the stored content."""
    egraph = EGraph()
    ids = [egraph.add_term(Term(leaf)) for leaf in ("x", "y", "z", "w")]
    pair = egraph.add_term(Term("U", (Term("x"), Term("y"))))
    egraph.rebuild()

    rule = dynamic_rewrite(
        "ck",
        "(U ?a ?b)",
        lambda eg, cid, sub: None,
        content_key=lambda eg, cid, sub: (),
    )
    runner = Runner([rule], RunnerLimits(max_iterations=1), dedup=True)
    runner.run(egraph)
    ledger = runner._ledgers["ck"]
    assert isinstance(ledger, dict)
    ledger.clear()
    matches = [
        RewriteMatch(pair, {"a": ids[i], "b": ids[j]})
        for i in range(4)
        for j in range(4)
    ]
    for index, match in enumerate(matches):
        ledger[match.fingerprint(egraph)] = ("content", index)
    before = dict(ledger)

    egraph.merge(ids[0], ids[1])
    egraph.rebuild()
    runner._ledger_stamp = -1_000_000  # force the sweep past amortization
    runner._prune_ledgers(egraph)
    pruned = runner._ledgers["ck"]
    parents = egraph._union_find.parents
    expected = {
        fp: content
        for fp, content in before.items()
        if runner._fingerprint_canonical(parents, fp)
    }
    assert pruned == expected
    assert 0 < len(pruned) < len(before)


# ---------------------------------------------------------------------------
# Fingerprints and merge invalidation (hypothesis schedules)
# ---------------------------------------------------------------------------

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


def _populated_egraph():
    egraph = EGraph()
    ids = [egraph.add_term(Term(leaf)) for leaf in ("x", "y", "z", "w")]
    for a in range(2):
        ids.append(egraph.add_term(Term("U", (Term("x"), Term(("y", "z")[a])))))
    egraph.rebuild()
    return egraph, ids


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=0, max_size=8))
def test_fingerprint_tracks_canonicalization_through_merges(merges):
    """fingerprint() always equals the from-scratch canonical projection."""
    egraph, ids = _populated_egraph()
    match = RewriteMatch(ids[4], {"a": ids[0], "b": ids[5]})
    for a, b in merges:
        fp = match.fingerprint(egraph)
        find = egraph.find
        assert fp == (
            find(match.class_id),
            False,
            tuple((name, find(cid)) for name, cid in match.substitution.items()),
        )
        egraph.merge(ids[a], ids[b])
        egraph.rebuild()
    # After every merge schedule the cached value still canonicalizes right.
    find = egraph.find
    assert match.fingerprint(egraph) == (
        find(match.class_id),
        False,
        tuple((name, find(cid)) for name, cid in match.substitution.items()),
    )


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=8))
def test_ledger_prune_drops_exactly_the_invalidated_fingerprints(merges):
    """_prune_ledgers keeps an entry iff every bound id is still canonical."""
    egraph, ids = _populated_egraph()
    rules = [rewrite("comm", "(U ?a ?b)", "(U ?b ?a)")]
    runner = Runner(rules, RunnerLimits(max_iterations=1), dedup=True)
    runner.run(egraph)
    # Seed a ledger with fingerprints of every current (a, b) pair.
    ledger = runner._ledgers["comm"]
    ledger.clear()
    matches = [
        RewriteMatch(ids[4], {"a": ids[i], "b": ids[j]})
        for i in range(4)
        for j in range(4)
    ]
    for match in matches:
        ledger.add(match.fingerprint(egraph))
    runner._ledger_stamp = egraph.union_version
    before = set(ledger)

    changed = False
    for a, b in merges:
        if egraph.find(ids[a]) != egraph.find(ids[b]):
            egraph.merge(ids[a], ids[b])
            changed = True
    egraph.rebuild()
    # Force the sweep past the amortization threshold (which otherwise
    # waits for unions >= ledger/4 before paying an O(ledger) pass).
    if changed:
        runner._ledger_stamp = -1_000_000
    parents = egraph._union_find.parents
    expected_live = {
        fp for fp in before if runner._fingerprint_canonical(parents, fp)
    }
    runner._ledgers["comm"] = set(before)
    runner._prune_ledgers(egraph)
    pruned = runner._ledgers["comm"]
    if changed:
        assert pruned == expected_live
        # Every surviving fingerprint is fully canonical...
        for fp in pruned:
            assert egraph.find(fp[0]) == fp[0]
            assert all(egraph.find(cid) == cid for _n, cid in fp[2])
        # ...and every dropped one had a demoted participant.
        for fp in before - pruned:
            demoted = egraph.find(fp[0]) != fp[0] or any(
                egraph.find(cid) != cid for _n, cid in fp[2]
            )
            assert demoted
    else:
        assert pruned == before


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.sampled_from(["merge", "check", "rebuild"]), min_size=1, max_size=12),
    st.randoms(use_true_random=False),
)
def test_merge_schedules_never_let_a_stale_fingerprint_hit(ops, rng):
    """A cached fingerprint revalidates to the true canonical projection
    at every point of an interleaved merge/rebuild schedule."""
    egraph, ids = _populated_egraph()
    matches = [
        RewriteMatch(ids[4], {"a": ids[i], "b": ids[(i + 1) % 6]}) for i in range(6)
    ]
    for op in ops:
        if op == "merge":
            a, b = rng.sample(range(6), 2)
            egraph.merge(ids[a], ids[b])
        elif op == "rebuild":
            egraph.rebuild()
        else:
            find = egraph.find
            for match in matches:
                assert match.fingerprint(egraph) == (
                    find(match.class_id),
                    False,
                    tuple((n, find(c)) for n, c in match.substitution.items()),
                )
