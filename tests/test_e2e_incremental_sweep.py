"""End-to-end regression sweep: every bundled model, incremental vs naive.

Runs the full synthesis pipeline over the whole Table 1 benchmark suite
twice — once with the compiled-trie incremental matcher and once with the
naive sweep — and asserts the outputs are interchangeable: a valid output
program (structural/unrolling validation against the flat input) and
identical best cost and candidate cost lists.

Marked ``slow``: CI runs this in a non-blocking lane; deselect locally with
``-m "not slow"``.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.benchsuite.suite import BENCHMARKS
from repro.core.config import SynthesisConfig
from repro.core.pipeline import synthesize
from repro.verify.validate import validate_synthesis

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
def test_incremental_pipeline_parity_and_validity(bench):
    flat = bench.build()
    base = SynthesisConfig(cost_function=bench.cost_function)
    results = {}
    for incremental in (False, True):
        config = replace(base, incremental_search=incremental)
        results[incremental] = synthesize(flat, config)

    naive, incremental = results[False], results[True]
    assert incremental.candidates, f"{bench.name}: no candidates"
    # Best-cost parity with the non-incremental engine.
    assert incremental.best.cost == naive.best.cost, bench.name
    assert [c.cost for c in incremental.candidates] == [c.cost for c in naive.candidates]
    # Same reported program (structure exposure must not regress either way).
    assert incremental.exposes_structure() == naive.exposes_structure()
    # Output validity: the reported program re-parameterizes the input.
    report = validate_synthesis(flat, incremental.output_term())
    assert report.valid, f"{bench.name}: {report}"
    # The incremental run actually exercised the trie machinery.
    iterations = [it for run in incremental.run_reports for it in run.iterations]
    assert any(it.dirty_classes is not None for it in iterations)
    assert all(it.trie_programs > 0 for it in iterations if it.dirty_classes is not None)
