"""Unit tests for point-membership CSG evaluation and Hausdorff validation."""

import pytest
from hypothesis import given, strategies as st

from repro.csg.build import (
    cube,
    cylinder,
    diff,
    hexagon,
    inter,
    rotate,
    scale,
    sphere,
    translate,
    union,
)
from repro.geometry.hausdorff import chamfer_distance, directed_hausdorff, hausdorff_distance
from repro.geometry.membership import GeometryError, compile_csg, csg_contains
from repro.geometry.sampling import occupancy_points, sample_grid
from repro.geometry.vec import Vec3
from repro.lang.term import Term


class TestPrimitiveMembership:
    def test_cube_contains_origin(self):
        assert csg_contains(cube(), Vec3(0, 0, 0))

    def test_cube_excludes_outside(self):
        assert not csg_contains(cube(), Vec3(0.6, 0, 0))

    def test_sphere_boundary(self):
        assert csg_contains(sphere(), Vec3(1, 0, 0))
        assert not csg_contains(sphere(), Vec3(1.01, 0, 0))

    def test_cylinder_height_limits(self):
        assert csg_contains(cylinder(), Vec3(0, 0, 0.49))
        assert not csg_contains(cylinder(), Vec3(0, 0, 0.51))

    def test_hexagon_inside_and_outside(self):
        assert csg_contains(hexagon(), Vec3(0, 0, 0))
        assert not csg_contains(hexagon(), Vec3(0.99, 0, 0))  # flat side faces x
        assert csg_contains(hexagon(), Vec3(0, 0.99, 0))       # vertex on y axis

    def test_empty_contains_nothing(self):
        assert not csg_contains(Term("Empty"), Vec3(0, 0, 0))

    def test_external_treated_as_empty(self):
        assert not csg_contains(Term("External"), Vec3(0, 0, 0))


class TestTransformedMembership:
    def test_translate(self):
        term = translate(10, 0, 0, cube())
        assert csg_contains(term, Vec3(10, 0, 0))
        assert not csg_contains(term, Vec3(0, 0, 0))

    def test_scale(self):
        term = scale(4, 1, 1, cube())
        assert csg_contains(term, Vec3(1.9, 0, 0))
        assert not csg_contains(term, Vec3(2.1, 0, 0))

    def test_rotate(self):
        term = rotate(0, 0, 90, scale(4, 1, 1, cube()))
        assert csg_contains(term, Vec3(0, 1.9, 0))
        assert not csg_contains(term, Vec3(1.9, 0, 0))

    def test_nested_transforms(self):
        term = translate(5, 0, 0, rotate(0, 0, 90, scale(4, 1, 1, cube())))
        assert csg_contains(term, Vec3(5, 1.9, 0))


class TestBooleanMembership:
    def test_union(self):
        term = union(cube(), translate(5, 0, 0, cube()))
        assert csg_contains(term, Vec3(0, 0, 0))
        assert csg_contains(term, Vec3(5, 0, 0))
        assert not csg_contains(term, Vec3(2.5, 0, 0))

    def test_diff(self):
        term = diff(scale(4, 4, 4, cube()), cube())
        assert not csg_contains(term, Vec3(0, 0, 0))
        assert csg_contains(term, Vec3(1.5, 0, 0))

    def test_inter(self):
        term = inter(cube(), translate(0.5, 0, 0, cube()))
        assert csg_contains(term, Vec3(0.25, 0, 0))
        assert not csg_contains(term, Vec3(-0.25, 0, 0))

    def test_unknown_operator_raises(self):
        with pytest.raises(GeometryError):
            csg_contains(Term("Hull", (cube(),)), Vec3(0, 0, 0))

    def test_bounding_box_union(self):
        solid = compile_csg(union(cube(), translate(5, 0, 0, cube())))
        assert solid.bound_max.x >= 5.4
        assert solid.bound_min.x <= -0.4


class TestSamplingAndHausdorff:
    def test_grid_size(self):
        grid = sample_grid(Vec3(0, 0, 0), Vec3(1, 1, 1), resolution=4)
        assert len(grid) == 64

    def test_occupancy_fraction_of_sphere(self):
        grid = sample_grid(Vec3(-1, -1, -1), Vec3(1, 1, 1), resolution=12)
        inside = occupancy_points(sphere(), grid)
        fraction = len(inside) / len(grid)
        # Volume of the unit sphere / bounding cube = pi/6 ~ 0.52.
        assert fraction == pytest.approx(0.5236, abs=0.08)

    def test_hausdorff_identical_sets(self):
        points = [Vec3(i, 0, 0) for i in range(10)]
        assert hausdorff_distance(points, list(points)) == 0.0

    def test_hausdorff_translated_sets(self):
        a = [Vec3(i, 0, 0) for i in range(5)]
        b = [Vec3(i, 1, 0) for i in range(5)]
        assert hausdorff_distance(a, b) == pytest.approx(1.0)

    def test_directed_asymmetry(self):
        a = [Vec3(0, 0, 0)]
        b = [Vec3(0, 0, 0), Vec3(10, 0, 0)]
        assert directed_hausdorff(a, b) == 0.0
        assert directed_hausdorff(b, a) == pytest.approx(10.0)

    def test_empty_sets(self):
        assert hausdorff_distance([], []) == 0.0
        assert directed_hausdorff([Vec3(0, 0, 0)], []) == float("inf")

    def test_chamfer_less_than_hausdorff(self):
        a = [Vec3(i, 0, 0) for i in range(10)]
        b = [Vec3(i, 0.1 * i, 0) for i in range(10)]
        assert chamfer_distance(a, b) <= hausdorff_distance(a, b) + 1e-12


_coords = st.floats(min_value=-3, max_value=3, allow_nan=False)


@given(_coords, _coords, _coords, _coords, _coords, _coords)
def test_translation_membership_property(px, py, pz, tx, ty, tz):
    """p in T(v, cube) iff p - v in cube (property)."""
    point = Vec3(px, py, pz)
    term = translate(tx, ty, tz, cube())
    direct = csg_contains(term, point)
    shifted = csg_contains(cube(), Vec3(px - tx, py - ty, pz - tz))
    assert direct == shifted


@given(_coords, _coords, _coords)
def test_union_commutative_property(px, py, pz):
    """Membership in a union does not depend on operand order (property)."""
    point = Vec3(px, py, pz)
    a = translate(1, 0, 0, cube())
    b = sphere()
    assert csg_contains(union(a, b), point) == csg_contains(union(b, a), point)
