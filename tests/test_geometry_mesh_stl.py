"""Unit tests for meshes, tessellation, and STL I/O."""

import math

import pytest

from repro.csg.build import cube, cylinder, diff, rotate, scale, sphere, translate, union
from repro.geometry.mat import AffineMatrix
from repro.geometry.mesh import Mesh, Triangle
from repro.geometry.primitives import (
    tessellate_cube,
    tessellate_cylinder,
    tessellate_hexagon,
    tessellate_sphere,
)
from repro.geometry.stl import StlError, read_stl, write_stl_ascii, write_stl_binary
from repro.geometry.tessellate import tessellate_csg
from repro.geometry.vec import Vec3


class TestTriangle:
    def test_normal_and_area(self):
        t = Triangle(Vec3(0, 0, 0), Vec3(1, 0, 0), Vec3(0, 1, 0))
        assert t.normal().close_to(Vec3(0, 0, 1))
        assert t.area() == pytest.approx(0.5)

    def test_degenerate_normal_is_zero(self):
        t = Triangle(Vec3(0, 0, 0), Vec3(1, 1, 1), Vec3(2, 2, 2))
        assert t.normal() == Vec3(0, 0, 0)

    def test_centroid(self):
        t = Triangle(Vec3(0, 0, 0), Vec3(3, 0, 0), Vec3(0, 3, 0))
        assert t.centroid() == Vec3(1, 1, 0)

    def test_sample_points_inside(self):
        t = Triangle(Vec3(0, 0, 0), Vec3(1, 0, 0), Vec3(0, 1, 0))
        for point in t.sample_points(20):
            assert point.x >= -1e-9 and point.y >= -1e-9
            assert point.x + point.y <= 1.0 + 1e-9


class TestMesh:
    def test_merge_and_len(self):
        a = tessellate_cube()
        b = tessellate_cube()
        assert len(a.merged(b)) == len(a) + len(b)

    def test_bounding_box_of_unit_cube(self):
        lo, hi = tessellate_cube().bounding_box()
        assert lo.close_to(Vec3(-0.5, -0.5, -0.5))
        assert hi.close_to(Vec3(0.5, 0.5, 0.5))

    def test_cube_surface_area(self):
        assert tessellate_cube().surface_area() == pytest.approx(6.0)

    def test_transformed(self):
        mesh = tessellate_cube().transformed(AffineMatrix.scaling(Vec3(2, 2, 2)))
        assert mesh.surface_area() == pytest.approx(24.0)

    def test_empty_mesh(self):
        assert Mesh.empty().is_empty()
        assert Mesh.empty().surface_area() == 0.0


class TestPrimitiveTessellation:
    def test_cube_triangle_count(self):
        assert len(tessellate_cube()) == 12

    def test_cylinder_closed(self):
        mesh = tessellate_cylinder(segments=16)
        # 16 side quads (2 triangles each) + 2 * 16 cap triangles.
        assert len(mesh) == 16 * 2 + 32

    def test_hexagon_bounding_box(self):
        lo, hi = tessellate_hexagon().bounding_box()
        assert hi.z == pytest.approx(0.5)
        assert lo.z == pytest.approx(-0.5)
        assert max(abs(lo.x), abs(hi.x), abs(lo.y), abs(hi.y)) <= 1.0 + 1e-9

    def test_sphere_vertices_on_unit_sphere(self):
        for triangle in tessellate_sphere(slices=8, stacks=6):
            for vertex in triangle.vertices():
                assert vertex.norm() == pytest.approx(1.0, abs=1e-9)


class TestCsgTessellation:
    def test_union_merges_triangles(self):
        term = union(cube(), translate(3, 0, 0, cube()))
        mesh = tessellate_csg(term)
        assert len(mesh) == 24

    def test_affine_applied(self):
        mesh = tessellate_csg(scale(2, 3, 4, cube()))
        lo, hi = mesh.bounding_box()
        assert hi.close_to(Vec3(1.0, 1.5, 2.0))
        assert lo.close_to(Vec3(-1.0, -1.5, -2.0))

    def test_rotation_applied(self):
        mesh = tessellate_csg(rotate(0, 0, 45, scale(2, 1, 1, cube())))
        lo, hi = mesh.bounding_box()
        expected = (1.0 + 0.5) / math.sqrt(2.0)
        assert hi.x == pytest.approx(expected, rel=1e-6)

    def test_diff_produces_soup(self):
        mesh = tessellate_csg(diff(cube(), sphere()))
        assert len(mesh) > 12  # both operand boundaries present


class TestStlIO:
    def test_ascii_round_trip(self, tmp_path):
        mesh = tessellate_csg(scale(2, 2, 2, cube()))
        path = tmp_path / "cube.stl"
        write_stl_ascii(mesh, path, solid_name="test_cube")
        loaded = read_stl(path)
        assert len(loaded) == len(mesh)
        assert loaded.surface_area() == pytest.approx(mesh.surface_area(), rel=1e-5)
        assert path.read_text().startswith("solid test_cube")

    def test_binary_round_trip(self, tmp_path):
        mesh = tessellate_csg(cylinder())
        path = tmp_path / "cylinder.stl"
        write_stl_binary(mesh, path)
        loaded = read_stl(path)
        assert len(loaded) == len(mesh)
        assert loaded.surface_area() == pytest.approx(mesh.surface_area(), rel=1e-5)

    def test_ascii_matches_paper_layout(self, tmp_path):
        path = tmp_path / "layout.stl"
        write_stl_ascii(tessellate_csg(cube()), path)
        text = path.read_text()
        assert "facet normal" in text
        assert "outer loop" in text
        assert "endfacet" in text

    def test_malformed_ascii_rejected(self, tmp_path):
        path = tmp_path / "bad.stl"
        path.write_text("solid x\nfacet normal 0 0 1\nouter loop\nvertex 0 0\nendloop\nendfacet\n")
        with pytest.raises(StlError):
            read_stl(path)

    def test_truncated_binary_rejected(self, tmp_path):
        path = tmp_path / "trunc.stl"
        path.write_bytes(b"\0" * 80 + (100).to_bytes(4, "little") + b"\0" * 10)
        with pytest.raises(StlError):
            read_stl(path)
