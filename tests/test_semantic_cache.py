"""The result cache's semantic (normalized-key) lookup level.

Unit tests cover the two-level :meth:`ResultCache.lookup` mechanics —
exact-first probing, separate hit counters, pointer persistence, dangling
pointers after eviction, and the ``semantic=False`` kill switch — and the
invariant the tier was designed around: the exact tier's on-disk layout and
counters are untouched by semantic entries.

The differential class is the acceptance check from the other side: for
each fast bundled model, a semantically respelled variant (renamed
parameters, reordered commutative operands, respelled literals) must be
served from the warm cache at the semantic level with a byte-identical
payload, and must miss when the tier is disabled.
"""

import json

import pytest

from repro.benchsuite.suite import get_benchmark
from repro.benchsuite.table1 import run_table1_batch
from repro.benchsuite.variants import semantic_variant
from repro.core.config import SynthesisConfig
from repro.csg.build import cube, sphere, union
from repro.service.cache import ResultCache, cache_key, semantic_cache_key

#: Quick models (the batch differential suite's blocking subset).
_FAST_SUBSET = ["sander", "soldering", "hc-bits", "relay-box", "compose"]


@pytest.fixture
def keys():
    """Exact + semantic keys for a term and a semantically equal respelling."""
    config = SynthesisConfig()
    original = union(cube(), sphere())
    respelled = union(sphere(), cube())
    assert original != respelled
    assert semantic_cache_key(original, config) == semantic_cache_key(respelled, config)
    return {
        "exact": cache_key(original, config),
        "exact_respelled": cache_key(respelled, config),
        "semantic": semantic_cache_key(original, config),
    }


class TestTwoLevelLookup:
    def test_exact_key_is_the_fast_path(self, keys, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(keys["exact"], {"v": 1}, keys["semantic"])
        payload, tier = cache.lookup(keys["exact"], keys["semantic"])
        assert payload == {"v": 1} and tier == "exact"
        assert cache.exact_hits == 1 and cache.semantic_hits == 0

    def test_respelled_input_hits_at_the_semantic_level(self, keys, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(keys["exact"], {"v": 1}, keys["semantic"])
        payload, tier = cache.lookup(keys["exact_respelled"], keys["semantic"])
        assert payload == {"v": 1} and tier == "semantic"
        assert cache.exact_hits == 0 and cache.semantic_hits == 1
        assert cache.hits == 1 and cache.misses == 0

    def test_semantic_pointers_persist_on_disk(self, keys, tmp_path):
        ResultCache(tmp_path).put(keys["exact"], {"v": 1}, keys["semantic"])
        fresh = ResultCache(tmp_path)
        payload, tier = fresh.lookup(keys["exact_respelled"], keys["semantic"])
        assert payload == {"v": 1} and tier == "semantic"

    def test_miss_counts_once(self, keys, tmp_path):
        cache = ResultCache(tmp_path)
        payload, tier = cache.lookup(keys["exact"], keys["semantic"])
        assert payload is None and tier is None
        assert cache.misses == 1 and cache.hits == 0

    def test_semantic_disabled_skips_the_tier_entirely(self, keys, tmp_path):
        populated = ResultCache(tmp_path)
        populated.put(keys["exact"], {"v": 1}, keys["semantic"])
        cache = ResultCache(tmp_path, semantic=False)
        payload, tier = cache.lookup(keys["exact_respelled"], keys["semantic"])
        assert payload is None and tier is None
        # And a semantic=False put writes no pointer files.
        off = ResultCache(tmp_path / "off", semantic=False)
        off.put(keys["exact"], {"v": 1}, keys["semantic"])
        assert not list((tmp_path / "off").glob("sem/*/*.json"))

    def test_dangling_pointer_is_a_miss_and_is_dropped(self, keys, tmp_path):
        cache = ResultCache(tmp_path, memory_capacity=0)
        cache.put(keys["exact"], {"v": 1}, keys["semantic"])
        # Remove the exact entry out from under the pointer (what eviction
        # does; pointers are invisible to the eviction globs).
        exact_path = tmp_path / keys["exact"][:2] / f"{keys['exact']}.json"
        exact_path.unlink()
        payload, tier = cache.lookup(keys["exact_respelled"], keys["semantic"])
        assert payload is None and tier is None
        assert not list(tmp_path.glob("sem/*/*.json")), "pointer must be dropped"

    def test_corrupt_pointer_is_a_miss(self, keys, tmp_path):
        cache = ResultCache(tmp_path, memory_capacity=0)
        cache.put(keys["exact"], {"v": 1}, keys["semantic"])
        pointer = tmp_path / "sem" / keys["semantic"][:2] / f"{keys['semantic']}.json"
        pointer.write_text("{torn")
        payload, tier = cache.lookup(keys["exact_respelled"], keys["semantic"])
        assert payload is None and tier is None
        assert not pointer.exists()

    def test_rebound_after_dangle(self, keys, tmp_path):
        cache = ResultCache(tmp_path, memory_capacity=0)
        cache.put(keys["exact"], {"v": 1}, keys["semantic"])
        (tmp_path / keys["exact"][:2] / f"{keys['exact']}.json").unlink()
        assert cache.lookup(keys["exact_respelled"], keys["semantic"]) == (None, None)
        cache.put(keys["exact_respelled"], {"v": 2}, keys["semantic"])
        payload, tier = cache.lookup(keys["exact"], keys["semantic"])
        assert payload == {"v": 2} and tier == "semantic"

    def test_stats_expose_the_tier_split(self, keys, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(keys["exact"], {"v": 1}, keys["semantic"])
        cache.lookup(keys["exact"], keys["semantic"])
        cache.lookup(keys["exact_respelled"], keys["semantic"])
        stats = cache.stats()
        assert stats["exact_hits"] == 1
        assert stats["semantic_hits"] == 1
        assert stats["semantic"] is True
        assert stats["hits"] == 2


class TestExactTierUnchanged:
    """Semantic entries must be invisible to the exact tier's machinery."""

    def test_exact_keys_and_fingerprints_are_unchanged(self):
        # The exact key derivation must not involve normalization at all:
        # two spellings the semantic tier identifies keep distinct exact keys.
        config = SynthesisConfig()
        assert cache_key(union(cube(), sphere()), config) != cache_key(
            union(sphere(), cube()), config
        )

    def test_pointers_do_not_count_as_disk_entries(self, keys, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(keys["exact"], {"v": 1}, keys["semantic"])
        assert cache.disk_entries() == 1
        assert len(list(tmp_path.glob("sem/*/*.json"))) == 1

    def test_bounded_eviction_never_touches_pointers(self, keys, tmp_path):
        cache = ResultCache(tmp_path, max_entries=1, memory_capacity=0)
        cache.put(keys["exact"], {"v": 1}, keys["semantic"])
        # Overflow the exact tier with unrelated entries.
        for i in range(4):
            cache.put("ab" + f"{i:062d}", {"v": i})
        assert cache.disk_entries() == 1
        assert len(list(tmp_path.glob("sem/*/*.json"))) == 1, (
            "eviction must not delete (or count) semantic pointers"
        )

    def test_legacy_get_is_exact_only(self, keys, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(keys["exact"], {"v": 1}, keys["semantic"])
        assert cache.get(keys["exact_respelled"]) is None
        assert cache.get(keys["exact"]) == {"v": 1}
        assert cache.exact_hits == 1 and cache.semantic_hits == 0


class TestSemanticCacheDifferential:
    """Variant inputs must be served warm, byte-identically, semantically."""

    def _payloads(self, report):
        return [
            json.dumps(r.result.to_dict(), sort_keys=True) for r in report.batch.results
        ]

    @pytest.mark.parametrize("name", _FAST_SUBSET)
    def test_variant_is_a_semantic_hit_with_identical_result(self, name, tmp_path):
        benchmark = get_benchmark(name)
        cold = run_table1_batch([benchmark], cache=ResultCache(tmp_path))
        assert not cold.failures and cold.batch.cache_hits == 0

        warm = run_table1_batch(
            [benchmark], cache=ResultCache(tmp_path), mutate=semantic_variant
        )
        assert not warm.failures
        assert warm.batch.semantic_hits == 1 and warm.batch.exact_hits == 0
        assert warm.batch.results[0].cache_tier == "semantic"
        assert self._payloads(warm) == self._payloads(cold), (
            "semantic hit must serve the byte-identical stored result"
        )

        disabled = run_table1_batch(
            [benchmark],
            cache=ResultCache(tmp_path, semantic=False),
            mutate=semantic_variant,
        )
        assert not disabled.failures
        assert disabled.batch.cache_hits == 0, (
            "--no-semantic-cache means a respelled input must miss"
        )
