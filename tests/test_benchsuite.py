"""Tests for the benchmark suite definitions, noise simulation, and references."""

import pytest

from repro.benchsuite.human import human_reference, reference_names
from repro.benchsuite.models import (
    circular_pattern,
    fig2_translated_cubes,
    fig16_noisy_hexagons,
    fig17_dice_six,
    gear_model,
    grid_array,
    linear_array,
)
from repro.benchsuite.noise import add_decompiler_noise, noise_floor
from repro.benchsuite.suite import BENCHMARKS, benchmark_names, get_benchmark
from repro.cad.evaluator import unroll
from repro.csg.metrics import measure, primitive_count
from repro.csg.validate import is_flat_csg
from repro.verify.structural import equivalent_modulo_reordering, terms_equal_modulo_epsilon


class TestSuiteDefinitions:
    def test_sixteen_benchmarks(self):
        assert len(BENCHMARKS) == 16

    def test_names_unique(self):
        assert len(set(benchmark_names())) == 16

    def test_lookup(self):
        assert get_benchmark("gear").thing_id == "3362402"
        with pytest.raises(KeyError):
            get_benchmark("missing-model")

    def test_source_split_matches_paper(self):
        # The paper: ~70% of the models come from Thingiverse OpenSCAD ("T").
        t_count = sum(1 for b in BENCHMARKS if b.source == "T")
        assert t_count >= 10

    @pytest.mark.parametrize("bench_model", BENCHMARKS, ids=lambda b: b.name)
    def test_every_model_builds_flat_csg(self, bench_model):
        flat = bench_model.build()
        assert is_flat_csg(flat, allow_external=True)
        metrics = measure(flat)
        assert metrics.nodes > 20
        assert metrics.primitives >= 4

    def test_structured_majority(self):
        # The paper exposes structure for 13 of 16 models (81%); this
        # reproduction recovers it for 12 (the relay-box loop falls just
        # outside the top-5, see EXPERIMENTS.md).
        structured = sum(1 for b in BENCHMARKS if b.expects_structure)
        assert structured == 12

    def test_gear_matches_figure_model(self):
        flat = get_benchmark("gear").build()
        assert measure(flat).primitives == 63  # 60 teeth + 3 cylinders

    def test_builders_deterministic(self):
        for benchmark in BENCHMARKS[:4]:
            assert benchmark.build() == benchmark.build()


class TestModelGenerators:
    def test_gear_tooth_count_scales(self):
        assert primitive_count(gear_model(teeth=10)) == 13
        assert primitive_count(gear_model(teeth=20)) == 23

    def test_fig2_count(self):
        assert primitive_count(fig2_translated_cubes(7)) == 7

    def test_dice_six_has_six_pips(self):
        assert primitive_count(fig17_dice_six()) == 6

    def test_linear_array_positions(self):
        flat = linear_array(3, (5.0, 0.0, 0.0), fig2_translated_cubes(1))
        assert primitive_count(flat) == 3

    def test_grid_array(self):
        flat = grid_array(2, 3, (10.0, 10.0, 0.0), fig2_translated_cubes(1))
        assert primitive_count(flat) == 6

    def test_circular_pattern_on_circle(self):
        from repro.csg.ops import affine_vector

        flat = circular_pattern(6, 10.0, fig2_translated_cubes(1))
        outer = [affine_vector(child) for child in _union_operands(flat)]
        for x, y, _z in outer:
            assert x * x + y * y == pytest.approx(100.0, rel=1e-9)


def _union_operands(term):
    if term.op != "Union":
        return [term]
    return _union_operands(term.children[0]) + _union_operands(term.children[1])


class TestNoiseSimulation:
    def test_noise_is_deterministic(self):
        clean = fig2_translated_cubes(5)
        a = add_decompiler_noise(clean, magnitude=1e-3, seed=3)
        b = add_decompiler_noise(clean, magnitude=1e-3, seed=3)
        assert a == b

    def test_noise_bounded_by_magnitude(self):
        clean = fig2_translated_cubes(5)
        noisy = add_decompiler_noise(clean, magnitude=1e-3, seed=3)
        assert terms_equal_modulo_epsilon(clean, noisy, epsilon=1e-3)
        assert not terms_equal_modulo_epsilon(clean, noisy, epsilon=1e-9)

    def test_different_seeds_differ(self):
        clean = fig2_translated_cubes(5)
        assert add_decompiler_noise(clean, seed=1) != add_decompiler_noise(clean, seed=2)

    def test_zero_magnitude_is_identity_geometry(self):
        clean = fig2_translated_cubes(3)
        noisy = add_decompiler_noise(clean, magnitude=0.0)
        assert terms_equal_modulo_epsilon(clean, noisy, epsilon=1e-12)

    def test_noise_floor(self):
        clean = fig2_translated_cubes(3)
        assert noise_floor(clean) == 0.0
        assert noise_floor(fig16_noisy_hexagons()) > 0.0
        assert noise_floor(add_decompiler_noise(clean, magnitude=5e-4, seed=1)) > 0.0


class TestHumanReferences:
    def test_reference_names(self):
        assert "gear" in reference_names()

    @pytest.mark.parametrize("name", ["gear", "tape-store", "hc-bits", "dice-six"])
    def test_reference_unrolls_to_its_flat_form(self, name):
        reference = human_reference(name)
        unrolled = unroll(reference.structured)
        assert equivalent_modulo_reordering(reference.flat, unrolled, epsilon=1e-6)

    def test_unknown_reference(self):
        with pytest.raises(KeyError):
            human_reference("nope")
