"""Extraction tests: lazy k-best heaps, cost-function behavior, cycles.

These pin the behavior of the lazy (Eppstein-style) k-best candidate
streams — distinct realizable terms in cost order, full coverage of child
rank combinations, correct best terms on equivalence cycles under both
monotone and non-monotone costs — and of ``best_per_enode`` on merged
classes, plus parity between the extractors and brute-force expectations.
"""

import pytest

from repro.core.cost import ast_size_cost_fn, reward_loops_cost_fn
from repro.egraph.egraph import EGraph, ENode
from repro.egraph.extract import Extractor, TopKExtractor, ast_size_cost
from repro.egraph.rewrite import rewrite
from repro.lang.term import Term


class TestLazyKBestStreams:
    def _merged_class(self, egraph, alternatives):
        """A class holding several disjoint alternatives (distinct costs)."""
        ids = [egraph.add_term(term) for term in alternatives]
        for other in ids[1:]:
            egraph.merge(ids[0], other)
        egraph.rebuild()
        return egraph.find(ids[0])

    #: Three equivalent variants with ast-size costs 1, 2, 3 — structurally
    #: disjoint, so merging them creates no equivalence cycles.
    _LEFT = ["A", "(F B)", "(G (H C))"]
    _RIGHT = ["X", "(P Y)", "(Q (R Z))"]

    def test_k1_returns_only_the_cheapest_combination(self):
        egraph = EGraph()
        left = self._merged_class(egraph, [Term.parse(t) for t in self._LEFT])
        right = self._merged_class(egraph, [Term.parse(t) for t in self._RIGHT])
        root = egraph.add_enode(ENode("Union", (left, right)))
        entries = TopKExtractor(egraph, ast_size_cost, k=1).extract_top_k(root)
        assert entries == [entries[0]]
        assert entries[0].term == Term.parse("(Union A X)")
        assert entries[0].cost == 3.0

    def test_streams_cover_all_rank_combinations(self):
        # The old cube pruning only explored bounded index sums; the lazy
        # heaps must enumerate *every* combination in cost order when asked
        # for enough entries.
        egraph = EGraph()
        left = self._merged_class(egraph, [Term.parse(t) for t in self._LEFT])
        right = self._merged_class(egraph, [Term.parse(t) for t in self._RIGHT])
        root = egraph.add_enode(ENode("Union", (left, right)))
        entries = TopKExtractor(egraph, ast_size_cost, k=9).extract_top_k(root)
        assert len(entries) == 9  # the full 3x3 product
        child_costs = [1.0, 2.0, 3.0]
        expected = sorted(1.0 + a + b for a in child_costs for b in child_costs)
        assert [e.cost for e in entries] == expected
        assert len({e.term for e in entries}) == 9

    def test_exhausted_streams_return_fewer_than_k(self):
        egraph = EGraph()
        root = egraph.add_term(Term.parse("(Union A B)"))
        entries = TopKExtractor(egraph, ast_size_cost, k=10).extract_top_k(root)
        assert [e.term for e in entries] == [Term.parse("(Union A B)")]

    def test_congruent_enodes_collapse_to_one_candidate(self):
        # Before a rebuild a class can hold two e-nodes that canonicalize to
        # the same thing; the streams must not enumerate their (identical)
        # derivations twice.
        egraph = EGraph()
        a = egraph.add_leaf("A")
        b = egraph.add_leaf("B")
        fa = egraph.add_enode(ENode("F", (a,)))
        fb = egraph.add_enode(ENode("F", (b,)))
        egraph.merge(a, b)
        egraph.merge(fa, fb)  # one class now holds F(a) and F(b), congruent
        entries = TopKExtractor(egraph, ast_size_cost, k=8).extract_top_k(fa)
        assert len(entries) == 2
        assert {e.term for e in entries} == {Term.parse("(F A)"), Term.parse("(F B)")}
        assert [e.cost for e in entries] == [2.0, 2.0]


def _merge_equivalent(egraph, term_a, term_b):
    a = egraph.add_term(term_a)
    b = egraph.add_term(term_b)
    egraph.merge(a, b)
    egraph.rebuild()
    return egraph.find(a)


class TestCostFunctions:
    def test_ast_size_picks_smaller_variant(self):
        egraph = EGraph()
        root = _merge_equivalent(
            egraph,
            Term.parse("(Union (Union A B) (Union A B))"),
            Term.parse("(Union A B)"),
        )
        extractor = TopKExtractor(egraph, ast_size_cost_fn, k=3)
        entries = extractor.extract_top_k(root)
        assert entries[0].term == Term.parse("(Union A B)")
        assert entries[0].cost == 3.0
        assert [e.cost for e in entries] == sorted(e.cost for e in entries)

    def test_reward_loops_discounts_mapi_subtree(self):
        # A Mapi variant that is *larger* in raw node count must still win
        # under reward-loops: its body is charged at a quarter.
        egraph = EGraph()
        flat = Term.parse("(Union A (Union B C))")  # 5 nodes
        mapi = Term.parse("(Mapi 3 (Fun i (G i)))")  # 6 nodes
        root = _merge_equivalent(egraph, flat, mapi)
        by_size = TopKExtractor(egraph, ast_size_cost_fn, k=2).extract_top_k(root)
        by_loops = TopKExtractor(egraph, reward_loops_cost_fn, k=2).extract_top_k(root)
        assert by_size[0].term.op != "Mapi"
        assert by_loops[0].term.op == "Mapi"

    def test_reward_loops_fold_with_bare_function_gets_no_discount(self):
        # Fold with a bare Union function (cost 1) is just re-association.
        assert reward_loops_cost_fn("Fold", [1.0, 1.0, 9.0]) == 12.0
        # Fold with an abstraction (cost > 1.5) is a genuine loop.
        assert reward_loops_cost_fn("Fold", [2.0, 1.0, 9.0]) == 1.0 + 0.25 * 12.0

    def test_reward_loops_discount_can_invert_rank_monotonicity(self):
        # Pinning the cube-pruning caveat: under reward-loops a *higher* rank
        # child (larger cost under ast-size ordering) can yield a *cheaper*
        # parent when the parent is a loop node, because the discount applies
        # to the whole subtree.  The bounded cube still only explores small
        # index sums; this documents (not fixes) that assumption.
        cheap_child, pricey_child = 4.0, 8.0
        plain_parent = ast_size_cost_fn("Union", [cheap_child])
        loop_parent = reward_loops_cost_fn("Mapi", [pricey_child])
        assert pricey_child > cheap_child
        assert loop_parent < plain_parent

    def test_top_k_same_under_both_costs_when_no_loops(self):
        egraph = EGraph()
        root = egraph.add_term(Term.parse("(Union (Inter A B) C)"))
        size_entries = TopKExtractor(egraph, ast_size_cost_fn, k=3).extract_top_k(root)
        loop_entries = TopKExtractor(egraph, reward_loops_cost_fn, k=3).extract_top_k(root)
        assert [e.term for e in size_entries] == [e.term for e in loop_entries]
        assert [e.cost for e in size_entries] == [e.cost for e in loop_entries]


class TestBestPerEnodeAfterMerges:
    def test_one_candidate_per_distinct_root_enode(self):
        egraph = EGraph()
        root = _merge_equivalent(
            egraph,
            Term.parse("(Union A B)"),
            Term.parse("(Inter C D)"),
        )
        extractor = TopKExtractor(egraph, ast_size_cost, k=5)
        entries = extractor.best_per_enode(root)
        assert {e.term.op for e in entries} == {"Union", "Inter"}
        assert [e.cost for e in entries] == sorted(e.cost for e in entries)

    def test_merged_child_uses_its_post_merge_best(self):
        egraph = EGraph()
        root = egraph.add_term(Term.parse("(F (Union A B))"))
        _merge_equivalent(egraph, Term.parse("(Union A B)"), Term("C"))
        extractor = TopKExtractor(egraph, ast_size_cost, k=5)
        entries = extractor.best_per_enode(root)
        # The F enode's child best is now the merged-in leaf C.
        assert entries[0].term == Term.parse("(F C)")

    def test_rewrite_then_merge_exposes_both_alternatives(self):
        egraph = EGraph()
        root = egraph.add_term(Term.parse("(Union Cube Empty)"))
        rewrite("union-empty", "(Union ?x Empty)", "?x").run(egraph)
        egraph.rebuild()
        entries = TopKExtractor(egraph, ast_size_cost, k=5).best_per_enode(root)
        terms = {e.term for e in entries}
        assert Term("Cube") in terms
        assert Term.parse("(Union Cube Empty)") in terms


class TestWorklistParity:
    def test_single_best_matches_term_size(self):
        egraph = EGraph()
        term = Term.parse("(Union (Translate 1 2 3 Cube) (Scale 4 5 6 Sphere))")
        root = egraph.add_term(term)
        extractor = Extractor(egraph, ast_size_cost)
        assert extractor.cost_of(root) == float(term.size())
        assert extractor.extract(root) == term

    def test_improvement_propagates_through_deep_chain(self):
        # A deep chain over a merged leaf: the worklist must push the cheap
        # alternative all the way to the root.
        egraph = EGraph()
        deep = Term.parse("(F (F (F (F (F (Union A B))))))")
        root = egraph.add_term(deep)
        _merge_equivalent(egraph, Term.parse("(Union A B)"), Term("C"))
        extractor = Extractor(egraph, ast_size_cost)
        assert extractor.extract(root) == Term.parse("(F (F (F (F (F C)))))")
        assert extractor.cost_of(root) == 6.0

    def test_topk_with_unextractable_sibling_class(self):
        # A class whose only e-node references an empty (never-completed)
        # class must simply contribute nothing.
        egraph = EGraph()
        root = egraph.add_term(Term.parse("(Union A B)"))
        extractor = TopKExtractor(egraph, ast_size_cost, k=3, roots=[root])
        assert extractor.extract_top_k(root)[0].term == Term.parse("(Union A B)")

    def test_cycle_entries_are_skipped_not_looping(self):
        egraph = EGraph()
        x = egraph.add_leaf("X")
        union = egraph.add_enode(ENode("Union", (x, x)))
        egraph.merge(union, x)
        egraph.rebuild()
        entries = TopKExtractor(egraph, ast_size_cost, k=3).extract_top_k(x)
        assert entries[0].term == Term("X")

    def test_discounted_self_loop_cannot_displace_realizable_terms(self):
        # Regression: under reward-loops a Mapi merged with its own argument
        # class yields a self-referential candidate *cheaper* than any real
        # term (1 + 0.25*c < c); such unrealizable entries must not crowd
        # realizable ones out of the k table slots.
        egraph = EGraph()
        u = egraph.add_term(Term.parse("(Union A B)"))
        egraph.merge(egraph.add_enode(ENode("Mapi", (u,))), u)
        egraph.rebuild()
        entries = TopKExtractor(egraph, reward_loops_cost_fn, k=2).extract_top_k(u)
        assert entries[0].term == Term.parse("(Union A B)")
        # The single-best extractor needs the same guard: without it the
        # self-loop "wins" with a cost no realizable term has and extract()
        # recurses forever.
        single = Extractor(egraph, reward_loops_cost_fn)
        assert single.extract(u) == Term.parse("(Union A B)")
        assert single.cost_of(u) == 3.0

    def test_indirect_cycle_extracts_the_best_realizable_term(self):
        # A mutual Mapi cycle undercuts every realizable term under the
        # discount: the fixpoint best is an unmaterializable infinite tower.
        # The k-best streams rank only acyclic derivations, so both
        # extractors now return the correct best realizable term instead of
        # raising (this used to be a pinned ExtractionError limitation).
        egraph = EGraph()
        flat = Term.parse("(Union (Union P Q) (Union R (Union S T)))")  # 9 nodes
        a = egraph.add_term(flat)
        egraph.merge(egraph.add_enode(ENode("Mapi", (egraph.add_enode(ENode("Mapi", (a,))),))), a)
        egraph.rebuild()
        single = Extractor(egraph, reward_loops_cost_fn)
        assert single.extract(a) == flat
        assert single.cost_of(a) == 9.0
        entries = TopKExtractor(egraph, reward_loops_cost_fn, k=2).extract_top_k(a)
        assert entries[0].term == flat
        assert entries[0].cost == 9.0
        # Every other candidate at the root descends into the cycle, so the
        # realizable stream holds exactly one term.
        assert len(entries) == 1
        # The same graph extracts identically under the monotone cost.
        assert TopKExtractor(egraph, ast_size_cost, k=2).extract_top_k(a)[0].cost == 9.0

    def test_cycle_member_classes_still_extract_through_the_cycle(self):
        # The inner class of the cycle (Mapi a) is itself realizable as long
        # as its derivation does not revisit *itself*: descending into a's
        # flat variant is fine and keeps the discount.
        egraph = EGraph()
        flat = Term.parse("(Union (Union P Q) (Union R (Union S T)))")
        a = egraph.add_term(flat)
        inner = egraph.add_enode(ENode("Mapi", (a,)))
        egraph.merge(egraph.add_enode(ENode("Mapi", (inner,))), a)
        egraph.rebuild()
        best = TopKExtractor(egraph, reward_loops_cost_fn, k=2).best(inner)
        assert best.term == Term("Mapi", (flat,))
        assert best.cost == 1.0 + 0.25 * 9.0
