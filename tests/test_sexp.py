"""Unit tests for the s-expression reader and printer."""

import pytest
from hypothesis import given, strategies as st

from repro.lang.sexp import SexpError, format_sexp, parse_many, parse_sexp


class TestParsing:
    def test_atom_symbol(self):
        assert parse_sexp("Cube") == "Cube"

    def test_atom_int(self):
        assert parse_sexp("42") == 42
        assert isinstance(parse_sexp("42"), int)

    def test_atom_float(self):
        assert parse_sexp("2.5") == 2.5
        assert isinstance(parse_sexp("2.5"), float)

    def test_negative_numbers(self):
        assert parse_sexp("-3") == -3
        assert parse_sexp("-3.75") == -3.75

    def test_scientific_notation(self):
        assert parse_sexp("1e-3") == pytest.approx(0.001)

    def test_simple_list(self):
        assert parse_sexp("(Union Cube Sphere)") == ["Union", "Cube", "Sphere"]

    def test_nested_list(self):
        parsed = parse_sexp("(Translate 1 2 3 (Scale 4 5 6 Cube))")
        assert parsed == ["Translate", 1, 2, 3, ["Scale", 4, 5, 6, "Cube"]]

    def test_whitespace_and_newlines(self):
        parsed = parse_sexp("(Union\n  Cube\t Sphere)")
        assert parsed == ["Union", "Cube", "Sphere"]

    def test_comments_ignored(self):
        parsed = parse_sexp("; a comment\n(Union Cube Sphere) ; trailing")
        assert parsed == ["Union", "Cube", "Sphere"]

    def test_parse_many(self):
        assert parse_many("Cube Sphere (Union A B)") == ["Cube", "Sphere", ["Union", "A", "B"]]

    def test_empty_input_rejected(self):
        with pytest.raises(SexpError):
            parse_sexp("")

    def test_multiple_top_level_rejected(self):
        with pytest.raises(SexpError):
            parse_sexp("Cube Sphere")

    def test_unbalanced_open_rejected(self):
        with pytest.raises(SexpError):
            parse_sexp("(Union Cube")

    def test_unbalanced_close_rejected(self):
        with pytest.raises(SexpError):
            parse_sexp("Union Cube)")

    def test_error_reports_position(self):
        with pytest.raises(SexpError) as excinfo:
            parse_sexp("(Union Cube))")
        assert "line" in str(excinfo.value)


class TestFormatting:
    def test_atom(self):
        assert format_sexp("Cube") == "Cube"

    def test_integer(self):
        assert format_sexp(7) == "7"

    def test_integral_float_keeps_decimal(self):
        assert format_sexp(2.0) == "2.0"

    def test_flat_list(self):
        assert format_sexp(["Union", "Cube", "Sphere"]) == "(Union Cube Sphere)"

    def test_width_triggers_break(self):
        sexp = ["Union"] + [f"child{i}" for i in range(20)]
        rendered = format_sexp(sexp, width=30)
        assert "\n" in rendered
        assert rendered.startswith("(Union")

    def test_round_trip_nested(self):
        text = "(Translate 1 2 3 (Scale 4.5 5 6 Cube))"
        assert parse_sexp(format_sexp(parse_sexp(text))) == parse_sexp(text)


_atoms = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    st.sampled_from(["Cube", "Union", "Translate", "x", "Tooth", "abc-def"]),
)

_sexps = st.recursive(
    _atoms, lambda children: st.lists(children, min_size=1, max_size=4), max_leaves=25
)


@given(_sexps)
def test_format_parse_round_trip(sexp):
    """Formatting then parsing returns an equal s-expression (property)."""
    rendered = format_sexp(sexp)
    reparsed = parse_sexp(rendered)

    def equal(a, b):
        if isinstance(a, list) and isinstance(b, list):
            return len(a) == len(b) and all(equal(x, y) for x, y in zip(a, b))
        if isinstance(a, float) or isinstance(b, float):
            return float(a) == pytest.approx(float(b), rel=1e-12, abs=1e-12)
        return a == b

    assert equal(sexp, reparsed)
