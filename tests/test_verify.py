"""Unit tests for the translation-validation layer."""

import pytest

from repro.cad.build import fold_union, fun, mapi, repeat, translate_expr, mul, add
from repro.csg.build import cube, cylinder, diff, rotate, scale, sphere, translate, union, union_all
from repro.lang.term import Term
from repro.verify.geometric import geometrically_equivalent, occupancy_agreement
from repro.verify.structural import equivalent_modulo_reordering, terms_equal_modulo_epsilon
from repro.verify.validate import validate_synthesis


class TestStructuralEquivalence:
    def test_exact_equality(self):
        a = union(cube(), sphere())
        assert terms_equal_modulo_epsilon(a, a)

    def test_epsilon_on_numbers(self):
        a = translate(1.0, 2.0, 3.0, cube())
        b = translate(1.0000004, 2.0, 3.0, cube())
        assert terms_equal_modulo_epsilon(a, b, epsilon=1e-6)
        assert not terms_equal_modulo_epsilon(a, b, epsilon=1e-9)

    def test_different_shape_rejected(self):
        assert not terms_equal_modulo_epsilon(union(cube(), sphere()), cube())

    def test_reordering_accepted_for_union(self):
        a = union_all([translate(float(i), 0, 0, cube()) for i in range(4)])
        b = union_all([translate(float(i), 0, 0, cube()) for i in reversed(range(4))])
        assert not terms_equal_modulo_epsilon(a, b)
        assert equivalent_modulo_reordering(a, b)

    def test_reordering_respects_multiplicity(self):
        a = union(cube(), union(cube(), sphere()))
        b = union(cube(), union(sphere(), sphere()))
        assert not equivalent_modulo_reordering(a, b)

    def test_diff_sides_not_swappable(self):
        a = diff(cube(), sphere())
        b = diff(sphere(), cube())
        assert not equivalent_modulo_reordering(a, b)

    def test_reassociation_accepted(self):
        a = union(union(cube(), sphere()), cylinder())
        b = union(cube(), union(sphere(), cylinder()))
        assert equivalent_modulo_reordering(a, b)


class TestGeometricEquivalence:
    def test_identical_solids(self):
        term = diff(scale(4, 4, 4, cube()), sphere())
        assert geometrically_equivalent(term, term, resolution=12)

    def test_collapsed_transform_equivalent(self):
        a = translate(1, 2, 3, translate(4, 5, 6, cube()))
        b = translate(5, 7, 9, cube())
        assert geometrically_equivalent(a, b, resolution=12)

    def test_different_solids_rejected(self):
        a = scale(4, 4, 4, cube())
        b = scale(2, 2, 2, cube())
        assert not geometrically_equivalent(a, b, resolution=12)

    def test_report_fields(self):
        report = occupancy_agreement(cube(), cube(), resolution=8)
        assert report.agreement == 1.0
        assert report.hausdorff == pytest.approx(0.0, abs=1e-6)
        assert report.points_a == report.points_b > 0


class TestValidateSynthesis:
    def test_valid_structured_program(self):
        flat = union_all([translate(2.0 * (i + 1), 0, 0, cube()) for i in range(5)])
        program = fold_union(
            mapi(
                fun(("i", "c"), translate_expr(mul(2.0, add(Term("i"), 1)), 0, 0, Term("c"))),
                repeat(cube(), 5),
            )
        )
        result = validate_synthesis(flat, program)
        assert result.valid
        assert result.exact_match or result.reorder_match

    def test_wrong_count_detected(self):
        flat = union_all([translate(2.0 * (i + 1), 0, 0, cube()) for i in range(5)])
        wrong = fold_union(
            mapi(
                fun(("i", "c"), translate_expr(mul(2.0, add(Term("i"), 1)), 0, 0, Term("c"))),
                repeat(cube(), 4),
            )
        )
        result = validate_synthesis(flat, wrong)
        assert not result.valid

    def test_wrong_function_detected(self):
        flat = union_all([translate(2.0 * (i + 1), 0, 0, cube()) for i in range(5)])
        wrong = fold_union(
            mapi(
                fun(("i", "c"), translate_expr(mul(3.0, add(Term("i"), 1)), 0, 0, Term("c"))),
                repeat(cube(), 5),
            )
        )
        result = validate_synthesis(flat, wrong)
        assert not result.valid

    def test_unrollable_error_reported(self):
        flat = cube()
        bogus = Term("Fold", (Term.num(3), Term("Empty"), Term("Nil")))
        result = validate_synthesis(flat, bogus)
        assert not result.valid
        assert result.error is not None

    def test_identity_program(self):
        flat = diff(scale(4, 4, 4, cube()), rotate(0, 0, 30, cube()))
        result = validate_synthesis(flat, flat)
        assert result.valid and result.exact_match
