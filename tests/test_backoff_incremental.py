"""Backoff bans x incremental search: expiring rules must re-search everything.

The ROADMAP open item about expansive rule sets: a rule banned by the
backoff scheduler misses search epochs, so its incremental cache is blind to
every class dirtied while it sat out.  When the ban expires the matcher must
fall back to a full sweep for that rule — matching *all* classes, not just
the ones dirtied in the expiry iteration — or matches rooted in
mid-ban-created classes would be silently lost.  These tests pin that
protocol at the runner level and through ``SynthesisConfig.rule_match_limit``.
"""

from __future__ import annotations

import pytest

from repro.benchsuite.models import fig2_translated_cubes
from repro.core.config import SynthesisConfig
from repro.core.pipeline import synthesize
from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import rewrite
from repro.egraph.runner import BackoffConfig, Runner, RunnerLimits
from repro.lang.term import Term


def _chain(n: int) -> Term:
    term = Term("x")
    for _ in range(n):
        term = Term("U", (term, Term("y")))
    return term


def _rules():
    return [
        # Explosive: one match per U-class, immediately over the tiny limit.
        rewrite("comm", "(U ?a ?b)", "(U ?b ?a)"),
        # Steady growth: keeps creating fresh U-classes while comm is banned.
        rewrite("dup", "(T ?x)", "(T (U ?x ?x))"),
    ]


def _run(incremental: bool):
    egraph = EGraph()
    egraph.add_term(_chain(8))
    egraph.add_term(Term("T", (Term("z"),)))
    runner = Runner(
        _rules(),
        RunnerLimits(max_iterations=6, max_enodes=10_000, max_seconds=20.0),
        backoff=BackoffConfig(match_limit=2, ban_length=2),
        incremental=incremental,
    )
    report = runner.run(egraph)
    return egraph, report


def test_expired_ban_triggers_full_sweep_covering_clean_classes():
    egraph, report = _run(incremental=True)
    by_index = {it.index: it for it in report.iterations}

    # Iteration 0: comm matches every U-class (> limit 2) and is banned for
    # 2 iterations (until iteration 3); its matches are dropped.
    assert "comm" in by_index[0].banned
    assert by_index[0].matches["comm"] > 2
    # During the ban comm neither searches nor appears in the match table,
    # while dup keeps dirtying the graph with new U-classes.
    for index in (1, 2):
        assert "comm" in by_index[index].banned
        assert "comm" not in by_index[index].matches
        assert by_index[index].dirty_classes > 0
    # At expiry the matcher may not trust comm's cache: full sweep.
    expiry = by_index[3]
    assert "comm" in expiry.full_sweep_rules
    # The sweep sees *every* U-class: the 8 from the original chain (clean
    # since iteration 0) plus the ones dup created during the ban.
    u_classes = len(egraph.classes_with_op("U"))
    assert expiry.matches["comm"] >= 8
    assert expiry.matches["comm"] > by_index[0].matches["comm"] - 1  # grew, not shrank
    # dup, never banned, stays on the incremental path at expiry.
    assert "dup" not in expiry.full_sweep_rules
    assert u_classes >= 8


def test_ban_schedule_and_matches_identical_to_naive_runner():
    """The incremental engine must take the exact same scheduler decisions."""
    naive_egraph, naive = _run(incremental=False)
    inc_egraph, incremental = _run(incremental=True)
    assert [it.index for it in naive.iterations] == [it.index for it in incremental.iterations]
    for naive_it, inc_it in zip(naive.iterations, incremental.iterations):
        assert naive_it.matches == inc_it.matches
        assert sorted(naive_it.banned) == sorted(inc_it.banned)
    assert naive.stop_reason == incremental.stop_reason
    assert len(naive_egraph) == len(inc_egraph)
    assert naive_egraph.total_enodes == inc_egraph.total_enodes


@pytest.mark.parametrize("match_limit", [3, 10_000])
def test_rule_match_limit_parity_through_the_pipeline(match_limit):
    """SynthesisConfig.rule_match_limit + incremental search end to end.

    With a tiny limit the affine rules get banned and re-sworn in mid-run;
    the extracted candidates must not depend on the matcher implementation.
    """
    model = fig2_translated_cubes(4)
    costs = {}
    for incremental in (False, True):
        config = SynthesisConfig(
            rule_match_limit=match_limit,
            rule_ban_length=1,
            rewrite_iterations=8,
            incremental_search=incremental,
        )
        result = synthesize(model, config)
        costs[incremental] = [(c.cost, c.term) for c in result.candidates]
    assert costs[True] == costs[False]
